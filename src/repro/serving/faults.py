"""Deterministic, seeded fault-injection harness for the serving stack.

The serving tiers are sprinkled with named *fault points* — e.g.
``fault_point("worker.dispatch")`` just before a worker executes a batch,
``fault_point("artifact.load")`` inside the plan loader, or
``fault_point("shm.publish")`` before a response header is written.  When no
plan is installed a fault point is a near-free no-op (one global read and a
``None`` check).  Chaos tests install a :class:`FaultPlan` that maps sites to
actions (``kill`` / ``hang`` / ``delay`` / ``raise`` / ``corrupt``) with a
per-site probability, a per-site fire cap, and a single integer seed.

Determinism is the whole point: whether a given *visit* to a site fires is a
pure function of ``(plan.seed, site, visit_index)`` — a SHA1 hash, not shared
RNG state — so a soak test replays bit-for-bit from its seed alone, in the
parent process and in forked/spawned workers alike.  Plans are picklable and
are shipped to process-tier workers, which install them at entry.
"""

from __future__ import annotations

import hashlib
import os
import signal
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_ACTIONS",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "fault_point",
    "install_fault_plan",
    "clear_fault_plan",
    "active_fault_plan",
    "inject",
    "fault_report",
]

FAULT_ACTIONS = ("kill", "hang", "delay", "raise", "corrupt")

# How long a "hang" wedges the calling thread.  Long enough that any sane
# watchdog timeout trips first; short enough that an escaped hang cannot
# wedge a test job forever.
_HANG_SECONDS = 600.0


class InjectedFault(RuntimeError):
    """Raised by a ``raise`` action at a fault point.

    Marked ``retryable`` so the resilience layer treats it as transient —
    chaos tests rely on injected raises being retried, never silently
    swallowed and never escalated as deterministic failures.
    """

    retryable = True

    def __init__(self, site: str, visit: int) -> None:
        super().__init__(f"injected fault at {site!r} (visit {visit})")
        self.site = site
        self.visit = visit


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what happens at ``site`` and how often."""

    site: str
    action: str = "raise"
    probability: float = 1.0
    delay_ms: float = 0.0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be >= 0")


def _decision(seed: int, site: str, visit: int) -> float:
    """Deterministic uniform draw in [0, 1) for one visit to one site."""
    digest = hashlib.sha1(
        f"{seed}:{site}:{visit}".encode("utf-8")
    ).digest()
    (word,) = struct.unpack("<Q", digest[:8])
    return word / float(1 << 64)


@dataclass
class FaultPlan:
    """A picklable, seeded set of fault rules.

    ``rules`` maps site name -> :class:`FaultSpec`.  Visit counters live on
    the plan instance; a freshly-unpickled copy (e.g. in a spawned worker)
    starts its own visit sequence, which is still deterministic because the
    worker's visit order is determined by the request stream.
    """

    seed: int = 0
    rules: Dict[str, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._visit_lock = threading.Lock()
        self._visits: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}

    def __getstate__(self):
        return {"seed": self.seed, "rules": self.rules}

    def __setstate__(self, state) -> None:
        self.seed = state["seed"]
        self.rules = state["rules"]
        self._visit_lock = threading.Lock()
        self._visits = {}
        self._fires = {}

    @classmethod
    def build(cls, seed: int, specs: Sequence[FaultSpec]) -> "FaultPlan":
        rules = {}
        for spec in specs:
            if spec.site in rules:
                raise ValueError(f"duplicate fault rule for site {spec.site!r}")
            rules[spec.site] = spec
        return cls(seed=seed, rules=rules)

    def decide(self, site: str) -> Tuple[Optional[FaultSpec], int]:
        """Record one visit to ``site`` and decide whether a fault fires.

        Returns ``(spec, visit_index)`` when the fault fires, else
        ``(None, visit_index)``.
        """
        spec = self.rules.get(site)
        with self._visit_lock:
            visit = self._visits.get(site, 0)
            self._visits[site] = visit + 1
            if spec is None:
                return None, visit
            if spec.max_fires is not None and self._fires.get(site, 0) >= spec.max_fires:
                return None, visit
            if _decision(self.seed, site, visit) >= spec.probability:
                return None, visit
            self._fires[site] = self._fires.get(site, 0) + 1
            return spec, visit

    def report(self) -> Dict[str, Dict[str, int]]:
        with self._visit_lock:
            return {
                site: {
                    "visits": self._visits.get(site, 0),
                    "fires": self._fires.get(site, 0),
                }
                for site in sorted(set(self._visits) | set(self.rules))
            }


# The installed plan. ``None`` keeps fault_point() a near-free no-op; reads
# are a single global fetch and are deliberately unlocked (plan swaps are
# test-only and happen between request waves).
_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: FaultPlan) -> None:
    global _PLAN
    _PLAN = plan


def clear_fault_plan() -> None:
    global _PLAN
    _PLAN = None


def active_fault_plan() -> Optional[FaultPlan]:
    return _PLAN


class inject:
    """Context manager scoping a plan installation: ``with inject(plan): ...``"""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        install_fault_plan(self.plan)
        return self.plan

    def __exit__(self, *exc) -> None:
        clear_fault_plan()


def fault_report() -> Dict[str, Dict[str, int]]:
    """Visit/fire counts for the installed plan (empty when none)."""
    plan = _PLAN
    return plan.report() if plan is not None else {}


def fault_point(site: str, payload: Optional[np.ndarray] = None) -> None:
    """Execute the installed fault rule for ``site``, if any.

    ``payload`` gives ``corrupt`` actions an ndarray to mutate in place.
    Disabled (no plan installed) this is a no-op costing one global read.
    """
    plan = _PLAN
    if plan is None:
        return
    spec, visit = plan.decide(site)
    if spec is None:
        return
    action = spec.action
    if action == "raise":
        raise InjectedFault(site, visit)
    if action == "delay":
        time.sleep(spec.delay_ms / 1000.0)
        return
    if action == "corrupt":
        if payload is not None and payload.size:
            flat = payload.reshape(-1)
            flat[visit % flat.size] = np.nan
        return
    if action == "hang":
        time.sleep(_HANG_SECONDS)
        return
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
