"""Process-backed shard execution: shared-memory plan replay across cores.

Every parallel layer below this one — island/wave replay, thread-sharded
workers, the background flusher — shares one interpreter lock, so a
multi-shard service shows near-zero overhead per worker but also near-zero
*speedup* on a single box once the kernels stop releasing the GIL long
enough.  :class:`ProcessShardExecutor` escapes that ceiling: each serving
shard owns a long-lived **worker process** that replays compiled plans, and
the sharded service's batcher/worker split stays exactly as it was — the
executor slots in as the per-shard ``forward_fn``
(``ShardedForecastService(executor="processes")``).

Three design rules keep the hot path cheap and the answers bit-identical:

**Never trace in the child.**  Workers only ever *bind* plans from a
:class:`~repro.runtime.ArtifactStore` — either the deployment's own store
or a parent-compiled, parity-spot-checked plan spilled to a temp store —
so a child is a dumb replayer: no tracing, no fusing, no scheduling, no
autograd, and a freshly (re)spawned worker is serving in milliseconds.

**No pickling of array payloads.**  Request windows and forecast outputs
travel through a preallocated ``multiprocessing.shared_memory`` segment
sized from the plan's pooled-buffer layout
(:func:`~repro.runtime.plan_workspace_nbytes`); the child binds its plans
*into* the segment's arena (``bind_plan(workspace=...)``), so a plan whose
output lands in the arena is published to the parent without a single
copy.  Only a compact fixed-size header (magic, kind, lane, dtype code,
seq, shape) plus a tiny control tuple cross the pipe per request.

**Spawn-safe by construction, fork as fast path.**  The worker entry point
is a module-level function taking only picklable arguments, so the tier
runs unchanged under ``spawn`` (the only method on Windows/macOS
defaults) — ``fork`` is merely faster to start and is the default where
available (``REPRO_PROCESS_START_METHOD`` overrides).

On top of the executor sit the two robustness pieces of the serving
roadmap: **priority lanes** (``lane="interactive"`` requests — the
streaming ``forecast_latest`` path — jump ahead of queued ``lane="bulk"``
backfill chunks on every worker) and **admission control**
(:class:`_LaneGate` enforces a bounded per-lane queue depth with a
:class:`ServiceOverloaded` fast-reject, so a saturated service degrades
predictably instead of queueing without bound).

Lifecycle is explicit: ``close()`` (or leaving the executor's context)
drains the dispatchers, stops the workers, and unlinks every shared-memory
segment; a worker that dies mid-batch is detected, its in-flight request
failed with partial-progress info, and the worker respawned on the same
segment.  A module-level ``atexit`` hook closes executors that were never
closed, so interpreter shutdown leaks neither orphaned processes nor
``/dev/shm`` segments — and the hook is pid-guarded so a *forked child*
exiting never tears down its parent's tier.
"""

from __future__ import annotations

import atexit
import os
import shutil
import struct
import tempfile
import threading
import time
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime import (
    ArtifactStore,
    CompiledModel,
    bind_plan,
    bucket_batch_size,
    plan_workspace_nbytes,
    resolve_precision,
)
from ..runtime.engine import pad_batch_to_bucket
from .faults import FaultPlan, fault_point, install_fault_plan
from .resilience import Deadline, TransientError, WatchdogConfig, WorkerCrashed

__all__ = [
    "EXECUTOR_ENV_VAR",
    "SERVING_EXECUTORS",
    "START_METHOD_ENV_VAR",
    "LANES",
    "LaneStats",
    "ProcessTierStats",
    "ProcessShardExecutor",
    "ServiceOverloaded",
    "resolve_executor",
    "resolve_start_method",
]

#: Environment variable selecting the sharded service's shard executor.
EXECUTOR_ENV_VAR = "REPRO_SERVING_EXECUTOR"

#: Supported shard executors of :class:`~repro.serving.ShardedForecastService`.
SERVING_EXECUTORS = ("threads", "processes")

#: Environment variable selecting the worker start method (fork/spawn/...).
START_METHOD_ENV_VAR = "REPRO_PROCESS_START_METHOD"

#: Request-priority lanes, highest priority first.
LANES = ("interactive", "bulk")

_LANE_IDS = {lane: index for index, lane in enumerate(LANES)}
_LANE_NAMES = {index: lane for lane, index in _LANE_IDS.items()}


def resolve_executor(executor: Optional[str] = None, runtime: str = "compiled") -> str:
    """Resolve the shard executor: explicit argument > env var > threads.

    The process tier replays *compiled plans* — it has nothing to run for
    an autograd deployment.  An **explicit** ``executor="processes"``
    combined with a non-compiled runtime is a configuration error and
    raises (before anything spawns); a process preference coming only from
    the :data:`EXECUTOR_ENV_VAR` environment falls back to ``"threads"``
    silently, so exporting the variable fleet-wide never breaks the
    autograd escape hatch.
    """
    explicit = executor is not None
    if executor is None:
        executor = os.environ.get(EXECUTOR_ENV_VAR, "").strip().lower() or "threads"
    executor = executor.lower()
    if executor not in SERVING_EXECUTORS:
        raise ValueError(
            f"unknown shard executor {executor!r}; expected one of {SERVING_EXECUTORS} "
            f"(set via argument or the {EXECUTOR_ENV_VAR} environment variable)"
        )
    if executor == "processes" and runtime != "compiled":
        if explicit:
            raise ValueError(
                "executor='processes' requires the compiled runtime: worker "
                "processes replay plan artifacts and never trace; "
                f"runtime={runtime!r} has no plans to replay"
            )
        return "threads"
    return executor


def resolve_start_method(method: Optional[str] = None) -> str:
    """Resolve the worker start method: argument > env var > fork > spawn.

    ``fork`` is the fast path (no interpreter boot, no module re-import);
    ``spawn`` is the portable contract the tier is written against — the
    worker entry point takes only picklable arguments, so every method in
    :func:`multiprocessing.get_all_start_methods` works.
    """
    import multiprocessing as mp

    if method is None:
        method = os.environ.get(START_METHOD_ENV_VAR, "").strip().lower() or None
    available = mp.get_all_start_methods()
    if method is None:
        return "fork" if "fork" in available else "spawn"
    method = method.lower()
    if method not in available:
        raise ValueError(
            f"start method {method!r} is not available on this platform; "
            f"expected one of {tuple(available)} (set via argument or the "
            f"{START_METHOD_ENV_VAR} environment variable)"
        )
    return method


class ServiceOverloaded(RuntimeError):
    """Fast-reject raised when a lane's admission-control depth is exceeded.

    Carries the lane, its observed queue depth and the configured limit so
    callers (and load shedders above them) can log an actionable reason.
    The request was rejected at *accept* time — nothing was enqueued, so
    nothing is silently dropped later.

    Machine-usable backoff contract (stable fields):

    - ``retry_after_hint`` — suggested client backoff in **seconds** before
      retrying this lane, derived from how far over its limit the lane is.
      A hint, not a promise: the lane may still be full after the wait.
    - ``depths`` — a ``{lane: pending_rows}`` snapshot across *all* lanes
      at reject time, so a client can decide to retry on another lane
      (e.g. downgrade interactive work to bulk) instead of waiting.
    """

    def __init__(
        self,
        lane: str,
        pending: int,
        limit: int,
        retry_after_hint: Optional[float] = None,
        depths: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(
            f"{lane} lane is over its admission limit "
            f"({pending} pending >= limit {limit}); request rejected"
        )
        self.lane = lane
        self.pending = pending
        self.limit = limit
        if retry_after_hint is None:
            # Heuristic: scale a small base wait by the overflow ratio, so
            # the deeper over-limit the lane is, the longer the hint.
            over = (pending / limit) if limit else 1.0
            retry_after_hint = min(0.05 * max(over, 1.0), 5.0)
        self.retry_after_hint = float(retry_after_hint)
        self.depths = dict(depths) if depths is not None else {lane: pending}


@dataclass(frozen=True)
class LaneStats:
    """Admission-control counters of one priority lane."""

    lane: str
    depth_limit: Optional[int]
    admitted: int
    rejected: int
    pending: int


class _LaneGate:
    """Bounded-admission gate for one lane.

    ``depth_fn`` reports the lane's *live* queue depth (batcher queues plus
    any process-tier dispatch queues); :meth:`admit` rejects when admitting
    ``rows`` more would push it past the limit.  A ``None`` limit never
    rejects but still counts admissions, so ``stats()`` stays meaningful
    for unbounded deployments.
    """

    def __init__(
        self,
        lane: str,
        limit: Optional[int],
        depth_fn: Callable[[], int],
        snapshot_fn: Optional[Callable[[], Dict[str, int]]] = None,
    ) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"{lane}_queue_depth must be >= 0 when set")
        self.lane = lane
        self.limit = limit
        self._depth_fn = depth_fn
        self._snapshot_fn = snapshot_fn
        self._lock = threading.Lock()
        self._admitted = 0
        self._rejected = 0

    def admit(self, rows: int) -> None:
        """Admit ``rows`` requests or raise :class:`ServiceOverloaded`."""
        pending = self._depth_fn()
        with self._lock:
            if self.limit is not None and pending + rows > self.limit:
                self._rejected += rows
                depths = self._snapshot_fn() if self._snapshot_fn is not None else None
                raise ServiceOverloaded(self.lane, pending, self.limit, depths=depths)
            self._admitted += rows

    def stats(self) -> LaneStats:
        with self._lock:
            return LaneStats(
                lane=self.lane,
                depth_limit=self.limit,
                admitted=self._admitted,
                rejected=self._rejected,
                pending=self._depth_fn(),
            )


@dataclass(frozen=True)
class ProcessTierStats:
    """Operational counters of a running process tier."""

    start_method: str
    workers: int
    respawns: int
    interactive_batches: int
    bulk_batches: int
    interactive_rows: int
    bulk_rows: int
    segment_nbytes: int
    escalations: int = 0
    hung_detections: int = 0


# ----------------------------------------------------------------------
# The shared-memory wire protocol.
#
# One segment per shard:
# ``[heartbeat block][request slots][response slots][plan arena]``.
# Each slot is a fixed 128-byte header followed by a payload region; the
# header records everything needed to view the payload as an ndarray (and
# for an arena-resident output, ``offset`` points straight into the arena
# — the zero-copy publish).  Slot index is ``seq % slots``; the dispatcher
# fully consumes a response before issuing the next request, so two slots
# are already one more than strictly required.
#
# The heartbeat block holds the worker's liveness beacon: a magic word,
# a monotonically-increasing beat counter, and a ``time.monotonic()``
# timestamp (valid across processes on Linux — CLOCK_MONOTONIC is
# system-wide).  The worker writes it from its *serve loop only* — never
# a side thread — so a wedged main loop (hang, deadlock, runaway compute)
# stops the beacon, which is exactly what the parent's watchdog watches.
# Corollary: a legitimate long plan replay also pauses the beacon, so the
# watchdog's ``hang_timeout_s`` must exceed worst-case single-chunk
# compute time (documented on :class:`~repro.serving.WatchdogConfig`).
# ----------------------------------------------------------------------
_MAGIC = 0x52504C4E  # "RPLN"
_HEADER = struct.Struct("<IBBBBQQQ8Q")  # magic kind lane dtype ndim seq nbytes offset dims[8]
_HEADER_NBYTES = 128
_ALIGN = 64
_KIND_REQ = 1
_KIND_OK = 2
_KIND_ERR = 3
_DTYPE_CODES = {"float64": 0, "float32": 1}
_DTYPE_BY_CODE = {code: np.dtype(name) for name, code in _DTYPE_CODES.items()}

_HB_MAGIC = 0x48425254  # "HBRT"
_HB_STRUCT = struct.Struct("<QQd")  # magic beat monotonic-timestamp
_HB_NBYTES = 64  # one aligned block at segment offset 0


def _write_heartbeat(shm, beat: int) -> None:
    shm.buf[0 : _HB_STRUCT.size] = _HB_STRUCT.pack(_HB_MAGIC, beat, time.monotonic())


def _read_heartbeat(shm) -> Optional[Tuple[int, float]]:
    """``(beat, timestamp)`` of the worker's last beacon, or ``None``.

    The 24-byte read is not atomic against the worker's write; a torn read
    fails the magic check (or yields a slightly stale timestamp), both of
    which the watchdog tolerates — it only acts on *seconds* of silence.
    """
    magic, beat, stamp = _HB_STRUCT.unpack(bytes(shm.buf[0 : _HB_STRUCT.size]))
    if magic != _HB_MAGIC:
        return None
    return beat, stamp


def _align(nbytes: int) -> int:
    return nbytes + (-nbytes) % _ALIGN


@dataclass(frozen=True)
class _SegmentLayout:
    """Byte layout of one shard's shared-memory segment."""

    slots: int
    request_payload_cap: int
    response_payload_cap: int
    request_stride: int
    response_stride: int
    request_base: int
    response_base: int
    arena_offset: int
    arena_nbytes: int
    total_nbytes: int

    @classmethod
    def build(
        cls, request_payload_cap: int, response_payload_cap: int, arena_nbytes: int, slots: int = 2
    ) -> "_SegmentLayout":
        request_stride = _align(_HEADER_NBYTES + request_payload_cap)
        response_stride = _align(_HEADER_NBYTES + response_payload_cap)
        request_base = _HB_NBYTES
        response_base = request_base + slots * request_stride
        arena_offset = response_base + slots * response_stride
        return cls(
            slots=slots,
            request_payload_cap=request_payload_cap,
            response_payload_cap=response_payload_cap,
            request_stride=request_stride,
            response_stride=response_stride,
            request_base=request_base,
            response_base=response_base,
            arena_offset=arena_offset,
            arena_nbytes=arena_nbytes,
            total_nbytes=arena_offset + arena_nbytes,
        )

    def request_offset(self, slot: int) -> int:
        return self.request_base + slot * self.request_stride

    def response_offset(self, slot: int) -> int:
        return self.response_base + slot * self.response_stride


def _pack_header(kind, lane_id, dtype_code, seq, nbytes, offset, shape) -> bytes:
    dims = list(shape) + [0] * (8 - len(shape))
    return _HEADER.pack(
        _MAGIC, kind, lane_id, dtype_code, len(shape), seq, nbytes, offset, *dims
    )


def _unpack_header(raw: bytes):
    fields = _HEADER.unpack(raw[: _HEADER.size])
    magic, kind, lane_id, dtype_code, ndim = fields[:5]
    seq, nbytes, offset = fields[5:8]
    dims = fields[8:]
    return magic, kind, lane_id, dtype_code, ndim, seq, nbytes, offset, dims


# ----------------------------------------------------------------------
# Worker-process side.  Module-level and picklable-argument-only, so the
# tier is spawn-safe by construction; fork merely starts faster.
# ----------------------------------------------------------------------
def _worker_reply_error(conn, shm, layout, slot, seq, message: str) -> None:
    payload = message.encode("utf-8")[: layout.response_payload_cap]
    offset = layout.response_offset(slot) + _HEADER_NBYTES
    shm.buf[offset : offset + len(payload)] = payload
    header = _pack_header(_KIND_ERR, 0, 0, seq, len(payload), offset, ())
    base = layout.response_offset(slot)
    shm.buf[base : base + _HEADER.size] = header
    conn.send(("res", seq, slot))


def _worker_get_plan(plans, stores, key, arena, layout):
    """Bind (or fetch) the plan for one artifact key — never trace."""
    plan = plans.get(key)
    if plan is not None:
        plans.move_to_end(key)
        return plan
    fault_point("artifact.load")
    spec = values = None
    last_error: Optional[Exception] = None
    for store in stores:
        try:
            loaded = store.load(key)
        except Exception as error:  # ArtifactError: unreadable/corrupt file
            last_error = error
            continue
        if loaded is not None:
            spec, values, _meta = loaded
            break
    if spec is None:
        detail = f" ({last_error})" if last_error is not None else ""
        raise KeyError(f"no artifact for plan key {key}{detail}")
    workspace = arena if plan_workspace_nbytes(spec.storage_sizes) <= layout.arena_nbytes else None
    plan = bind_plan(spec, values, workspace=workspace)
    plans[key] = plan
    while len(plans) > 16:
        plans.popitem(last=False)
    return plan


def _worker_serve_one(conn, shm, seg_addr, plans, stores, arena, layout, threads, message, request_delay) -> None:
    tag, seq, slot, key = message
    base = layout.request_offset(slot)
    try:
        magic, kind, _lane_id, dtype_code, ndim, hdr_seq, nbytes, offset, dims = _unpack_header(
            bytes(shm.buf[base : base + _HEADER.size])
        )
        if magic != _MAGIC:
            raise ValueError(f"bad request magic 0x{magic:08x}")
        if kind != _KIND_REQ:
            raise ValueError(f"bad request kind {kind}")
        if hdr_seq != seq:
            raise ValueError(f"request header seq {hdr_seq} != control seq {seq}")
        if dtype_code not in _DTYPE_BY_CODE:
            raise ValueError(f"unknown dtype code {dtype_code}")
        if not 1 <= ndim <= 8:
            raise ValueError(f"bad request ndim {ndim}")
        dtype = _DTYPE_BY_CODE[dtype_code]
        shape = tuple(int(dim) for dim in dims[:ndim])
        expected = int(np.prod(shape)) * dtype.itemsize
        if expected != nbytes:
            raise ValueError(f"shape {shape} x {dtype.name} is {expected} bytes, header says {nbytes}")
        if offset + nbytes > layout.total_nbytes:
            raise ValueError(f"payload [{offset}, {offset + nbytes}) overruns the segment")
        window = np.frombuffer(shm.buf, dtype=dtype, count=int(np.prod(shape)), offset=offset).reshape(shape)
        if request_delay:
            time.sleep(request_delay)  # legacy fault-injection hook (tests only)
        fault_point("worker.dispatch", window)
        plan = _worker_get_plan(plans, stores, key, arena, layout)
        if plan.spec.dtype != dtype.name or tuple(plan.spec.stats.input_shape) != shape:
            raise ValueError(
                f"plan {key} expects {tuple(plan.spec.stats.input_shape)} "
                f"{plan.spec.dtype}; request is {shape} {dtype.name}"
            )
        result = plan.execute(window, threads=threads)
    except Exception as error:
        _worker_reply_error(conn, shm, layout, slot, seq, f"{type(error).__name__}: {error}")
        return
    result = np.ascontiguousarray(result)
    addr = result.__array_interface__["data"][0]
    if seg_addr <= addr and addr + result.nbytes <= seg_addr + layout.total_nbytes:
        # Zero-copy publish: the plan's output already lives in the arena.
        out_offset = addr - seg_addr
    else:
        out_offset = layout.response_offset(slot) + _HEADER_NBYTES
        if result.nbytes > layout.response_payload_cap:
            _worker_reply_error(
                conn, shm, layout, slot, seq,
                f"result of {result.nbytes} bytes exceeds the "
                f"{layout.response_payload_cap}-byte response slot",
            )
            return
        np.frombuffer(shm.buf, dtype=result.dtype, count=result.size, offset=out_offset)[
            :
        ] = result.reshape(-1)
    try:
        fault_point("shm.publish")
    except Exception as error:
        _worker_reply_error(conn, shm, layout, slot, seq, f"{type(error).__name__}: {error}")
        return
    header = _pack_header(
        _KIND_OK, 0, _DTYPE_CODES[result.dtype.name], seq, result.nbytes, out_offset, result.shape
    )
    base = layout.response_offset(slot)
    shm.buf[base : base + _HEADER.size] = header
    conn.send(("res", seq, slot))


def _worker_main(conn, shm_name, layout, store_roots, threads, request_delay=0.0,
                 fault_plan=None) -> None:
    """Entry point of one shard's worker process: bind, replay, publish."""
    import gc
    import signal
    from multiprocessing import shared_memory

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # A forked child inherits the parent's (now thread-less) island pool
    # object; reset it so the first threaded replay builds a fresh one.
    from ..runtime import engine as _engine

    _engine._POOL = None
    _engine._POOL_WORKERS = 0

    # Resource-tracker hygiene: every multiprocessing child — spawn and
    # fork alike — inherits the PARENT's resource tracker (the tracker fd
    # travels in the spawn preparation data), so the attach below re-adds
    # a name that is already in the tracker's set (a no-op) and the child
    # must NOT unregister it: that would cancel the parent's registration
    # and turn the parent's own unlink into a tracker error.  The parent
    # is the segment's sole owner; the child only maps and unmaps.
    if fault_plan is not None:
        # The plan travelled over the spawn/fork pickle boundary; install
        # it so this process's fault points fire on their own deterministic
        # visit sequence.
        install_fault_plan(fault_plan)

    shm = shared_memory.SharedMemory(name=shm_name)
    segment = np.frombuffer(shm.buf, dtype=np.uint8)
    seg_addr = segment.__array_interface__["data"][0]
    arena = segment[layout.arena_offset : layout.arena_offset + layout.arena_nbytes]
    stores = [ArtifactStore(root, readonly=True) for root in store_roots]
    plans: "OrderedDict[str, object]" = OrderedDict()
    beat = 0
    try:
        while True:
            # Liveness beacon: written only from this serve loop, so a
            # wedged loop stops the beacon and trips the parent watchdog.
            beat += 1
            _write_heartbeat(shm, beat)
            try:
                if not conn.poll(0.05):
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                return
            if not isinstance(message, tuple) or not message:
                continue
            if message[0] == "stop":
                return
            if message[0] != "req" or len(message) != 4:
                continue
            beat += 1
            _write_heartbeat(shm, beat)
            _worker_serve_one(
                conn, shm, seg_addr, plans, stores, arena, layout, threads,
                message, request_delay,
            )
    finally:
        # Drop every view into the mapping before closing it; a dangling
        # buffer export would raise BufferError from shm.close().  The OS
        # reclaims the mapping at process exit either way, and the parent
        # — never the child — unlinks the segment.
        plans.clear()
        del arena, segment
        gc.collect()
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exiting anyway
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Parent side: per-shard dispatch with lane priority.
# ----------------------------------------------------------------------
class _WorkerDied(RuntimeError):
    """Internal: the worker process exited while a request was in flight."""


class _WorkerHung(RuntimeError):
    """Internal: the worker is alive but its heartbeat went silent too long."""


class _Job:
    __slots__ = ("array", "lane", "key", "trim", "deadline", "event", "result", "error")

    def __init__(self, array: np.ndarray, lane: str, key: str, trim: int,
                 deadline: Optional[Deadline] = None) -> None:
        self.array = array
        self.lane = lane
        self.key = key
        self.trim = trim
        self.deadline = deadline
        self.event = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None


class _LaneQueue:
    """Two-lane priority queue: interactive jobs always dequeue first."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queues: Dict[str, "deque[_Job]"] = {lane: deque() for lane in LANES}
        self._in_flight: Dict[str, int] = {lane: 0 for lane in LANES}
        self._stopped = False

    def put(self, job: _Job) -> None:
        with self._cond:
            self._queues[job.lane].append(job)
            self._cond.notify()

    def get(self) -> Optional[_Job]:
        """Next job, interactive first; ``None`` once stopped *and* drained."""
        with self._cond:
            while True:
                for lane in LANES:
                    if self._queues[lane]:
                        job = self._queues[lane].popleft()
                        self._in_flight[job.lane] += job.trim
                        return job
                if self._stopped:
                    return None
                self._cond.wait()

    def task_done(self, job: _Job) -> None:
        with self._cond:
            self._in_flight[job.lane] -= job.trim

    def pending_rows(self, lane: str) -> int:
        """Rows queued or in flight on one lane (admission-control depth)."""
        with self._cond:
            return sum(job.trim for job in self._queues[lane]) + self._in_flight[lane]

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()


class _ProcessWorker:
    """One shard's worker process, its segment, and its dispatcher thread."""

    def __init__(self, shard: int, ctx, start_method: str, layout: _SegmentLayout,
                 store_roots: Sequence[str], threads: int, request_delay: float,
                 watchdog: Optional[WatchdogConfig] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        from multiprocessing import shared_memory

        self.shard = shard
        self._ctx = ctx
        self._start_method = start_method
        self.layout = layout
        self._store_roots = list(store_roots)
        self._threads = threads
        self._request_delay = request_delay
        self._watchdog = watchdog if watchdog is not None else WatchdogConfig()
        self._fault_plan = fault_plan
        self.respawns = 0
        self.escalations = 0
        self.hung_detections = 0
        self._respawn_times: "deque[float]" = deque()
        self._seq = 0
        self._corrupt_next_request = False  # legacy fault-injection hook (tests)
        self.shm = shared_memory.SharedMemory(
            create=True, size=layout.total_nbytes
        )
        self.queue = _LaneQueue()
        self.process = None
        self.conn = None
        self._spawn()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"repro-process-shard-{shard}", daemon=True
        )
        self._dispatcher.start()

    # -- process lifecycle ---------------------------------------------
    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.shm.name, self.layout, self._store_roots,
                  self._threads, self._request_delay, self._fault_plan),
            name=f"repro-plan-worker-{self.shard}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def _stop_process(self, grace: float = 1.0) -> None:
        """Reap the worker, escalating join → terminate → kill.

        ``process.join(timeout=...)`` alone can leave a live process behind
        (a wedged worker never exits on its own); each escalation step that
        has to fire is counted in ``stats().process_tier.escalations``.
        """
        self.process.join(timeout=grace)
        if self.process.is_alive():
            self.escalations += 1
            self.process.terminate()
            self.process.join(timeout=grace)
        if self.process.is_alive():
            self.escalations += 1
            self.process.kill()
            self.process.join(timeout=grace)

    def _respawn_delay(self) -> float:
        """Capped exponential backoff from the recent-respawn history.

        The first respawn inside a quiet window is immediate (fast
        recovery from an isolated crash); repeats double the delay up to
        the cap, and crossing ``storm_threshold`` respawns inside
        ``storm_window_s`` pins the delay at the cap (storm protection).
        """
        wd = self._watchdog
        now = time.monotonic()
        while self._respawn_times and now - self._respawn_times[0] > wd.storm_window_s:
            self._respawn_times.popleft()
        recent = len(self._respawn_times)
        if recent == 0:
            return 0.0
        if recent >= wd.storm_threshold:
            return wd.respawn_backoff_cap_s
        return min(
            wd.respawn_backoff_base_s * (2.0 ** (recent - 1)), wd.respawn_backoff_cap_s
        )

    def _respawn(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self._stop_process()
        delay = self._respawn_delay()
        self._respawn_times.append(time.monotonic())
        if delay > 0.0:
            time.sleep(delay)
        self.respawns += 1
        self._spawn()

    # -- dispatch ------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:
                return
            try:
                if job.deadline is not None:
                    # Fail fast: an expired request must not occupy the
                    # worker for a result nobody is waiting on.
                    job.deadline.check("process-queue")
                job.result = self._roundtrip(job)
            except _WorkerHung as hang:
                self.hung_detections += 1
                job.error = WorkerCrashed(self.shard, str(hang), hung=True)
                self._respawn()
            except _WorkerDied as death:
                job.error = WorkerCrashed(self.shard, str(death))
                self._respawn()
            except BaseException as error:
                job.error = error
            finally:
                job.array = None  # type: ignore[assignment]
                self.queue.task_done(job)
                job.event.set()

    def heartbeat_age(self) -> Optional[float]:
        """Seconds since the worker's last beacon (``None`` before first)."""
        beacon = _read_heartbeat(self.shm)
        if beacon is None:
            return None
        return max(0.0, time.monotonic() - beacon[1])

    def _roundtrip(self, job: _Job) -> np.ndarray:
        self._seq += 1
        seq = self._seq
        slot = seq % self.layout.slots
        array = job.array
        payload_offset = self.layout.request_offset(slot) + _HEADER_NBYTES
        np.frombuffer(self.shm.buf, dtype=array.dtype, count=array.size, offset=payload_offset)[
            :
        ] = array.reshape(-1)
        header = _pack_header(
            _KIND_REQ, _LANE_IDS[job.lane], _DTYPE_CODES[array.dtype.name],
            seq, array.nbytes, payload_offset, array.shape,
        )
        base = self.layout.request_offset(slot)
        self.shm.buf[base : base + _HEADER.size] = header
        if self._corrupt_next_request:
            self._corrupt_next_request = False
            self.shm.buf[base] = (self.shm.buf[base] + 1) % 256
        try:
            self.conn.send(("req", seq, slot, job.key))
        except (BrokenPipeError, OSError) as error:
            raise _WorkerDied(f"pipe send failed: {error}") from None
        sent_at = time.monotonic()
        hang_timeout = self._watchdog.hang_timeout_s
        while True:
            try:
                if self.conn.poll(0.05):
                    break
            except (BrokenPipeError, OSError) as error:
                raise _WorkerDied(f"pipe poll failed: {error}") from None
            if not self.process.is_alive():
                # One generous final poll: the response may already be
                # buffered even though the process has since exited.
                if self.conn.poll(0.2):
                    break
                raise _WorkerDied(
                    f"pid {self.process.pid}, exitcode {self.process.exitcode}"
                )
            waited = time.monotonic() - sent_at
            if waited > hang_timeout:
                # The worker is alive but silent past the hang budget AND
                # its heartbeat beacon is stale — it is wedged, not merely
                # slow (a healthy worker beacons between requests, so only
                # a single-request compute longer than hang_timeout_s can
                # false-positive; that bound is part of the config
                # contract).
                age = self.heartbeat_age()
                if age is None or age > hang_timeout:
                    raise _WorkerHung(
                        f"pid {self.process.pid} silent for {waited:.2f}s "
                        f"(heartbeat age {'unknown' if age is None else f'{age:.2f}s'}, "
                        f"hang_timeout_s={hang_timeout})"
                    )
        try:
            message = self.conn.recv()
        except (EOFError, OSError) as error:
            raise _WorkerDied(f"pipe recv failed: {error}") from None
        if not (isinstance(message, tuple) and len(message) == 3 and message[0] == "res" and message[1] == seq):
            raise _WorkerDied(f"malformed response control message {message!r}")
        base = self.layout.response_offset(message[2])
        magic, kind, _lane, dtype_code, ndim, hdr_seq, nbytes, offset, dims = _unpack_header(
            bytes(self.shm.buf[base : base + _HEADER.size])
        )
        if magic != _MAGIC or hdr_seq != seq:
            raise _WorkerDied(f"malformed response header (magic 0x{magic:08x}, seq {hdr_seq})")
        if kind == _KIND_ERR:
            raw = bytes(self.shm.buf[offset : offset + nbytes])
            detail = raw.decode("utf-8", "replace")
            if detail.startswith(("InjectedFault:", "ArtifactError:")):
                # Transient by contract: injected chaos faults and
                # artifact-load rejects (a torn read during a concurrent
                # spill, an unreadable store replica) clear on retry.
                raise TransientError(f"process worker rejected request: {detail}")
            raise RuntimeError(f"process worker rejected request: {detail}")
        dtype = _DTYPE_BY_CODE[dtype_code]
        shape = tuple(int(dim) for dim in dims[:ndim])
        view = np.frombuffer(
            self.shm.buf, dtype=dtype, count=int(np.prod(shape)), offset=offset
        ).reshape(shape)
        # astype(copy=True) both detaches the result from the segment and
        # applies the float64 exit cast of the precision contract — exactly
        # what Plan.call does on the thread tier.
        return view[: job.trim].astype(np.float64)

    # -- shutdown ------------------------------------------------------
    def close(self) -> None:
        self.queue.stop()
        if self._dispatcher.is_alive():
            try:
                self._dispatcher.join()
            except RuntimeError:  # pragma: no cover - interpreter teardown
                pass
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._stop_process()
        try:
            self.conn.close()
        except OSError:
            pass
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view still exported
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


# ----------------------------------------------------------------------
# The executor.
# ----------------------------------------------------------------------
_LIVE: "weakref.WeakSet[ProcessShardExecutor]" = weakref.WeakSet()


def _close_all_executors() -> None:
    """Interpreter-shutdown safety net: close tiers nobody closed."""
    for executor in list(_LIVE):
        try:
            executor.close()
        except Exception:  # pragma: no cover - best effort at exit
            pass
        if os.getpid() == executor._owner_pid:
            # Post-close serving may have re-spilled plans; sweep again.
            shutil.rmtree(executor._spill_root, ignore_errors=True)


atexit.register(_close_all_executors)


class _ProviderSet:
    """One weights generation's parent-side compile/validate engines.

    A hot checkpoint swap builds a fresh set (new :class:`CompiledModel`
    providers over the new weights, empty artifact-key memo) and installs
    it atomically; proxies pin the set they were built against, so a
    batcher flushing late still replays its own generation's plans.
    """

    __slots__ = ("providers", "keys")

    def __init__(self, providers: List[CompiledModel]) -> None:
        self.providers = providers
        self.keys: Dict[Tuple[int, Tuple[int, ...], str], str] = {}


class _ProcessShardForward:
    """The per-shard ``forward_fn`` handed to a shard's micro-batcher.

    Call-compatible with the :class:`~repro.runtime.CompiledModel` it
    replaces (arrays or Tensors in, ``(B, T', span)`` float64 arrays out;
    per-request ``precision=`` honoured) and delegating the plan-cache
    management surface (``cache_info`` / ``save_artifacts`` /
    ``compile_for``) to the shard's parent-side provider — warm-up, AOT
    export and the warm-start counter contracts are executor-agnostic.

    The forward pins the provider set it was built against: after a hot
    swap, in-flight work queued on an old generation's batcher settles
    with that generation's plans, never the new one's.
    """

    def __init__(self, tier: "ProcessShardExecutor", shard: int,
                 pset: Optional[_ProviderSet] = None) -> None:
        self._tier = tier
        self._shard = shard
        self._pset = pset if pset is not None else tier.current_generation()

    def __call__(self, x, precision: Optional[str] = None, lane: str = "bulk",
                 deadline: Optional[Deadline] = None) -> np.ndarray:
        array = x.data if hasattr(x, "data") else np.asarray(x)
        return self._tier.call(
            self._shard, array, lane=lane, precision=precision, pset=self._pset,
            deadline=deadline,
        )

    # Plan-cache surface, delegated to the parent-side provider.
    def cache_info(self):
        return self._tier.provider(self._shard, pset=self._pset).cache_info()

    def save_artifacts(self, path=None):
        return self._tier.provider(self._shard, pset=self._pset).save_artifacts(path)

    def compile_for(self, example, precision=None):
        return self._tier.provider(self._shard, pset=self._pset).compile_for(
            example, precision=precision
        )

    @property
    def precision(self) -> str:
        return self._tier.provider(self._shard, pset=self._pset).precision

    @property
    def threads(self) -> int:
        return self._tier.provider(self._shard, pset=self._pset).threads


class ProcessShardExecutor:
    """Replay each serving shard's compiled plans in its own worker process.

    Parameters
    ----------
    model:
        The served module; compiled (and parity-spot-checked) only in the
        parent, by one :class:`~repro.runtime.CompiledModel` *provider* per
        shard.  Workers bind the resulting artifacts — they never trace.
    slices:
        Per-shard ``(lo, hi)`` output-column slices (node sharding), or
        ``None`` for full-output replicas.
    window_shape / output_length / num_nodes:
        Geometry of the served model (request and response slot sizing).
    precision / threads / artifact_store:
        As for the thread tier; the store (when given) is shared with the
        workers by *root path* — a worker binds from disk, not from the
        parent's memo.  Plans missing from disk (e.g. a read-only store)
        are spilled to a private temp store the workers also search.
    start_method:
        ``fork`` / ``spawn`` / ``forkserver``; ``None`` consults
        ``REPRO_PROCESS_START_METHOD`` then prefers fork.
    bulk_chunk_rows:
        Dispatch granularity of bulk batches.  Smaller chunks bound how
        long a queued ``interactive`` request can be stuck behind bulk
        work already in flight (one chunk's forward), at a small
        amortisation cost.

    Workers, segments and dispatchers spawn **lazily** on the first
    dispatch to each shard, so constructing a service (or serving purely
    through its thread-side caches) starts no processes — and the segment
    arena can be sized from the first request's actual plan layout.
    """

    def __init__(
        self,
        model,
        *,
        slices: Optional[Sequence[Tuple[int, int]]],
        num_shards: int,
        window_shape: Tuple[int, int, int],
        output_length: int,
        num_nodes: int,
        precision: Optional[str] = None,
        threads: Optional[int] = None,
        artifact_store: Optional[ArtifactStore] = None,
        start_method: Optional[str] = None,
        bulk_chunk_rows: int = 32,
        watchdog: Optional[WatchdogConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        _request_delay: float = 0.0,
    ) -> None:
        import multiprocessing as mp

        if bulk_chunk_rows <= 0:
            raise ValueError("bulk_chunk_rows must be positive")
        self._owner_pid = os.getpid()
        self.start_method = resolve_start_method(start_method)
        self._ctx = mp.get_context(self.start_method)
        self.num_shards = num_shards
        self._slices = list(slices) if slices is not None else None
        self._window_shape = tuple(int(dim) for dim in window_shape)
        self._output_length = int(output_length)
        self._num_nodes = int(num_nodes)
        self._chunk_rows = int(bulk_chunk_rows)
        self._watchdog = watchdog if watchdog is not None else WatchdogConfig()
        self._fault_plan = fault_plan
        self._request_delay = float(_request_delay)
        self._spill_root = tempfile.mkdtemp(prefix="repro-plan-spill-")
        self._spill = ArtifactStore(self._spill_root)
        self._precision = precision
        self._threads = threads
        self._provider_store = artifact_store if artifact_store is not None else self._spill
        self._pset = self._build_pset(model)
        self._store_roots: List[str] = []
        if artifact_store is not None:
            self._store_roots.append(str(artifact_store.root))
        self._store_roots.append(self._spill_root)
        self._workers: List[Optional[_ProcessWorker]] = [None] * num_shards
        self._spawn_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._lane_batches = {lane: 0 for lane in LANES}
        self._lane_rows = {lane: 0 for lane in LANES}
        self._closed = False
        _LIVE.add(self)

    # ------------------------------------------------------------------
    def _build_pset(self, model) -> _ProviderSet:
        """One provider (compile/validate engine) per shard over ``model``."""
        return _ProviderSet(
            [
                CompiledModel(
                    model,
                    output_slice=self._slices[shard] if self._slices is not None else None,
                    precision=self._precision,
                    threads=self._threads,
                    artifact_dir=self._provider_store,
                )
                for shard in range(self.num_shards)
            ]
        )

    def current_generation(self) -> _ProviderSet:
        """The provider set new proxies pin by default."""
        return self._pset

    def prepare_generation(self, model) -> _ProviderSet:
        """Build (but do not install) a provider set for new weights.

        The returned set is safe to warm up — compiling and spot-checking
        plans against the deployment store — while the current generation
        keeps serving; :meth:`install_generation` publishes it.
        """
        return self._build_pset(model)

    def install_generation(self, pset: _ProviderSet) -> None:
        """Make ``pset`` the generation that new proxies pin."""
        self._pset = pset

    def provider(self, shard: int, pset: Optional[_ProviderSet] = None) -> CompiledModel:
        """The parent-side compile/validate engine of one shard."""
        return (pset if pset is not None else self._pset).providers[shard]

    def _shard_span(self, shard: int) -> int:
        if self._slices is not None:
            lo, hi = self._slices[shard]
            return hi - lo
        return self._num_nodes

    def _ensure_key(self, shard: int, shape: Tuple[int, ...], dtype: np.dtype,
                    pset: Optional[_ProviderSet] = None) -> str:
        """Compile+spot-check in the parent; make the artifact disk-loadable."""
        pset = pset if pset is not None else self._pset
        memo_key = (shard, shape, dtype.name)
        key = pset.keys.get(memo_key)
        if key is not None:
            return key
        provider = pset.providers[shard]
        provider.ensure_validated(np.zeros(shape, dtype=dtype), precision=dtype.name)
        key = provider.artifact_key(shape, precision=dtype.name)
        on_disk = any(
            (Path(root) / f"{key}.plan.npz").exists() for root in self._store_roots
        )
        if not on_disk:
            # Read-only (or memo-only) deployment store: spill the plan to
            # the private temp store so the worker can bind it from disk.
            cached = provider.artifact_store.peek(key)
            if cached is not None:
                spec, constants = cached
                self._spill.save(key, spec, constants)
        pset.keys[memo_key] = key
        return key

    def _layout_for(self, shard: int, key: str,
                    pset: Optional[_ProviderSet] = None) -> _SegmentLayout:
        """Size one shard's segment from its first plan's buffer layout."""
        provider = self.provider(shard, pset=pset)
        spec = None
        for store in (provider.artifact_store, self._spill):
            # peek, not load: sizing the segment must not distort the
            # store's warm-start load/memo-hit accounting.
            cached = store.peek(key)
            if cached is not None:
                spec = cached[0]
                break
        rows = bucket_batch_size(self._chunk_rows, provider.bucket_cap)
        request_cap = rows * int(np.prod(self._window_shape)) * 8
        response_cap = max(rows * self._output_length * self._shard_span(shard) * 8, 4096)
        if spec is not None:
            first_rows = max(int(spec.stats.input_shape[0]), 1)
            workspace = plan_workspace_nbytes(spec.storage_sizes)
            # Workspace grows ~linearly in the batch; one extra multiple
            # absorbs the nonlinear parts.  A plan that still does not fit
            # binds on the worker's heap instead — slower, never wrong.
            scale = -(-rows // first_rows) + 1
            arena = workspace * scale
        else:  # pragma: no cover - defensive: key was just ensured
            arena = 64 * 1024 * 1024
        return _SegmentLayout.build(request_cap, response_cap, arena)

    def _ensure_worker(self, shard: int, key: str,
                       pset: Optional[_ProviderSet] = None) -> _ProcessWorker:
        worker = self._workers[shard]
        if worker is not None:
            return worker
        with self._spawn_lock:
            worker = self._workers[shard]
            if worker is None:
                worker = _ProcessWorker(
                    shard,
                    self._ctx,
                    self.start_method,
                    self._layout_for(shard, key, pset=pset),
                    self._store_roots,
                    self.provider(shard, pset=pset).threads,
                    self._request_delay,
                    watchdog=self._watchdog,
                    fault_plan=self._fault_plan,
                )
                self._workers[shard] = worker
        return worker

    # ------------------------------------------------------------------
    def _make_jobs(self, shard: int, array: np.ndarray, lane: str,
                   dtype: np.dtype, pset: Optional[_ProviderSet] = None,
                   deadline: Optional[Deadline] = None) -> List[_Job]:
        provider = self.provider(shard, pset=pset)
        jobs: List[_Job] = []
        for start in range(0, array.shape[0], self._chunk_rows):
            chunk = array[start : start + self._chunk_rows]
            trim = chunk.shape[0]
            padded, _ = pad_batch_to_bucket(chunk, provider.bucket_cap)
            padded = np.ascontiguousarray(padded)
            key = self._ensure_key(shard, padded.shape, dtype, pset=pset)
            job = _Job(padded, lane, key, trim, deadline=deadline)
            jobs.append(job)
        return jobs

    def _dispatch(self, shard: int, jobs: List[_Job],
                  pset: Optional[_ProviderSet] = None) -> None:
        worker = self._ensure_worker(shard, jobs[0].key, pset=pset)
        for job in jobs:
            worker.queue.put(job)
        with self._stats_lock:
            self._lane_batches[jobs[0].lane] += len(jobs)
            self._lane_rows[jobs[0].lane] += sum(job.trim for job in jobs)

    @staticmethod
    def _settle(jobs: List[_Job]) -> List[np.ndarray]:
        for job in jobs:
            job.event.wait()
        fulfilled = 0
        for job in jobs:
            if job.error is not None:
                error = job.error
                try:
                    error.fulfilled_before_error = fulfilled
                except (AttributeError, TypeError):  # pragma: no cover
                    pass
                raise error
            fulfilled += job.trim
        return [job.result for job in jobs]

    def call(self, shard: int, array, lane: str = "bulk",
             precision: Optional[str] = None,
             pset: Optional[_ProviderSet] = None,
             deadline: Optional[Deadline] = None) -> np.ndarray:
        """Forward one ``(B, T, N, F)`` batch through a shard's worker.

        Bit-identical to the thread tier: the batch is cast to the plan
        dtype and bucket-padded exactly as
        :meth:`~repro.runtime.CompiledModel.__call__` would, replayed by
        the worker, and the trimmed output exit-cast back to float64.
        ``pset`` selects the weights generation (default: current) — plans
        are compiled, keyed and replayed against that generation only.
        ``deadline`` rides with every dispatched chunk: a chunk still
        queued when the budget expires fails typed instead of computing
        (a chunk already *on the wire* completes — finished work is never
        thrown away).
        """
        if lane not in _LANE_IDS:
            raise ValueError(f"unknown lane {lane!r}; expected one of {LANES}")
        provider = self.provider(shard, pset=pset)
        array = np.asarray(array)
        if self._closed:
            # Post-close lazy serving: late handle.result() flushes must
            # still answer.  Degrade to the in-parent provider, which is
            # the same arithmetic.
            return np.asarray(provider(array, precision=precision))
        if array.shape[0] == 0:
            return np.empty((0, self._output_length, self._shard_span(shard)))
        if deadline is not None:
            deadline.check("process-accept")
        dtype = np.dtype(resolve_precision(precision if precision is not None else provider.precision))
        if array.dtype != dtype:
            array = array.astype(dtype)
        jobs = self._make_jobs(shard, array, lane, dtype, pset=pset, deadline=deadline)
        self._dispatch(shard, jobs, pset=pset)
        return np.concatenate(self._settle(jobs), axis=0)

    def call_fanout(self, shards: Sequence[int], array, lane: str = "bulk",
                    precision: Optional[str] = None,
                    pset: Optional[_ProviderSet] = None,
                    deadline: Optional[Deadline] = None,
                    return_errors: bool = False) -> List:
        """Forward one batch on several shards concurrently (node fan-out).

        With ``return_errors=True`` a failing shard contributes its
        exception object in place of an output array instead of aborting
        the whole fan-out — the caller can then degrade to a typed
        :class:`~repro.serving.PartialResult` rather than losing the
        healthy shards' work.
        """
        if self._closed:
            return [
                self.call(shard, array, lane=lane, precision=precision, pset=pset)
                for shard in shards
            ]
        array = np.asarray(array)
        if deadline is not None:
            deadline.check("process-accept")
        per_shard: List[List[_Job]] = []
        for shard in shards:
            provider = self.provider(shard, pset=pset)
            dtype = np.dtype(
                resolve_precision(precision if precision is not None else provider.precision)
            )
            shard_array = array.astype(dtype) if array.dtype != dtype else array
            jobs = self._make_jobs(shard, shard_array, lane, dtype, pset=pset,
                                   deadline=deadline)
            self._dispatch(shard, jobs, pset=pset)
            per_shard.append(jobs)
        results: List = []
        for jobs in per_shard:
            try:
                results.append(np.concatenate(self._settle(jobs), axis=0))
            except Exception as error:
                if not return_errors:
                    raise
                results.append(error)
        return results

    # ------------------------------------------------------------------
    def proxy(self, shard: int,
              pset: Optional[_ProviderSet] = None) -> _ProcessShardForward:
        """The drop-in ``forward_fn`` for one shard's micro-batcher.

        The proxy pins ``pset`` (default: the current generation) for its
        lifetime — a hot swap builds new proxies rather than mutating old
        ones, so in-flight flushes settle on the generation they entered.
        """
        return _ProcessShardForward(self, shard, pset=pset)

    def lane_pending(self, lane: str) -> int:
        """Rows queued or in flight on one lane across all spawned workers."""
        total = 0
        for worker in self._workers:
            if worker is not None:
                total += worker.queue.pending_rows(lane)
        return total

    def least_busy_shard(self) -> int:
        """The shard with the least queued work (unspawned shards count 0)."""
        best, best_load = 0, None
        for shard, worker in enumerate(self._workers):
            load = 0
            if worker is not None:
                load = sum(worker.queue.pending_rows(lane) for lane in LANES)
            if best_load is None or load < best_load:
                best, best_load = shard, load
        return best

    def worker_pids(self) -> List[Optional[int]]:
        """Pids of the spawned workers (``None`` for unspawned shards)."""
        return [
            worker.process.pid if worker is not None else None for worker in self._workers
        ]

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Ship ``plan`` to workers spawned (or respawned) from now on.

        Worker-side fault points only; install the plan in the parent via
        :func:`~repro.serving.install_fault_plan` to drive parent-side
        sites too.  Already-running workers keep their current plan.
        """
        self._fault_plan = plan
        for worker in self._workers:
            if worker is not None:
                worker._fault_plan = plan

    def worker_health(self) -> List[Dict[str, object]]:
        """Per-shard liveness snapshot (watchdog view) for ``health()``."""
        rows: List[Dict[str, object]] = []
        for shard, worker in enumerate(self._workers):
            if worker is None:
                rows.append({
                    "shard": shard, "pid": None, "alive": None,
                    "heartbeat_age_s": None, "respawns": 0,
                    "hung_detections": 0, "escalations": 0,
                })
                continue
            rows.append({
                "shard": shard,
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
                "heartbeat_age_s": worker.heartbeat_age(),
                "respawns": worker.respawns,
                "hung_detections": worker.hung_detections,
                "escalations": worker.escalations,
            })
        return rows

    def segment_names(self) -> List[str]:
        """Shared-memory segment names of the spawned workers."""
        return [worker.shm.name for worker in self._workers if worker is not None]

    def stats(self) -> ProcessTierStats:
        with self._stats_lock:
            return ProcessTierStats(
                start_method=self.start_method,
                workers=sum(1 for worker in self._workers if worker is not None),
                respawns=sum(
                    worker.respawns for worker in self._workers if worker is not None
                ),
                escalations=sum(
                    worker.escalations for worker in self._workers if worker is not None
                ),
                hung_detections=sum(
                    worker.hung_detections for worker in self._workers if worker is not None
                ),
                interactive_batches=self._lane_batches["interactive"],
                bulk_batches=self._lane_batches["bulk"],
                interactive_rows=self._lane_rows["interactive"],
                bulk_rows=self._lane_rows["bulk"],
                segment_nbytes=sum(
                    worker.layout.total_nbytes
                    for worker in self._workers
                    if worker is not None
                ),
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, join dispatchers, unlink segments.  Idempotent.

        Pid-guarded: a *forked worker child* inherits this executor object
        (and the module's atexit hook) — its exit must never unlink the
        shared memory its parent is still serving from.
        """
        if os.getpid() != self._owner_pid:
            return
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker is not None:
                worker.close()
        shutil.rmtree(self._spill_root, ignore_errors=True)

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
