"""LRU forecast cache.

Traffic forecasts are heavily re-requested: a dashboard polling every few
seconds, many users watching the same corridor, or retries after timeouts
all ask for the forecast of the *same* window.  Because the model is
deterministic in evaluation mode, those repeats can be answered from a
cache keyed by ``(model_version, window_hash, horizon)`` — the model
version guards against stale forecasts after a redeploy, the window hash
identifies the input exactly, and the horizon distinguishes truncated
queries over the same window.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["hash_window", "CacheStats", "ForecastCache"]

#: Cache key: (model version, window content hash, forecast horizon).
CacheKey = Tuple[str, str, int]


def hash_window(window: np.ndarray) -> str:
    """Content hash of an observation window (shape-sensitive, bit-exact).

    Two guarantees the serving cache depends on, spelled out as explicit
    steps (and pinned by regression tests) rather than left to
    ``ascontiguousarray``'s conversion heuristics:

    * the hash is computed over the float64 representation, so dtypes
      whose values compare equal (a float32 window and its float64
      widening, an integer window and its float counterpart) hash
      identically and share cache entries;
    * the common serving case — an already C-contiguous float64 window —
      is hashed in place, with no per-lookup copy of ``T * N * F``
      doubles; only non-contiguous or non-float64 inputs pay the one
      conversion.
    """
    window = np.asarray(window)
    if window.dtype != np.float64:
        window = window.astype(np.float64)
    if not window.flags.c_contiguous:
        window = np.ascontiguousarray(window)
    digest = hashlib.sha1()
    digest.update(str(window.shape).encode("utf-8"))
    digest.update(window.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_entries: int

    @property
    def requests(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.requests if self.requests else 0.0


class ForecastCache:
    """Thread-safe LRU cache of forecast arrays.

    Parameters
    ----------
    max_entries:
        Maximum number of cached forecasts; the least recently *used* entry
        is evicted when the capacity is exceeded.

    Example
    -------
    >>> cache = ForecastCache(max_entries=512)
    >>> key = cache.make_key("v1", window, horizon=12)
    >>> if (forecast := cache.get(key)) is None:
    ...     forecast = model_forward(window)
    ...     cache.put(key, forecast)
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def make_key(model_version: str, window: np.ndarray, horizon: int) -> CacheKey:
        """Build the ``(model_version, window_hash, horizon)`` key for a query."""
        return (str(model_version), hash_window(window), int(horizon))

    def get(self, key: CacheKey) -> Optional[np.ndarray]:
        """Look up a forecast; counts a hit or a miss and refreshes recency.

        The defensive copy of the ``(H, N)`` hit is taken *outside* the
        lock: stored arrays are never mutated in place (:meth:`put`
        replaces the dict value with a fresh copy), so once the reference
        is out of the dict the memcpy needs no protection — holding the
        lock across it would serialise every concurrent serving thread
        behind each other's copies.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        return entry.copy()

    def put(self, key: CacheKey, forecast: np.ndarray) -> None:
        """Store a forecast, evicting the least recently used entry if full."""
        forecast = np.asarray(forecast, dtype=float).copy()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = forecast
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_entries=self.max_entries,
            )
