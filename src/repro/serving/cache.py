"""LRU forecast cache.

Traffic forecasts are heavily re-requested: a dashboard polling every few
seconds, many users watching the same corridor, or retries after timeouts
all ask for the forecast of the *same* window.  Because the model is
deterministic in evaluation mode, those repeats can be answered from a
cache keyed by ``(model_version, window_hash, horizon)`` — the model
version guards against stale forecasts after a redeploy, the window hash
identifies the input exactly, and the horizon distinguishes truncated
queries over the same window.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["hash_window", "CacheStats", "ForecastCache", "StaleForecast"]

#: Cache key: (model version, window content hash, forecast horizon).
CacheKey = Tuple[str, str, int]


class StaleForecast(np.ndarray):
    """A cached forecast served in degraded mode, marked as stale.

    Behaves exactly like the underlying ``(H, N)`` array but carries
    ``stale=True`` plus the model version the entry was computed under, so
    a caller opting into stale-serve (``ResilienceConfig(serve_stale=True)``)
    can distinguish a degraded answer from a fresh one.
    """

    stale = True

    def __new__(cls, forecast: np.ndarray, from_version: str = "") -> "StaleForecast":
        obj = np.asarray(forecast).view(cls)
        obj.from_version = str(from_version)
        return obj

    def __array_finalize__(self, obj) -> None:
        if obj is None:
            return
        self.from_version = getattr(obj, "from_version", "")


def hash_window(window: np.ndarray) -> str:
    """Content hash of an observation window (shape-sensitive, bit-exact).

    Two guarantees the serving cache depends on, spelled out as explicit
    steps (and pinned by regression tests) rather than left to
    ``ascontiguousarray``'s conversion heuristics:

    * the hash is computed over the float64 representation, so dtypes
      whose values compare equal (a float32 window and its float64
      widening, an integer window and its float counterpart) hash
      identically and share cache entries;
    * the common serving case — an already C-contiguous float64 window —
      is hashed in place, with no per-lookup copy of ``T * N * F``
      doubles; only non-contiguous or non-float64 inputs pay the one
      conversion.
    """
    window = np.asarray(window)
    if window.dtype != np.float64:
        window = window.astype(np.float64)
    if not window.flags.c_contiguous:
        window = np.ascontiguousarray(window)
    digest = hashlib.sha1()
    digest.update(str(window.shape).encode("utf-8"))
    digest.update(window.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_entries: int
    #: Degraded-mode lookups answered from an older model version's entry.
    stale_hits: int = 0

    @property
    def requests(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        return self.hits / self.requests if self.requests else 0.0


class ForecastCache:
    """Thread-safe LRU cache of forecast arrays.

    Parameters
    ----------
    max_entries:
        Maximum number of cached forecasts; the least recently *used* entry
        is evicted when the capacity is exceeded.

    Example
    -------
    >>> cache = ForecastCache(max_entries=512)
    >>> key = cache.make_key("v1", window, horizon=12)
    >>> if (forecast := cache.get(key)) is None:
    ...     forecast = model_forward(window)
    ...     cache.put(key, forecast)
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        # Secondary index for stale-serve: (window_hash, horizon) -> the
        # most recently stored full key for that content, regardless of
        # model version.  Lets a degraded lookup find the entry an older
        # generation computed for the same window.
        self._by_content: dict = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stale_hits = 0

    @staticmethod
    def make_key(model_version: str, window: np.ndarray, horizon: int) -> CacheKey:
        """Build the ``(model_version, window_hash, horizon)`` key for a query."""
        return (str(model_version), hash_window(window), int(horizon))

    def get(self, key: CacheKey) -> Optional[np.ndarray]:
        """Look up a forecast; counts a hit or a miss and refreshes recency.

        The defensive copy of the ``(H, N)`` hit is taken *outside* the
        lock: stored arrays are never mutated in place (:meth:`put`
        replaces the dict value with a fresh copy), so once the reference
        is out of the dict the memcpy needs no protection — holding the
        lock across it would serialise every concurrent serving thread
        behind each other's copies.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        return entry.copy()

    def get_stale(self, key: CacheKey) -> Optional[StaleForecast]:
        """Degraded-mode lookup: any version's entry for the same window.

        Used by stale-serve fallbacks when fresh compute is unavailable
        (deadline already spent, all shards' breakers open).  Returns the
        most recently stored entry whose window hash and horizon match
        ``key`` — even one computed by an *older model version* — wrapped
        in :class:`StaleForecast` so the caller can tell it apart.  Counts
        a ``stale_hit``, never a hit or miss (the fresh :meth:`get` miss
        was already recorded by the caller's earlier lookup).
        """
        _, window_hash, horizon = key
        with self._lock:
            stored_key = self._by_content.get((window_hash, horizon))
            entry = self._entries.get(stored_key) if stored_key is not None else None
            if entry is None:
                return None
            self._entries.move_to_end(stored_key)
            self._stale_hits += 1
        return StaleForecast(entry.copy(), from_version=stored_key[0])

    def put(self, key: CacheKey, forecast: np.ndarray) -> None:
        """Store a forecast, evicting the least recently used entry if full."""
        forecast = np.asarray(forecast, dtype=float).copy()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = forecast
            self._by_content[(key[1], key[2])] = key
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                self._evictions += 1
                content = (evicted_key[1], evicted_key[2])
                if self._by_content.get(content) == evicted_key:
                    del self._by_content[content]

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._by_content.clear()

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_entries=self.max_entries,
                stale_hits=self._stale_hits,
            )
