"""Forecast-serving subsystem: batched, cached, streaming, sharded inference.

The training-side layers of the library reproduce the paper; this package
turns a trained model into something that can answer production traffic —
the ROADMAP's "serve heavy traffic" north star:

* :class:`ForecastService` — single-worker front end: loads a
  self-describing checkpoint, answers raw-scale forecast queries through
  the compiled graph-free runtime (:mod:`repro.runtime`) by default, with
  ``runtime="autograd"`` / ``REPRO_RUNTIME=autograd`` as the escape hatch;
* :class:`ShardedForecastService` — the same query surface served by
  ``num_shards`` concurrent workers (sensor-set or replica sharding),
  bit-identical to the single-worker service;
* :class:`ProcessShardExecutor` — the ``executor="processes"`` backend of
  the sharded service: each shard's compiled plans replayed by a worker
  *process* over preallocated shared memory (escaping the interpreter
  lock), with priority lanes and :class:`ServiceOverloaded` admission
  control (see :mod:`repro.serving.process_tier`);
* :class:`MicroBatcher` — coalesces concurrent single-window requests into
  one ``(B, T, N, F)`` forward pass;
* :class:`BackgroundFlusher` — drains micro-batchers on a time-based
  linger so asynchronous trickle traffic never waits for a size threshold;
* :class:`RollingWindowBuffer` — ingests streaming detector readings,
  materialises normalised model windows incrementally, versions its content
  for O(1) cache keys, and persists/restores its state for warm-started
  restarts;
* :class:`SensorHealthMonitor` — streaming quality control in front of the
  rolling buffer: a per-sensor health state machine (stuck-at, dropout,
  spike, out-of-range detection) with pluggable imputation, so broken
  detectors degrade forecasts predictably instead of poisoning the ring
  (see :mod:`repro.serving.quality`);

Every frontend also supports **zero-downtime hot checkpoint swaps**
(:meth:`ForecastFrontend.swap_checkpoint`): a new generation of weights,
scaler and warmed engines is built off to the side and published
atomically, with in-flight requests completing on the old version.
* :class:`ForecastCache` — LRU cache keyed by
  ``(model version, window hash or buffer token, horizon)`` with hit/miss
  accounting.

A **resilience layer** (:mod:`repro.serving.resilience`) runs through all
three tiers: per-request deadlines (``deadline_ms=`` on every query,
:class:`DeadlineExceeded` on expiry), bounded jittered-backoff retries of
retryable failures, per-shard circuit breakers (replica reroute /
``"nodes"``-mode :class:`PartialResult`), optional marked-stale degraded
serving (:class:`StaleForecast`), a shared-memory heartbeat watchdog for
hung worker processes, and ``service.health()``.  It is proven by a
deterministic fault-injection harness (:mod:`repro.serving.faults`):
seeded :class:`FaultPlan` rules drive named ``fault_point`` sites
(kill / hang / delay / raise / corrupt) bit-for-bit reproducibly.

See ``examples/serve_forecasts.py`` for an end-to-end walkthrough and
``benchmarks/bench_serving_throughput.py`` for the micro-batching,
runtime and shard-sweep measurements.
"""

from .batching import (
    AsyncForecast,
    BackgroundFlusher,
    BatcherStats,
    FlusherStats,
    MicroBatcher,
    PendingForecast,
)
from .buffer import RollingWindowBuffer
from .cache import CacheStats, ForecastCache, StaleForecast, hash_window
from .faults import (
    FAULT_ACTIONS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_point,
    fault_report,
    inject,
    install_fault_plan,
)
from .process_tier import (
    EXECUTOR_ENV_VAR,
    LANES,
    SERVING_EXECUTORS,
    START_METHOD_ENV_VAR,
    LaneStats,
    ProcessShardExecutor,
    ProcessTierStats,
    ServiceOverloaded,
    resolve_executor,
    resolve_start_method,
)
from .quality import (
    HEALTH_STATES,
    IMPUTATION_STRATEGIES,
    ISSUE_KINDS,
    QualityConfig,
    QualityStats,
    SensorHealthMonitor,
    StepReport,
)
from .resilience import (
    BreakerSnapshot,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    PartialResult,
    ResilienceConfig,
    ResilienceError,
    ResilientForward,
    RetryPolicy,
    ServiceHealth,
    ShardHealth,
    TransientError,
    WatchdogConfig,
    WorkerCrashed,
    is_retryable,
)
from .service import ForecastFrontend, ForecastService, ServiceStats, SwapReport
from .sharding import (
    SHARDING_MODES,
    ShardedForecastService,
    ShardedServiceStats,
    partition_nodes,
)

__all__ = [
    "ForecastFrontend",
    "ForecastService",
    "ServiceStats",
    "SwapReport",
    "QualityConfig",
    "QualityStats",
    "SensorHealthMonitor",
    "StepReport",
    "HEALTH_STATES",
    "ISSUE_KINDS",
    "IMPUTATION_STRATEGIES",
    "ShardedForecastService",
    "ShardedServiceStats",
    "SHARDING_MODES",
    "SERVING_EXECUTORS",
    "EXECUTOR_ENV_VAR",
    "START_METHOD_ENV_VAR",
    "LANES",
    "LaneStats",
    "ProcessShardExecutor",
    "ProcessTierStats",
    "ServiceOverloaded",
    "resolve_executor",
    "resolve_start_method",
    "partition_nodes",
    "MicroBatcher",
    "PendingForecast",
    "AsyncForecast",
    "BackgroundFlusher",
    "BatcherStats",
    "FlusherStats",
    "RollingWindowBuffer",
    "ForecastCache",
    "CacheStats",
    "StaleForecast",
    "hash_window",
    # Resilience layer
    "ResilienceConfig",
    "ResilienceError",
    "ResilientForward",
    "RetryPolicy",
    "Deadline",
    "DeadlineExceeded",
    "TransientError",
    "WorkerCrashed",
    "CircuitBreaker",
    "CircuitOpen",
    "BreakerSnapshot",
    "PartialResult",
    "ServiceHealth",
    "ShardHealth",
    "WatchdogConfig",
    "is_retryable",
    # Fault-injection harness
    "FAULT_ACTIONS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "fault_point",
    "inject",
    "install_fault_plan",
    "clear_fault_plan",
    "active_fault_plan",
    "fault_report",
]
