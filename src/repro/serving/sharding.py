"""Sharded multi-worker forecast serving.

:class:`ShardedForecastService` partitions serving across ``num_shards``
worker threads, each owning its own forward engine (a per-shard
:class:`~repro.runtime.CompiledModel` plan cache) and its own
:class:`~repro.serving.MicroBatcher`, behind the same raw-scale query
surface as the single-worker :class:`~repro.serving.ForecastService` —
and with **bit-identical** outputs (``max |diff| == 0``), asserted by
``tests/serving/test_sharding.py`` and the CI shard-parity job.

Two sharding strategies, selected with ``mode``:

``"nodes"`` (sensor-set sharding)
    The sensor set is partitioned into contiguous slices, one per worker.
    Every worker compiles plans for the *full* forward pass sliced to its
    own output columns (``CompiledModel(output_slice=(lo, hi))`` — DyHSL's
    graph stages couple all sensors, so each shard's trunk must see the
    whole window) and a full-network query fans out to every shard, whose
    column blocks are concatenated back into one ``(B, T', N)`` answer.
    Because each shard's slice is a view of the same computed output, the
    merge is exact.  Node-scoped queries (:meth:`forecast_node`) route to
    the owning shard only.  Fan-out runs the trunk once *per shard*: on a
    multi-core box the shards compute concurrently (NumPy kernels release
    the GIL), trading aggregate CPU for wall-clock latency and per-shard
    memory; single-core deployments should prefer ``"replicas"``.

``"replicas"`` (query sharding)
    Every worker holds a full-model replica (weights shared by reference;
    workspaces separate).  Queries are routed round-robin, so a batch of
    ``B`` misses splits into ``K`` sub-batches computed concurrently —
    batch rows are independent in every model of this library, which
    makes sub-batch outputs bit-identical to the coalesced batch.  This
    is the throughput-scaling mode: work is partitioned, not duplicated.

Asynchronous ingestion is shared with the single-worker service: per-shard
micro-batchers coalesce :meth:`submit` traffic, a size threshold
(``auto_flush_at``) fires batches on the owning worker's thread, and one
:class:`~repro.serving.BackgroundFlusher` guarantees that sub-threshold
traffic is drained within ``linger_ms``.  Shutdown is explicit and clean:
:meth:`close` (or leaving the service's context) stops the flusher,
drains every queue so no handle is left pending, and joins the worker
threads; forward errors always propagate to the affected
:class:`~repro.serving.PendingForecast` handles, never into the
background threads.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn import Module
from ..runtime import CompiledModel
from .batching import (
    BackgroundFlusher,
    BatcherStats,
    FlusherStats,
    MicroBatcher,
    PendingForecast,
)
from .cache import CacheStats, hash_window
from .faults import FaultPlan
from .process_tier import (
    LaneStats,
    ProcessShardExecutor,
    ProcessTierStats,
    _LaneGate,
    resolve_executor,
)
from .quality import QualityConfig, QualityStats, SensorHealthMonitor
from .resilience import (
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    PartialResult,
    ResilienceConfig,
    ResilienceError,
    ResilientForward,
    ShardHealth,
    is_retryable,
)
from .service import ForecastFrontend, _Generation, _merge_batcher_stats

__all__ = [
    "partition_nodes",
    "ShardedServiceStats",
    "ShardedForecastService",
    "SHARDING_MODES",
]

#: Supported sharding strategies (see the module docstring).
SHARDING_MODES = ("nodes", "replicas")


def partition_nodes(num_nodes: int, num_shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_nodes)`` into ``num_shards`` contiguous balanced slices.

    Shard sizes differ by at most one (the first ``num_nodes % num_shards``
    shards take the extra sensor), cover every node exactly once and stay
    in ascending order — concatenating per-shard output columns therefore
    reconstructs the full node axis.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards > num_nodes:
        raise ValueError(
            f"cannot partition {num_nodes} sensors into {num_shards} shards; "
            "use num_shards <= num_nodes (or mode='replicas')"
        )
    base, extra = divmod(num_nodes, num_shards)
    slices: List[Tuple[int, int]] = []
    start = 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


class _FlushJob:
    """A flush scheduled onto a shard worker's thread.

    The job never lets an exception escape into the worker loop: the
    error is captured for :meth:`wait` (and the failed chunk's request
    handles already carry it — see :meth:`MicroBatcher.flush`).
    """

    __slots__ = ("_fn", "_event", "error")

    def __init__(self, fn: Callable[[], object]) -> None:
        self._fn = fn
        self._event = threading.Event()
        self.error: Optional[BaseException] = None

    def __call__(self) -> None:
        try:
            self._fn()
        except BaseException as error:
            self.error = error
        finally:
            self._event.set()

    def wait(self) -> Optional[BaseException]:
        """Block until the flush settled; returns its error (or ``None``)."""
        self._event.wait()
        return self.error


class _FleetEngine:
    """The sharded generation payload: one micro-batcher per shard, plus
    the process tier's pinned provider set (``None`` for thread shards).

    A hot swap builds a complete new fleet engine off to the side and
    publishes it by rebinding every worker's ``batcher`` reference — the
    worker threads and their job queues survive the swap untouched.
    """

    __slots__ = ("batchers", "pset")

    def __init__(self, batchers: List[MicroBatcher], pset=None) -> None:
        self.batchers = batchers
        self.pset = pset


class _ShardWorker:
    """One serving shard: a forward engine, its batcher, and an executor thread.

    All forward passes for this shard run on the worker's own thread
    (jobs are enqueued with :meth:`flush_async`), so ``K`` shards compute
    concurrently during a fan-out and a slow shard never blocks the
    linger flusher.
    """

    def __init__(
        self,
        index: int,
        batcher: Union[MicroBatcher, Callable],
        node_slice: Optional[Tuple[int, int]],
        max_batch_size: int = 128,
    ) -> None:
        self.index = index
        self.node_slice = node_slice
        if not isinstance(batcher, MicroBatcher):
            # Back-compat: a bare forward callable gets its own batcher.
            batcher = MicroBatcher(batcher, max_batch_size=max_batch_size)
        # The *current* generation's batcher (size-threshold flushes are
        # scheduled by the service onto this worker's thread, so the inner
        # batcher never auto-flushes in the submitting caller's thread).
        # A hot swap rebinds this reference; retired batchers are still
        # drainable through flush_async(batcher=...).
        self.batcher = batcher
        self._jobs: "queue.SimpleQueue[Optional[_FlushJob]]" = queue.SimpleQueue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-shard-{index}", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            job()

    def _drain_jobs_inline(self) -> None:
        """Run queued jobs on the calling thread (executor stopping/stopped)."""
        while True:
            try:
                job = self._jobs.get_nowait()
            except queue.Empty:
                return
            if job is None:
                # The executor loop's stop sentinel: a drain racing close()
                # must never consume it — the loop only exits on the
                # sentinel, so stealing it would leave the thread blocked
                # in get() forever and deadlock close() in join().  Hand
                # it back (behind any later jobs, which the loop then runs
                # before exiting) and stop draining.
                self._jobs.put(None)
                return
            job()

    def flush_async(self, batcher: Optional[MicroBatcher] = None) -> _FlushJob:
        """Schedule a queue drain on this worker's thread; returns the job.

        ``batcher`` selects which generation's queue to drain (default:
        the current one), captured at job-creation time — a swap landing
        between scheduling and execution never redirects the drain.
        After :meth:`close` the drain degrades to a synchronous flush on
        the calling thread — a job must never strand a waiter on a dead
        executor.
        """
        job = _FlushJob((batcher if batcher is not None else self.batcher).flush)
        if self._closed:
            job()
            return job
        self._jobs.put(job)
        if self._closed:
            # close() raced past the put; make sure the job still runs.
            self._drain_jobs_inline()
        return job

    def close(self) -> None:
        """Stop the executor thread (idempotent; no queued job is dropped)."""
        if not self._closed:
            self._closed = True
            self._jobs.put(None)
            self._thread.join()
        self._drain_jobs_inline()


@dataclass(frozen=True)
class ShardedServiceStats:
    """Operational counters of a sharded service, per shard and aggregated."""

    model_version: str
    mode: str
    num_shards: int
    requests: int
    cache: CacheStats
    shards: Tuple[BatcherStats, ...]
    runtime: str = "compiled"
    flusher: Optional[FlusherStats] = None
    #: Default execution precision policy of the shard engines.
    precision: str = "float64"
    #: Island-parallel replay width of each shard's compiled plans.
    threads: int = 1
    #: Shard executor: ``"threads"`` (in-process) or ``"processes"``.
    executor: str = "threads"
    #: Per-lane admission-control counters (empty before any admit).
    lanes: Tuple[LaneStats, ...] = ()
    #: Process-tier counters (``None`` for the thread executor).
    process_tier: Optional[ProcessTierStats] = None
    #: Detector-health and imputation counters (None without a monitor).
    quality: Optional[QualityStats] = None
    #: Completed hot checkpoint swaps over the service's lifetime.
    swaps: int = 0

    @property
    def batcher(self) -> BatcherStats:
        """Aggregate of the per-shard batcher counters.

        In ``"nodes"`` mode every query touches every shard, so the
        aggregate ``requests`` counts each query once per owning shard.
        """
        total = BatcherStats()
        for stats in self.shards:
            total.requests += stats.requests
            total.flushes += stats.flushes
            total.coalesced += stats.coalesced
            total.largest_batch = max(total.largest_batch, stats.largest_batch)
            total.failed_flushes += stats.failed_flushes
            total.failed_requests += stats.failed_requests
            total.expired_requests += stats.expired_requests
        return total


class ShardedForecastService(ForecastFrontend):
    """Serve forecasts from ``num_shards`` concurrent workers, bit-identically.

    Parameters
    ----------
    model / scaler / model_version / cache_entries / runtime / precision / threads:
        As for :class:`~repro.serving.ForecastService` (one shared LRU
        cache and rolling buffer front all shards; every shard's compiled
        plans execute at the service's ``precision`` with ``threads``-wide
        island replay, and synchronous queries accept the same per-request
        ``precision=`` override).
    artifact_dir:
        Directory (or :class:`~repro.runtime.ArtifactStore`) of durable
        plan artifacts, shared by **all** workers: replicas reuse one
        in-process memo (the fleet compiles each trace once, not once per
        worker) and a restarted fleet warm-starts every shard from disk
        with zero retraces — see ``docs/serving_quickstart.md``.
    num_shards:
        Worker count.  ``mode="nodes"`` requires ``num_shards <= N``.
    mode:
        ``"nodes"`` (sensor-set sharding, the default) or ``"replicas"``
        (query sharding) — see the module docstring for the trade-off.
    max_batch_size:
        Largest coalesced forward per shard flush.
    auto_flush_at:
        Size threshold at which a shard's pending queue is flushed on its
        worker thread (asynchronous traffic only; synchronous queries
        always drain their own submissions).
    linger_ms:
        Time bound for the background flusher: no submitted request waits
        longer than this for its batch to fire.
    executor:
        ``"threads"`` (in-process shard workers, the default) or
        ``"processes"`` — each shard's plans replayed by a worker
        *process* over shared memory, escaping the interpreter lock on
        multi-core hosts (see :mod:`repro.serving.process_tier`).
        ``None`` consults the ``REPRO_SERVING_EXECUTOR`` environment
        variable.  Requires the compiled runtime when set explicitly.
    start_method:
        Worker start method for the process tier (``"fork"`` is the fast
        default where available; ``"spawn"`` the portable contract).
        ``None`` consults ``REPRO_PROCESS_START_METHOD``.
    bulk_queue_depth / interactive_queue_depth:
        Admission-control limits: a request whose lane already holds this
        many pending rows is fast-rejected with
        :class:`~repro.serving.ServiceOverloaded` instead of queueing
        unboundedly (``None``, the default, never rejects).  Bulk covers
        ``forecast_many`` / ``submit`` / ``forecast_node`` misses;
        interactive covers ``forecast_latest`` misses.
    bulk_chunk_rows:
        Process-tier dispatch granularity: bulk batches are split into
        chunks of this many rows, bounding how long an interactive
        request waits behind bulk work already in flight.

    Example
    -------
    >>> with ShardedForecastService.from_checkpoint("dyhsl.npz", num_shards=4,
    ...                                             mode="replicas",
    ...                                             linger_ms=10.0) as service:
    ...     handles = [service.submit(w) for w in windows]
    ...     forecasts = [h.result() for h in handles]
    """

    def __init__(
        self,
        model: Module,
        scaler: Optional[object] = None,
        model_version: Optional[str] = None,
        num_shards: int = 2,
        mode: str = "nodes",
        cache_entries: int = 1024,
        max_batch_size: int = 128,
        auto_flush_at: Optional[int] = None,
        linger_ms: Optional[float] = None,
        runtime: Optional[str] = None,
        precision: Optional[str] = None,
        threads: Optional[int] = None,
        artifact_dir=None,
        executor: Optional[str] = None,
        start_method: Optional[str] = None,
        bulk_queue_depth: Optional[int] = None,
        interactive_queue_depth: Optional[int] = None,
        bulk_chunk_rows: int = 32,
        quality: Union[None, bool, QualityConfig, SensorHealthMonitor] = None,
        quality_adjacency: Optional[np.ndarray] = None,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if mode not in SHARDING_MODES:
            raise ValueError(f"unknown sharding mode {mode!r}; expected one of {SHARDING_MODES}")
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if auto_flush_at is not None and auto_flush_at <= 0:
            raise ValueError("auto_flush_at must be positive when set")
        if linger_ms is not None and linger_ms <= 0:
            # Validate before any worker thread spawns: a constructor that
            # raises must not leak executors blocked on their job queues.
            raise ValueError("linger_ms must be positive when set")
        super().__init__(
            model,
            scaler=scaler,
            model_version=model_version,
            cache_entries=cache_entries,
            runtime=runtime,
            precision=precision,
            threads=threads,
            artifact_dir=artifact_dir,
            quality=quality,
            quality_adjacency=quality_adjacency,
            resilience=resilience,
        )
        self.mode = mode
        self.num_shards = num_shards
        self.auto_flush_at = auto_flush_at
        self._max_batch_size = max_batch_size
        # One breaker per shard (None when breakers are disabled), shared
        # across hot-swap generations so failure history survives a swap.
        self._breakers: List = [
            self.resilience.make_breaker(shard) for shard in range(num_shards)
        ]
        self._retired_retries = 0
        self._fleet_retries = 0
        # Resolve (and validate) the executor and the admission gates
        # before any worker thread or process spawns — a constructor that
        # raises must not leak background machinery.
        self.executor = resolve_executor(executor, runtime=self.runtime)
        self._workers: List[_ShardWorker] = []
        self._tier: Optional[ProcessShardExecutor] = None
        # Overload rejections snapshot every lane's depth, so a client's
        # backoff decision sees the whole picture, not just its own lane.
        lane_snapshot = lambda: {  # noqa: E731
            lane: self._lane_depth(lane) for lane in ("bulk", "interactive")
        }
        self._gates = {
            "bulk": _LaneGate(
                "bulk",
                bulk_queue_depth,
                lambda: self._lane_depth("bulk"),
                snapshot_fn=lane_snapshot,
            ),
            "interactive": _LaneGate(
                "interactive",
                interactive_queue_depth,
                lambda: self._lane_depth("interactive"),
                snapshot_fn=lane_snapshot,
            ),
        }
        # Every worker engine gets the SAME store object (resolved once by
        # the frontend): replicas share one memo, so the fleet parses and
        # compiles each trace once; node shards key their artifacts by
        # output_slice, so a restarted fleet warm-starts every shard from
        # the shared directory.
        store = self.artifact_store
        self._slices = (
            partition_nodes(self.config.num_nodes, num_shards) if mode == "nodes" else []
        )
        if self.executor == "processes":
            # Workers, segments and dispatchers spawn lazily on the first
            # dispatched batch; constructing the service starts nothing.
            self._tier = ProcessShardExecutor(
                model,
                slices=self._slices if mode == "nodes" else None,
                num_shards=num_shards,
                window_shape=(
                    self.config.input_length,
                    self.config.num_nodes,
                    self.config.input_dim,
                ),
                output_length=self.config.output_length,
                num_nodes=self.config.num_nodes,
                precision=self.precision,
                threads=self.threads,
                artifact_store=store,
                start_method=start_method,
                bulk_chunk_rows=bulk_chunk_rows,
                watchdog=self.resilience.watchdog,
                fault_plan=fault_plan,
            )
        # Batcher counters of generations retired by hot swaps, folded into
        # stats() so a swap never resets the fleet's lifetime telemetry.
        self._retired_shard_stats: List[List[BatcherStats]] = [
            [] for _ in range(num_shards)
        ]
        engine, _, _ = self._build_engine(model, warm_sizes=())
        self._gen.engine = engine
        for index in range(num_shards):
            node_slice = self._slices[index] if mode == "nodes" else None
            self._workers.append(
                _ShardWorker(index, engine.batchers[index], node_slice)
            )
        self._round_robin = 0
        self._route_lock = threading.Lock()
        self._closed = False
        self.flusher: Optional[BackgroundFlusher] = (
            BackgroundFlusher(
                [(worker.batcher, worker.flush_async) for worker in self._workers],
                linger_ms=linger_ms,
            )
            if linger_ms is not None
            else None
        )

    # ------------------------------------------------------------------
    # Generation machinery (hot checkpoint swap — see ForecastFrontend).
    # ------------------------------------------------------------------
    def _build_engine(self, model: Module, warm_sizes=None) -> Tuple[_FleetEngine, int, int]:
        """One forward engine + micro-batcher per shard over ``model``.

        ``warm_sizes=()`` marks the constructor's initial build (no plan
        warming, and the process tier's already-installed provider set is
        reused); any other value is a swap build — the new engines are
        fully warmed before the generation is published.
        """
        from ..runtime.engine import _SlicedForward

        initial = warm_sizes == ()
        store = self.artifact_store
        pset = None
        if self._tier is not None:
            pset = (
                self._tier.current_generation()
                if initial
                else self._tier.prepare_generation(model)
            )
        forwards: List[Callable] = []
        if self.mode == "nodes":
            for index, (lo, hi) in enumerate(self._slices):
                if self._tier is not None:
                    forwards.append(self._tier.proxy(index, pset=pset))
                elif self.runtime == "compiled":
                    forwards.append(
                        CompiledModel(
                            model,
                            output_slice=(lo, hi),
                            precision=self.precision,
                            threads=self.threads,
                            artifact_dir=store,
                        )
                    )
                else:
                    # The same trace adapter the compiled plans use, run as
                    # a plain autograd forward.
                    forwards.append(_SlicedForward(model, lo, hi))
        else:
            for index in range(self.num_shards):
                # Separate CompiledModel per replica: plans and workspace
                # buffers are per-worker, so replicas execute concurrently;
                # the weights stay shared by reference.
                if self._tier is not None:
                    forwards.append(self._tier.proxy(index, pset=pset))
                elif self.runtime == "compiled":
                    forwards.append(
                        CompiledModel(
                            model,
                            precision=self.precision,
                            threads=self.threads,
                            artifact_dir=store,
                        )
                    )
                else:
                    forwards.append(model)
        reused = compiled = 0
        if self.runtime == "compiled" and not initial:
            # Warm every shard's plans BEFORE publication: by default the
            # streaming batch of 1, or an explicit size ladder.  With AOT
            # artifacts adopted into the store these are disk binds.
            sizes = (
                [1]
                if warm_sizes is None
                else self._warm_up_sizes(warm_sizes, self._max_batch_size)
            )
            for forward in forwards:
                for size in sizes:
                    forward.compile_for(self._example_batch(size))
                info = forward.cache_info()
                reused += info.artifact_loads
                compiled += info.compiles
        # Every shard's compute funnels through its batcher's forward, so
        # wrapping here puts the breaker consult, bounded retries and
        # outcome accounting on one choke point per shard (engine plumbing
        # — compile_for/cache_info/save_artifacts — delegates through).
        batchers = [
            MicroBatcher(
                ResilientForward(
                    forward,
                    retry=self.resilience.retry,
                    breaker=self._breakers[index],
                ),
                max_batch_size=self._max_batch_size,
            )
            for index, forward in enumerate(forwards)
        ]
        return _FleetEngine(batchers, pset), reused, compiled

    def _publish_generation(self, gen: _Generation) -> None:
        # Runs under the buffer lock: the generation reference, every
        # worker's current batcher and the tier's default provider set
        # move together — a snapshot() reader sees all or none of it.
        self._gen = gen
        for worker, batcher in zip(self._workers, gen.engine.batchers):
            worker.batcher = batcher
        if self._tier is not None:
            self._tier.install_generation(gen.engine.pset)

    def _retire_generation(self, old: _Generation) -> None:
        if old.engine is None:
            return
        # Drain the retired queues on the worker threads (concurrently,
        # like any fan-out); requests still queued there complete on the
        # old weights — their proxies pin the old provider set.
        jobs = [
            worker.flush_async(batcher)
            for worker, batcher in zip(self._workers, old.engine.batchers)
        ]
        for job in jobs:
            job.wait()  # errors are carried by the affected handles
        for index, batcher in enumerate(old.engine.batchers):
            self._retired_shard_stats[index].append(batcher.stats)
            self._retired_retries += getattr(batcher.forward_fn, "retries", 0)
        if self.flusher is not None:
            self.flusher.retarget(
                [(worker.batcher, worker.flush_async) for worker in self._workers]
            )

    # ------------------------------------------------------------------
    @property
    def node_slices(self) -> List[Tuple[int, int]]:
        """The ``(lo, hi)`` sensor slice of each shard (empty for replicas)."""
        return list(self._slices)

    def shard_of(self, node: int) -> int:
        """Index of the shard owning ``node`` (``"nodes"`` mode only)."""
        if self.mode != "nodes":
            raise ValueError("shard_of is only defined for mode='nodes'")
        if not 0 <= node < self.config.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.config.num_nodes})")
        for index, (lo, hi) in enumerate(self._slices):
            if lo <= node < hi:
                return index
        raise AssertionError("partition_nodes left a gap")  # pragma: no cover

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _lane_depth(self, lane: str) -> int:
        """Live queue depth of one lane across batchers and the tier."""
        if lane == "bulk":
            depth = sum(worker.batcher.pending for worker in self._workers)
            if self._tier is not None:
                depth += self._tier.lane_pending("bulk")
            return depth
        return self._tier.lane_pending("interactive") if self._tier is not None else 0

    def _admit(self, lane: str, rows: int) -> None:
        """Reject at accept time when a lane is over its depth limit.

        Raising here — before anything is enqueued — is what makes the
        overload behaviour predictable: an admitted request is never
        dropped later, and a rejected one never occupied a queue slot.
        """
        gate = self._gates.get(lane)
        if gate is not None:
            gate.admit(rows)

    # ------------------------------------------------------------------
    # Routing and merging
    # ------------------------------------------------------------------
    def _next_worker(self) -> _ShardWorker:
        """Round-robin over the replicas, skipping open circuit breakers.

        With breakers enabled, a replica whose breaker is open is routed
        *around* — the query lands on a healthy replica instead of failing
        (reroute-on-breaker).  Only when every replica is refusing does the
        query fail fast, with the soonest-to-recover breaker's
        :class:`CircuitOpen`.
        """
        with self._route_lock:
            soonest: Optional[CircuitOpen] = None
            for _ in range(len(self._workers)):
                worker = self._workers[self._round_robin % len(self._workers)]
                self._round_robin += 1
                breaker = self._breakers[worker.index]
                if breaker is None or breaker.allow():
                    return worker
                try:
                    breaker.check()
                except CircuitOpen as error:
                    if soonest is None or error.retry_after < soonest.retry_after:
                        soonest = error
            if soonest is None:  # pragma: no cover - allow()/check() race
                worker = self._workers[self._round_robin % len(self._workers)]
                self._round_robin += 1
                return worker
            raise soonest

    def _owning_workers(self) -> List[_ShardWorker]:
        """The workers a full-network window must be routed to."""
        if self.mode == "nodes":
            return self._workers
        return [self._next_worker()]

    def _route_window(
        self,
        window: np.ndarray,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[List[PendingForecast], List[_ShardWorker]]:
        """Submit one normalised window to its owning shards.

        Requests enqueue on the batchers of the generation captured at
        request entry, so a hot swap mid-request never splits one window
        across two weight versions.  ``deadline`` rides with each queue
        entry; an entry whose budget expires before its flush is failed
        typed at the sweep, never computed.
        """
        engine = (gen or self._gen).engine
        workers = self._owning_workers()
        return [
            engine.batchers[worker.index].submit(window, deadline=deadline)
            for worker in workers
        ], workers

    @staticmethod
    def _merge(parts: List[np.ndarray]) -> np.ndarray:
        """Concatenate per-shard column blocks back into ``(T', N)``."""
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=-1)

    def _drain(
        self, workers: Sequence[_ShardWorker], gen: Optional[_Generation] = None
    ) -> None:
        """Flush the given shards concurrently; re-raise the first error.

        Every job is waited for before raising, so all touched shards are
        settled (their handles fulfilled or failed) when the caller sees
        the exception — matching the single-worker ``flush()`` contract.
        """
        engine = (gen or self._gen).engine
        jobs = [
            worker.flush_async(engine.batchers[worker.index])
            for worker in dict.fromkeys(workers)
        ]
        first_error: Optional[BaseException] = None
        for job in jobs:
            error = job.wait()
            if error is not None and first_error is None:
                first_error = error
        if first_error is not None:
            raise first_error

    def _maybe_auto_flush(
        self, workers: Sequence[_ShardWorker], gen: Optional[_Generation] = None
    ) -> None:
        """Fire-and-forget size-threshold flushes on the owning workers."""
        if self.auto_flush_at is None:
            return
        engine = (gen or self._gen).engine
        for worker in dict.fromkeys(workers):
            batcher = engine.batchers[worker.index]
            if batcher.pending >= self.auto_flush_at:
                worker.flush_async(batcher)

    # ------------------------------------------------------------------
    # The compute hooks behind the shared forecast_many / submit skeleton
    # (see ForecastFrontend): misses route to their owning shards (all
    # shards in "nodes" mode, round-robin in "replicas" mode), compute
    # concurrently on the worker threads, and merge back in request
    # order — bit-identical to the single-worker service.  submit() never
    # computes in the caller's thread: size-threshold drains are
    # scheduled onto the owning workers.
    # ------------------------------------------------------------------
    def _nan_block(self, shard: int, rows: Optional[int] = None) -> np.ndarray:
        """NaN filler for a failed shard's output columns (``"nodes"`` mode)."""
        lo, hi = self._slices[shard]
        shape: Tuple[int, ...] = (self.config.output_length, hi - lo)
        if rows is not None:
            shape = (rows,) + shape
        return np.full(shape, np.nan)

    def _raise_partial(
        self,
        outputs: List[np.ndarray],
        failed: Dict[int, BaseException],
        gen: Optional[_Generation],
    ) -> None:
        """Raise the typed degraded result for a nodes-mode fan-out.

        ``PartialResult.forecast`` carries the raw-scale, full-horizon
        merged forecasts ``(num_windows, T', N)`` with the failed shards'
        node columns NaN — the healthy shards' work is handed to the
        caller, never discarded.  Raised as an exception so the partial
        data can never be cached or mistaken for a complete answer.
        """
        forecast = np.stack(
            [self._denormalise(output, gen=gen) for output in outputs], axis=0
        )
        raise PartialResult(forecast, failed)

    def _compute_misses(
        self,
        windows: List[np.ndarray],
        precision: Optional[str] = None,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[np.ndarray]:
        engine = (gen or self._gen).engine
        if precision is not None:
            # Per-request precision override: compute directly through the
            # shard engines at the requested policy (the batch queues are
            # single-policy), chunked to the batchers' max batch size so
            # the override path keeps the same peak-batch bound as a
            # flush.  Nodes mode still merges all shards' column blocks;
            # replica mode serves each chunk from the next replica — batch
            # rows are independent, so this matches the routed answer
            # exactly at the same policy.
            size = engine.batchers[0].max_batch_size
            outputs: List[np.ndarray] = []
            for start in range(0, len(windows), size):
                self._check_deadline(deadline, "precision-chunk")
                batch = np.stack(windows[start : start + size], axis=0)
                if self.mode == "nodes":
                    parts = [
                        np.asarray(
                            engine.batchers[worker.index].forward_fn(
                                batch, precision=precision
                            )
                        )
                        for worker in self._workers
                    ]
                    outputs.extend(np.concatenate(parts, axis=-1))
                else:
                    worker = self._next_worker()
                    outputs.extend(
                        np.asarray(
                            engine.batchers[worker.index].forward_fn(
                                batch, precision=precision
                            )
                        )
                    )
            return outputs
        routed = [
            self._route_window(window, gen=gen, deadline=deadline)
            for window in windows
        ]
        touched = [worker for _, workers in routed for worker in workers]
        if self.mode != "nodes":
            self._drain(touched, gen=gen)
            return [self._merge([part.result() for part in parts]) for parts, _ in routed]
        # Nodes mode: a failed shard (breaker open, worker dead after
        # retries) degrades to a typed PartialResult instead of throwing
        # away every healthy shard's columns.  Non-resilience errors (a
        # deterministic compute bug) still propagate loudly.
        try:
            self._drain(touched, gen=gen)
        except ResilienceError:
            pass  # settled per-part below
        outputs: List[np.ndarray] = []
        failed: Dict[int, BaseException] = {}
        any_success = False
        for parts, workers in routed:
            merged_parts: List[np.ndarray] = []
            for part, worker in zip(parts, workers):
                try:
                    merged_parts.append(np.asarray(part.result()))
                    any_success = True
                except ResilienceError as error:
                    failed[worker.index] = error
                    merged_parts.append(self._nan_block(worker.index))
            outputs.append(self._merge(merged_parts))
        if failed:
            if not any_success:
                # Nothing partial about a total failure (every shard's
                # budget spent, every breaker open): surface the cause.
                raise next(iter(failed.values()))
            self._raise_partial(outputs, failed, gen)
        return outputs

    def _submit_parts(
        self,
        window: np.ndarray,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[PendingForecast]:
        parts, workers = self._route_window(window, gen=gen, deadline=deadline)
        self._maybe_auto_flush(workers, gen=gen)
        return parts

    # ------------------------------------------------------------------
    # Synchronous queries
    # ------------------------------------------------------------------
    def forecast(
        self,
        window: np.ndarray,
        horizon: Optional[int] = None,
        precision: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Forecast one raw window: ``(horizon, N)``, bit-identical to
        :meth:`ForecastService.forecast`."""
        return self.forecast_many(
            np.asarray(window, dtype=float)[None],
            horizon=horizon,
            precision=precision,
            deadline_ms=deadline_ms,
        )[0]

    def forecast_node(
        self,
        window: np.ndarray,
        node: int,
        horizon: Optional[int] = None,
        precision: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Forecast a single sensor: returns shape ``(horizon,)``.

        In ``"nodes"`` mode only the owning shard computes (and the result
        is cached under a shard-scoped key); other modes serve the full
        network and slice.
        """
        if not 0 <= node < self.config.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.config.num_nodes})")
        if self.mode != "nodes":
            return self.forecast(
                window, horizon=horizon, precision=precision, deadline_ms=deadline_ms
            )[:, node]
        horizon = self._check_horizon(horizon)
        precision = self._resolve_request_precision(precision)
        self._count_requests()
        deadline = self._entry_deadline(deadline_ms)
        gen = self._gen
        normalised = self._normalise_window(window, gen=gen)
        worker = self._workers[self.shard_of(node)]
        batcher = gen.engine.batchers[worker.index]
        lo, hi = worker.node_slice
        key = None
        if self.cache is not None:
            key = (
                self._key_version(precision, gen=gen),
                f"{hash_window(normalised)}:nodes{lo}-{hi}",
                horizon,
            )
            cached = self.cache.get(key)
            if cached is not None:
                return cached[:, node - lo]
        self._admit("bulk", 1)
        try:
            if precision is not None:
                self._check_deadline(deadline, "precision-chunk")
                shard_output = np.asarray(
                    batcher.forward_fn(normalised[None], precision=precision)
                )[0]
            else:
                handle = batcher.submit(normalised, deadline=deadline)
                self._drain([worker], gen=gen)
                shard_output = handle.result()
        except ResilienceError as error:
            # Single-shard query: the owning shard IS the whole answer, so
            # degraded mode is a marked-stale cache hit, never a partial.
            stale = self._serve_stale_instead(key, error)
            if stale is not None:
                return stale[:, node - lo]
            raise
        shard_forecast = self._denormalise(shard_output, gen=gen)[:horizon]
        if self.cache is not None:
            self.cache.put(key, shard_forecast)
        return shard_forecast[:, node - lo].copy()

    # ------------------------------------------------------------------
    # Streaming operation
    # ------------------------------------------------------------------
    def _count_retry_fleet(self, attempt: int, error: Optional[BaseException]) -> None:
        """Aggregate retry counter for the interactive tier paths (the
        batcher paths count inside their ResilientForward wrappers)."""
        with self._requests_lock:
            self._fleet_retries += 1

    def _fanout_interactive(
        self, batch: np.ndarray, pset, deadline: Optional[Deadline]
    ) -> Tuple[List[np.ndarray], Dict[int, BaseException]]:
        """Nodes-mode streaming fan-out through the process tier.

        Shards whose breaker is open are never dispatched to; shards that
        fail retryably get the retry policy's *remaining* attempts (the
        fan-out itself was attempt one); outcomes feed the per-shard
        breakers.  Returns the per-shard ``(1, T', cols)`` blocks (failed
        shards NaN-filled) plus the shard -> error map.  Non-resilience
        errors — a deterministic compute bug — propagate loudly.
        """
        parts: List[Optional[np.ndarray]] = [None] * self.num_shards
        failed: Dict[int, BaseException] = {}
        live: List[int] = []
        for shard in range(self.num_shards):
            breaker = self._breakers[shard]
            if breaker is not None and not breaker.allow():
                try:
                    breaker.check()
                except CircuitOpen as error:
                    failed[shard] = error
                    continue
            live.append(shard)
        results = (
            self._tier.call_fanout(
                live, batch, lane="interactive", pset=pset, deadline=deadline,
                return_errors=True,
            )
            if live
            else []
        )
        retry = self.resilience.retry
        for shard, result in zip(live, results):
            breaker = self._breakers[shard]
            if (
                isinstance(result, BaseException)
                and is_retryable(result)
                and retry is not None
                and retry.max_attempts > 1
            ):
                self._count_retry_fleet(1, result)
                remaining = replace(retry, max_attempts=retry.max_attempts - 1)
                try:
                    result = remaining.call(
                        lambda s=shard: self._tier.call(
                            s, batch, lane="interactive", pset=pset, deadline=deadline
                        ),
                        deadline=deadline,
                        on_retry=self._count_retry_fleet,
                    )
                except Exception as error:
                    result = error
            if isinstance(result, BaseException):
                if not isinstance(result, ResilienceError):
                    raise result
                if breaker is not None and not isinstance(result, DeadlineExceeded):
                    breaker.record_failure()
                failed[shard] = result
            else:
                if breaker is not None:
                    breaker.record_success()
                parts[shard] = result
        for shard in failed:
            parts[shard] = self._nan_block(shard, rows=1)
        return parts, failed

    def _call_replica_interactive(
        self, batch: np.ndarray, pset, deadline: Optional[Deadline]
    ) -> np.ndarray:
        """Replica-mode streaming call: least-busy shard, rerouted around
        open breakers, retried under the policy, outcome-fed breakers."""

        def attempt() -> np.ndarray:
            shard = self._tier.least_busy_shard()
            breaker = self._breakers[shard]
            if breaker is not None and not breaker.allow():
                for candidate in range(self.num_shards):
                    other = self._breakers[candidate]
                    if other is None or other.allow():
                        shard, breaker = candidate, other
                        break
                else:
                    breaker.check()  # every replica refusing: raise typed
            try:
                result = self._tier.call(
                    shard, batch, lane="interactive", pset=pset, deadline=deadline
                )
            except Exception as error:
                if breaker is not None and not isinstance(error, DeadlineExceeded):
                    breaker.record_failure()
                raise
            if breaker is not None:
                breaker.record_success()
            return result

        retry = self.resilience.retry
        if retry is None:
            return attempt()
        return retry.call(attempt, deadline=deadline, on_retry=self._count_retry_fleet)

    def forecast_latest(
        self, horizon: Optional[int] = None, deadline_ms: Optional[float] = None
    ) -> np.ndarray:
        """Forecast from the rolling buffer via the shard workers.

        Keyed on the buffer's O(1) version token exactly like the
        single-worker streaming path.  Degraded modes: an expired budget or
        broken shard serves a marked-stale cache hit when
        ``ResilienceConfig(serve_stale=True)`` and an entry exists (any
        model version's entry for this very buffer state qualifies);
        ``"nodes"`` mode raises :class:`PartialResult` carrying the healthy
        shards' ``(horizon, N)`` forecast with failed columns NaN.
        """
        horizon = self._check_horizon(horizon)
        self._count_requests()
        deadline = self._entry_deadline(deadline_ms)
        if self.cache is not None:
            key = (self._key_version(), self.buffer.cache_token(), horizon)
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        self._admit("interactive", 1)
        # The window, its token and the serving generation are captured
        # under the buffer's mutation lock — a hot swap (which publishes
        # inside buffer.rescale, under this very lock) lands entirely
        # before or after, never splitting window from weights.
        window, token, gen = self.buffer.snapshot(also=lambda: self._gen)
        key = (
            (self._key_version(gen=gen), token, horizon)
            if self.cache is not None
            else None
        )
        try:
            forecast = self._forecast_latest_compute(window, horizon, gen, deadline)
        except ResilienceError as error:
            stale = self._serve_stale_instead(key, error)
            if stale is not None:
                return stale
            raise
        if self.cache is not None:
            self.cache.put(key, forecast)
        return forecast.copy()

    def _forecast_latest_compute(
        self,
        window: np.ndarray,
        horizon: int,
        gen: _Generation,
        deadline: Optional[Deadline],
    ) -> np.ndarray:
        """The streaming forward behind :meth:`forecast_latest`."""
        if self._tier is not None:
            # Process tier: dispatch on the interactive lane, which jumps
            # ahead of queued bulk chunks on every worker — the streaming
            # path stays responsive under backfill load.
            pset = gen.engine.pset
            if self.mode == "nodes":
                parts, failed = self._fanout_interactive(window[None], pset, deadline)
                if len(failed) == self.num_shards:
                    raise next(iter(failed.values()))
                output = np.concatenate([part[0] for part in parts], axis=-1)
                forecast = self._denormalise(output, gen=gen)[:horizon]
                if failed:
                    raise PartialResult(forecast, failed)
                return forecast
            output = self._call_replica_interactive(window[None], pset, deadline)[0]
            return self._denormalise(output, gen=gen)[:horizon]
        parts, workers = self._route_window(window, gen=gen, deadline=deadline)
        try:
            self._drain(workers, gen=gen)
        except ResilienceError:
            if self.mode != "nodes":
                raise
        merged_parts: List[np.ndarray] = []
        failed = {}
        for part, worker in zip(parts, workers):
            try:
                merged_parts.append(np.asarray(part.result()))
            except ResilienceError as error:
                if self.mode != "nodes":
                    raise
                failed[worker.index] = error
                merged_parts.append(self._nan_block(worker.index))
        if failed and len(failed) == len(workers):
            raise next(iter(failed.values()))
        forecast = self._denormalise(self._merge(merged_parts), gen=gen)[:horizon]
        if failed:
            raise PartialResult(forecast, failed)
        return forecast

    # ------------------------------------------------------------------
    def save_artifacts(self, path=None) -> List:
        """Persist every shard's compiled plans as durable artifacts.

        ``path`` may be a directory or an
        :class:`~repro.runtime.ArtifactStore`; omitted, the store shared by
        the workers (``artifact_dir=``) is used.  A fleet restarted against
        the same store binds every shard's plans from disk — zero retraces
        on the first request of every worker.
        """
        if self.runtime != "compiled":
            raise ValueError("plan artifacts require the compiled runtime")
        written: List = []
        for worker in self._workers:
            written.extend(worker.batcher.forward_fn.save_artifacts(path))
        return written

    def warm_up(self, batch_sizes=None) -> List:
        """Build every shard's batch-size plan ladder before traffic.

        Each worker prepares one plan per batch size (doubling up to its
        batcher's ``max_batch_size`` by default) against the **shared**
        artifact store: a restarted fleet binds all its plans from disk —
        and a replica fleet compiles each trace once, the rest hitting the
        store's in-process memo.  Returns the stats of every warmed plan
        across workers.  No-op under the autograd runtime.
        """
        if self.runtime != "compiled":
            return []
        stats: List = []
        for worker in self._workers:
            sizes = self._warm_up_sizes(batch_sizes, worker.batcher.max_batch_size)
            stats.extend(
                worker.batcher.forward_fn.compile_for(self._example_batch(size))
                for size in sizes
            )
        return stats

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the queues, stop the flusher and join the workers.

        Idempotent.  After ``close()`` no handle is left pending, and
        late ``result()`` calls still answer via the lazy synchronous
        flush (the batchers outlive the worker threads).
        """
        if self._closed:
            return
        self._closed = True
        if self.flusher is not None:
            self.flusher.close(drain=True)
        else:
            for worker in self._workers:
                try:
                    worker.batcher.flush()
                except BaseException:
                    pass  # the affected handles carry the error
        for worker in self._workers:
            worker.close()
        # The tier closes last: the drains above may still dispatch to it.
        if self._tier is not None:
            self._tier.close()

    # ------------------------------------------------------------------
    # health() hooks (see ForecastFrontend.health)
    # ------------------------------------------------------------------
    def _health_shards(self) -> Tuple[ShardHealth, ...]:
        tier_rows: Dict[int, Dict[str, object]] = {}
        if self._tier is not None:
            for row in self._tier.worker_health():
                tier_rows[int(row["shard"])] = row
        shards: List[ShardHealth] = []
        for shard in range(self.num_shards):
            breaker = self._breakers[shard]
            row = tier_rows.get(shard)
            shards.append(
                ShardHealth(
                    shard=shard,
                    breaker=breaker.snapshot() if breaker is not None else None,
                    worker_pid=row["pid"] if row else None,
                    worker_alive=row["alive"] if row else None,
                    heartbeat_age_s=row["heartbeat_age_s"] if row else None,
                    respawns=int(row["respawns"]) if row else 0,
                    hung_detections=int(row["hung_detections"]) if row else 0,
                )
            )
        return tuple(shards)

    def _health_lane_depths(self) -> Dict[str, int]:
        return {lane: self._lane_depth(lane) for lane in ("bulk", "interactive")}

    def _health_counters(self) -> Tuple[int, int]:
        retries = self._retired_retries
        with self._requests_lock:
            expired = self._expired_direct
            retries += self._fleet_retries
        for worker in self._workers:
            merged = _merge_batcher_stats(
                self._retired_shard_stats[worker.index] + [worker.batcher.stats]
            )
            expired += merged.expired_requests
            retries += getattr(worker.batcher.forward_fn, "retries", 0)
        return expired, retries

    def stats(self) -> ShardedServiceStats:
        """Per-shard and aggregate counters of the running service."""
        cache_stats = (
            self.cache.stats()
            if self.cache is not None
            else CacheStats(hits=0, misses=0, evictions=0, size=0, max_entries=0)
        )
        return ShardedServiceStats(
            model_version=self.model_version,
            mode=self.mode,
            num_shards=self.num_shards,
            requests=self._requests,
            cache=cache_stats,
            shards=tuple(
                _merge_batcher_stats(
                    self._retired_shard_stats[worker.index] + [worker.batcher.stats]
                )
                for worker in self._workers
            ),
            runtime=self.runtime,
            flusher=self.flusher.stats() if self.flusher is not None else None,
            precision=self.precision,
            threads=self.threads,
            executor=self.executor,
            lanes=tuple(gate.stats() for gate in self._gates.values()),
            process_tier=self._tier.stats() if self._tier is not None else None,
            quality=self.buffer.quality_stats(),
            swaps=self._swaps,
        )
