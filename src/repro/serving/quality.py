"""Streaming sensor quality control: detector health and imputation.

Production traffic loops never feed raw detector streams straight into a
model: detectors get stuck, drop out, spike, and report values outside
any physical range, and a single NaN poisons every window (and cached
forecast) it touches.  This module is the validation/imputation stage in
front of :class:`~repro.serving.RollingWindowBuffer`:

* :class:`SensorHealthMonitor` classifies each sensor on every ingested
  step — **dropout** (NaN/Inf), **out-of-range**, **stuck-at** (constant
  over ``stuck_steps`` readings) and **spike** (robust z-score against
  the sensor's own recent clean history) — and runs a per-sensor health
  state machine ``healthy → suspect → failed → recovering → healthy``
  whose transitions are driven by consecutive flagged/clean steps;
* flagged readings are **imputed** before they enter the normalised ring,
  by a pluggable strategy: ``"last_value"`` hold, ``"seasonal"``
  (time-of-day profile accumulated from the sensor's own clean history)
  or ``"neighbors"`` (average of the same step's clean readings over the
  hypergraph prior's adjacency row — the structural imputation asset a
  flat serving stack does not have).  Every strategy falls back down the
  chain (``last_value`` → running mean → 0) so the cleaned step is always
  finite;
* :meth:`SensorHealthMonitor.stats` surfaces per-state sensor counts and
  per-issue/per-strategy imputation counters for the serving ``stats()``
  endpoints, and the full monitor state round-trips through
  :meth:`state_dict` / :meth:`load_state_dict` alongside the buffer's
  warm-start snapshot.

The monitor operates on **raw-scale** readings (before normalisation):
range checks and seasonal profiles are only meaningful in physical units,
and the buffer normalises the cleaned step exactly as it always has.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "HEALTH_STATES",
    "ISSUE_KINDS",
    "IMPUTATION_STRATEGIES",
    "QualityConfig",
    "StepReport",
    "QualityStats",
    "SensorHealthMonitor",
]

#: Health states of the per-sensor state machine, in code order.
HEALTH_STATES = ("healthy", "suspect", "failed", "recovering")

#: Issue kinds a reading can be flagged with.
ISSUE_KINDS = ("dropout", "range", "stuck", "spike")

#: Configurable imputation strategies (every one falls back to the chain
#: ``last_value`` → running mean → 0 when it has no data yet).
IMPUTATION_STRATEGIES = ("last_value", "seasonal", "neighbors")

#: Imputation sources recorded in the stats (strategies plus fallbacks).
_IMPUTATION_SOURCES = ("neighbors", "seasonal", "last_value", "mean", "zero")

_HEALTHY, _SUSPECT, _FAILED, _RECOVERING = range(4)


@dataclass(frozen=True)
class QualityConfig:
    """Thresholds of the detector-health checks and the state machine.

    Attributes
    ----------
    stuck_steps:
        Consecutive identical readings (within ``stuck_epsilon``) before a
        sensor is flagged stuck-at.
    spike_zscore / spike_window / spike_min_history / spike_floor:
        A finite, in-range reading is flagged as a spike when its distance
        from the mean of the sensor's last ``spike_window`` *clean*
        readings exceeds ``spike_zscore`` standard deviations (the std is
        floored at ``spike_floor`` raw units so a quiet sensor does not
        flag every fluctuation); the check only arms once
        ``spike_min_history`` clean readings exist.
    value_min / value_max:
        Physical range of a valid reading (``None`` disables the bound).
        Traffic flow cannot be negative, hence the default floor of 0.
    fail_after:
        Consecutive flagged steps that demote a suspect sensor to failed.
    recover_after:
        Consecutive clean steps that promote a recovering sensor back to
        healthy.
    imputation:
        Strategy for flagged readings (see :data:`IMPUTATION_STRATEGIES`).
    steps_per_day:
        Slots of the seasonal time-of-day profile (288 at the paper's
        5-minute resolution).
    """

    stuck_steps: int = 6
    stuck_epsilon: float = 1e-9
    spike_zscore: float = 6.0
    spike_window: int = 24
    spike_min_history: int = 8
    spike_floor: float = 1.0
    value_min: Optional[float] = 0.0
    value_max: Optional[float] = None
    fail_after: int = 3
    recover_after: int = 4
    imputation: str = "last_value"
    steps_per_day: int = 288

    def __post_init__(self) -> None:
        if self.stuck_steps < 2:
            raise ValueError("stuck_steps must be at least 2")
        if self.spike_zscore <= 0 or self.spike_floor <= 0:
            raise ValueError("spike_zscore and spike_floor must be positive")
        if self.spike_window < self.spike_min_history or self.spike_min_history < 2:
            raise ValueError("need spike_window >= spike_min_history >= 2")
        if self.fail_after < 1 or self.recover_after < 1:
            raise ValueError("fail_after and recover_after must be positive")
        if self.imputation not in IMPUTATION_STRATEGIES:
            raise ValueError(
                f"unknown imputation strategy {self.imputation!r}; "
                f"expected one of {IMPUTATION_STRATEGIES}"
            )
        if self.steps_per_day < 1:
            raise ValueError("steps_per_day must be positive")
        if (
            self.value_min is not None
            and self.value_max is not None
            and self.value_min >= self.value_max
        ):
            raise ValueError("value_min must be below value_max")


@dataclass(frozen=True)
class StepReport:
    """What the monitor did to one ingested step."""

    #: Cleaned raw-scale step ``(N, F)`` — always finite.
    clean: np.ndarray
    #: Per-sensor flag mask ``(N,)`` for the target feature channel.
    flagged: np.ndarray
    #: Values replaced this step (flagged target readings plus non-finite
    #: entries of non-target channels).
    imputed: int
    #: Per-issue-kind counts for this step.
    issues: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class QualityStats:
    """Detector-health counters surfaced through the serving ``stats()``."""

    #: Configured imputation strategy.
    strategy: str
    #: Total observation steps the monitor has classified.
    steps_observed: int
    #: Steps on which at least one sensor was flagged.
    flagged_steps: int
    #: Total values replaced by imputation.
    imputed_values: int
    #: Sensors currently in each health state.
    states: Dict[str, int] = field(default_factory=dict)
    #: Cumulative per-issue flag counts.
    issues: Dict[str, int] = field(default_factory=dict)
    #: Which source actually supplied each imputed value.
    imputed_by: Dict[str, int] = field(default_factory=dict)
    #: Indices of the sensors currently failed.
    failed_nodes: Tuple[int, ...] = ()
    #: Imputed values inside the buffer's *current* window (0 when the
    #: monitor runs standalone); a degraded forecast has this > 0.
    window_imputed_values: int = 0
    #: Whether the current window contains any imputed reading.
    window_degraded: bool = False


class SensorHealthMonitor:
    """Classify, track and impute one sensor network's detector stream.

    Parameters
    ----------
    num_nodes / num_features / target_feature:
        Geometry of one observation step ``(N, F)``; the full check suite
        runs on the target (flow) channel, other channels only get
        non-finite values replaced by a last-value hold.
    config:
        Thresholds and the imputation strategy (defaults apply).
    adjacency:
        Prior-graph adjacency ``(N, N)`` backing the ``"neighbors"``
        strategy (required for it; ignored by the others).  Weights are
        used as averaging weights; the diagonal is dropped.
    """

    def __init__(
        self,
        num_nodes: int,
        num_features: int = 1,
        target_feature: int = 0,
        config: Optional[QualityConfig] = None,
        adjacency: Optional[np.ndarray] = None,
    ) -> None:
        if num_nodes <= 0 or num_features <= 0:
            raise ValueError("num_nodes and num_features must be positive")
        if not 0 <= target_feature < num_features:
            raise ValueError(f"target_feature {target_feature} out of range for F={num_features}")
        self.config = config or QualityConfig()
        self.num_nodes = num_nodes
        self.num_features = num_features
        self.target_feature = target_feature
        if self.config.imputation == "neighbors" and adjacency is None:
            raise ValueError(
                "imputation='neighbors' needs the prior-graph adjacency; "
                "pass adjacency= (ForecastService.from_checkpoint wires the "
                "checkpoint's own adjacency automatically)"
            )
        if adjacency is not None:
            adjacency = np.abs(np.asarray(adjacency, dtype=float))
            if adjacency.shape != (num_nodes, num_nodes):
                raise ValueError(
                    f"adjacency shape {adjacency.shape} does not match ({num_nodes}, {num_nodes})"
                )
            adjacency = adjacency.copy()
            np.fill_diagonal(adjacency, 0.0)
        self.adjacency = adjacency
        self._lock = threading.RLock()
        self._reset_state()

    def _reset_state(self) -> None:
        n, f, cfg = self.num_nodes, self.num_features, self.config
        self._state = np.zeros(n, dtype=np.int64)
        self._bad_streak = np.zeros(n, dtype=np.int64)
        self._good_streak = np.zeros(n, dtype=np.int64)
        self._repeat = np.zeros(n, dtype=np.int64)
        self._last_raw = np.full(n, np.nan)
        self._last_clean = np.full(n, np.nan)
        self._last_step = np.zeros((n, f))
        self._hist = np.full((cfg.spike_window, n), np.nan)
        self._hist_pos = 0
        self._profile_sum = np.zeros((cfg.steps_per_day, n))
        self._profile_count = np.zeros((cfg.steps_per_day, n), dtype=np.int64)
        self._slot = 0
        self._mean_sum = np.zeros(n)
        self._mean_count = np.zeros(n, dtype=np.int64)
        self._steps = 0
        self._flagged_steps = 0
        self._imputed_values = 0
        self._issue_counts = np.zeros(len(ISSUE_KINDS), dtype=np.int64)
        self._source_counts = np.zeros(len(_IMPUTATION_SOURCES), dtype=np.int64)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _classify(self, raw: np.ndarray) -> Dict[str, np.ndarray]:
        cfg = self.config
        finite = np.isfinite(raw)
        dropout = ~finite
        range_bad = np.zeros_like(finite)
        if cfg.value_min is not None:
            range_bad |= finite & (raw < cfg.value_min)
        if cfg.value_max is not None:
            range_bad |= finite & (raw > cfg.value_max)
        # Stuck-at: consecutive raw readings within epsilon of each other.
        same = finite & np.isfinite(self._last_raw) & (
            np.abs(raw - self._last_raw) <= cfg.stuck_epsilon
        )
        self._repeat = np.where(same, self._repeat + 1, np.where(finite, 1, 0))
        stuck = finite & ~range_bad & (self._repeat >= cfg.stuck_steps)
        # Spike: robust z-score against the trailing clean history.
        valid = np.isfinite(self._hist)
        count = valid.sum(axis=0)
        mean = np.where(valid, self._hist, 0.0).sum(axis=0) / np.maximum(count, 1)
        var = (np.where(valid, self._hist - mean, 0.0) ** 2).sum(axis=0)
        std = np.sqrt(var / np.maximum(count - 1, 1))
        armed = count >= cfg.spike_min_history
        z = np.abs(raw - mean) / np.maximum(std, cfg.spike_floor)
        spike = finite & ~range_bad & ~stuck & armed & (z > cfg.spike_zscore)
        return {"dropout": dropout, "range": range_bad, "stuck": stuck, "spike": spike}

    # ------------------------------------------------------------------
    # Imputation
    # ------------------------------------------------------------------
    def _impute(self, raw: np.ndarray, flagged: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fill flagged target readings; returns (values, source-index)."""
        cfg = self.config
        n = self.num_nodes
        values = np.full(n, np.nan)
        source = np.full(n, -1, dtype=np.int64)

        def fill(candidate: np.ndarray, name: str) -> None:
            usable = flagged & (source < 0) & np.isfinite(candidate)
            values[usable] = candidate[usable]
            source[usable] = _IMPUTATION_SOURCES.index(name)

        if cfg.imputation == "neighbors" and self.adjacency is not None:
            clean_now = flagged.copy()
            np.logical_not(clean_now, out=clean_now)
            clean_now &= np.isfinite(raw)
            weights = self.adjacency * clean_now[None, :]
            denom = weights.sum(axis=1)
            with np.errstate(invalid="ignore", divide="ignore"):
                candidate = (weights @ np.where(clean_now, raw, 0.0)) / denom
            candidate[denom <= 0] = np.nan
            fill(candidate, "neighbors")
        if cfg.imputation == "seasonal":
            slot = self._slot % cfg.steps_per_day
            count = self._profile_count[slot]
            with np.errstate(invalid="ignore", divide="ignore"):
                candidate = self._profile_sum[slot] / count
            candidate = np.where(count > 0, candidate, np.nan)
            fill(candidate, "seasonal")
        fill(self._last_clean, "last_value")
        with np.errstate(invalid="ignore", divide="ignore"):
            running = self._mean_sum / self._mean_count
        fill(np.where(self._mean_count > 0, running, np.nan), "mean")
        remaining = flagged & (source < 0)
        values[remaining] = 0.0
        source[remaining] = _IMPUTATION_SOURCES.index("zero")
        return values, source

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _advance_states(self, flagged: np.ndarray) -> None:
        cfg = self.config
        self._bad_streak = np.where(flagged, self._bad_streak + 1, 0)
        self._good_streak = np.where(flagged, 0, self._good_streak + 1)
        state = self._state
        new = state.copy()
        new[(state == _HEALTHY) & flagged] = _SUSPECT
        new[(state == _SUSPECT) & ~flagged] = _HEALTHY
        new[(state == _SUSPECT) & flagged & (self._bad_streak >= cfg.fail_after)] = _FAILED
        new[(state == _FAILED) & ~flagged] = _RECOVERING
        new[(state == _RECOVERING) & flagged] = _FAILED
        new[
            (state == _RECOVERING) & ~flagged & (self._good_streak >= cfg.recover_after)
        ] = _HEALTHY
        self._state = new

    # ------------------------------------------------------------------
    def observe(self, step: np.ndarray) -> StepReport:
        """Classify one raw observation step and return its cleaned form.

        ``step`` has shape ``(N, F)`` (or ``(N,)`` when F=1) on the raw
        scale.  The returned :attr:`StepReport.clean` is always finite:
        flagged target readings are imputed by the configured strategy and
        non-finite entries of other channels are replaced by a last-value
        hold.
        """
        step = np.asarray(step, dtype=float)
        if step.ndim == 1 and self.num_features == 1:
            step = step[:, None]
        if step.shape != (self.num_nodes, self.num_features):
            raise ValueError(
                f"step shape {step.shape} does not match "
                f"(num_nodes={self.num_nodes}, num_features={self.num_features})"
            )
        with self._lock:
            clean = step.copy()
            raw = step[:, self.target_feature].astype(float, copy=True)
            issues = self._classify(raw)
            flagged = np.zeros(self.num_nodes, dtype=bool)
            for kind in ISSUE_KINDS:
                flagged |= issues[kind]
            imputed = 0
            if flagged.any():
                values, source = self._impute(raw, flagged)
                clean[flagged, self.target_feature] = values[flagged]
                imputed += int(flagged.sum())
                for index in range(len(_IMPUTATION_SOURCES)):
                    self._source_counts[index] += int((source == index).sum())
            # Non-target channels: only a dropout repair (last-value hold).
            for channel in range(self.num_features):
                if channel == self.target_feature:
                    continue
                bad = ~np.isfinite(clean[:, channel])
                if bad.any():
                    clean[bad, channel] = self._last_step[bad, channel]
                    imputed += int(bad.sum())
            self._advance_states(flagged)
            # Histories track the cleaned stream; the spike window only the
            # genuinely clean readings (an imputed run must not teach the
            # spike detector that the imputed level is normal).
            clean_target = clean[:, self.target_feature]
            self._last_raw[np.isfinite(raw)] = raw[np.isfinite(raw)]
            self._last_clean = clean_target.copy()
            self._last_step = clean.copy()
            row = np.where(flagged, np.nan, raw)
            self._hist[self._hist_pos % self.config.spike_window] = row
            self._hist_pos += 1
            good = ~flagged
            slot = self._slot % self.config.steps_per_day
            self._profile_sum[slot, good] += raw[good]
            self._profile_count[slot, good] += 1
            self._mean_sum[good] += raw[good]
            self._mean_count[good] += 1
            self._slot += 1
            self._steps += 1
            if flagged.any() or imputed:
                self._flagged_steps += 1
            self._imputed_values += imputed
            step_issues: Dict[str, int] = {}
            for index, kind in enumerate(ISSUE_KINDS):
                count = int(issues[kind].sum())
                self._issue_counts[index] += count
                if count:
                    step_issues[kind] = count
            return StepReport(
                clean=clean, flagged=flagged.copy(), imputed=imputed, issues=step_issues
            )

    def observe_correction(self, node: int, values: np.ndarray) -> None:
        """Fold a late per-node correction into the held last values.

        Corrections overwrite the latest ring step directly (see
        :meth:`RollingWindowBuffer.ingest_node`); the monitor only updates
        its hold state so subsequent imputations use the corrected value.
        """
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        values = np.asarray(values, dtype=float).reshape(self.num_features)
        if not np.isfinite(values).all():
            raise ValueError("corrections must be finite")
        with self._lock:
            self._last_raw[node] = values[self.target_feature]
            self._last_clean[node] = values[self.target_feature]
            self._last_step[node] = values

    # ------------------------------------------------------------------
    def health(self) -> Tuple[str, ...]:
        """Current health-state name of every sensor."""
        with self._lock:
            return tuple(HEALTH_STATES[code] for code in self._state)

    def stats(self) -> QualityStats:
        """Snapshot of the per-state and per-issue counters."""
        with self._lock:
            states = {
                name: int((self._state == code).sum())
                for code, name in enumerate(HEALTH_STATES)
            }
            return QualityStats(
                strategy=self.config.imputation,
                steps_observed=self._steps,
                flagged_steps=self._flagged_steps,
                imputed_values=self._imputed_values,
                states=states,
                issues={
                    kind: int(self._issue_counts[index])
                    for index, kind in enumerate(ISSUE_KINDS)
                },
                imputed_by={
                    name: int(self._source_counts[index])
                    for index, name in enumerate(_IMPUTATION_SOURCES)
                    if self._source_counts[index]
                },
                failed_nodes=tuple(int(i) for i in np.flatnonzero(self._state == _FAILED)),
            )

    # ------------------------------------------------------------------
    # Persistence (rides on the buffer's warm-start snapshot)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Complete monitor state as plain arrays (npz-serialisable)."""
        with self._lock:
            return {
                "state": self._state.copy(),
                "bad_streak": self._bad_streak.copy(),
                "good_streak": self._good_streak.copy(),
                "repeat": self._repeat.copy(),
                "last_raw": self._last_raw.copy(),
                "last_clean": self._last_clean.copy(),
                "last_step": self._last_step.copy(),
                "hist": self._hist.copy(),
                "hist_pos": np.int64(self._hist_pos),
                "profile_sum": self._profile_sum.copy(),
                "profile_count": self._profile_count.copy(),
                "slot": np.int64(self._slot),
                "mean_sum": self._mean_sum.copy(),
                "mean_count": self._mean_count.copy(),
                "steps": np.int64(self._steps),
                "flagged_steps": np.int64(self._flagged_steps),
                "imputed_values": np.int64(self._imputed_values),
                "issue_counts": self._issue_counts.copy(),
                "source_counts": self._source_counts.copy(),
            }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot (geometry must match)."""
        with self._lock:
            restored = np.asarray(state["state"], dtype=np.int64)
            if restored.shape != (self.num_nodes,):
                raise ValueError(
                    f"snapshot tracks {restored.shape[0]} sensors; "
                    f"this monitor tracks {self.num_nodes}"
                )
            hist = np.asarray(state["hist"], dtype=float)
            self._state = restored
            self._bad_streak = np.asarray(state["bad_streak"], dtype=np.int64)
            self._good_streak = np.asarray(state["good_streak"], dtype=np.int64)
            self._repeat = np.asarray(state["repeat"], dtype=np.int64)
            self._last_raw = np.asarray(state["last_raw"], dtype=float)
            self._last_clean = np.asarray(state["last_clean"], dtype=float)
            self._last_step = np.asarray(state["last_step"], dtype=float).reshape(
                self.num_nodes, self.num_features
            )
            # Tolerate a spike-window (or profile-resolution) config change
            # between save and restore: reconcile into the live shapes.
            self._hist = np.full((self.config.spike_window, self.num_nodes), np.nan)
            rows = min(self.config.spike_window, hist.shape[0])
            self._hist[:rows] = hist[:rows]
            self._hist_pos = int(state["hist_pos"])
            profile_sum = np.asarray(state["profile_sum"], dtype=float)
            profile_count = np.asarray(state["profile_count"], dtype=np.int64)
            if profile_sum.shape == (self.config.steps_per_day, self.num_nodes):
                self._profile_sum = profile_sum
                self._profile_count = profile_count
            else:
                self._profile_sum = np.zeros((self.config.steps_per_day, self.num_nodes))
                self._profile_count = np.zeros(
                    (self.config.steps_per_day, self.num_nodes), dtype=np.int64
                )
            self._slot = int(state["slot"])
            self._mean_sum = np.asarray(state["mean_sum"], dtype=float)
            self._mean_count = np.asarray(state["mean_count"], dtype=np.int64)
            self._steps = int(state["steps"])
            self._flagged_steps = int(state["flagged_steps"])
            self._imputed_values = int(state["imputed_values"])
            self._issue_counts = np.asarray(state["issue_counts"], dtype=np.int64).copy()
            self._source_counts = np.asarray(state["source_counts"], dtype=np.int64).copy()

    def reset(self) -> None:
        """Forget all history and counters (sensors return to healthy)."""
        with self._lock:
            self._reset_state()
