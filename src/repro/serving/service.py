"""The forecast-serving front end.

:class:`ForecastService` is the piece a production deployment talks to.  It
owns a trained :class:`~repro.core.DyHSL` (loaded from a self-describing
checkpoint or passed in), the fitted training scaler, a rolling observation
buffer for streaming ingestion, a micro-batching queue and an LRU forecast
cache, and exposes raw-scale queries:

* :meth:`forecast` — one raw window in, one ``(T', N)`` forecast out;
* :meth:`forecast_many` — a batch of windows, answered with cache lookups
  plus a single coalesced forward for the misses;
* :meth:`submit` — the asynchronous path: enqueue a window, keep going,
  collect the :class:`~repro.serving.AsyncForecast` handle later.  With
  ``auto_flush_at`` set, batches fire on a size threshold; with
  ``linger_ms`` set, a background flusher guarantees no request waits
  longer than the linger even when the threshold is never reached;
* :meth:`ingest` / :meth:`forecast_latest` — streaming operation: push
  detector readings as they arrive, forecast from the rolling buffer.

Forwards run through the **graph-free compiled runtime**
(:mod:`repro.runtime`) by default: the model's forward pass is compiled
once per batch shape into a flat kernel plan — elementwise chains fused
into blocked single-buffer sweeps — replayed on raw arrays with reused
workspace buffers.  The service itself passes whatever batch the cache
misses produce straight through: ragged sizes are padded to power-of-two
buckets (and sliced back) inside the runtime, so the plan cache stays
O(log max_batch) under bursty traffic (``REPRO_RUNTIME_BUCKETS`` caps or
disables this).  The escape hatch back to autograd forwards is the
``runtime="autograd"`` argument or ``REPRO_RUNTIME=autograd`` in the
environment (see ``docs/runtime.md``).

Warm start: :meth:`save_buffer_state` persists the rolling buffer next to
a checkpoint and :meth:`from_checkpoint`'s ``buffer_state=`` (or
:meth:`restore_buffer_state`) reloads it, so a restarted service serves
from its first ingest instead of waiting out a ``T``-step cold window.

The shared plumbing (normalisation, cache keys, the rolling buffer,
checkpoint loading) lives in :class:`ForecastFrontend`, the base class of
both this single-worker service and the multi-worker
:class:`~repro.serving.ShardedForecastService`.

All inputs and outputs are on the *original* flow scale (vehicles per five
minutes); normalisation is an internal concern.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..nn import Module
from ..runtime import (
    ArtifactStore,
    CompiledModel,
    resolve_precision,
    resolve_runtime_mode,
    resolve_thread_count,
)
from ..tensor import Tensor, no_grad
from .batching import (
    AsyncForecast,
    BackgroundFlusher,
    BatcherStats,
    FlusherStats,
    MicroBatcher,
    PendingForecast,
)
from .buffer import RollingWindowBuffer
from .cache import CacheStats, ForecastCache, StaleForecast
from .quality import QualityConfig, QualityStats, SensorHealthMonitor
from .resilience import (
    Deadline,
    DeadlineExceeded,
    ResilienceConfig,
    ResilienceError,
    ResilientForward,
    ServiceHealth,
    ShardHealth,
)

__all__ = ["ServiceStats", "SwapReport", "ForecastFrontend", "ForecastService"]


def _weights_fingerprint(model: Module) -> str:
    """Short content hash of the model weights, used as the model version."""
    digest = hashlib.sha1()
    for name, value in sorted(model.state_dict().items()):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class ServiceStats:
    """Operational counters of a running service."""

    model_version: str
    requests: int
    cache: CacheStats
    batcher: BatcherStats
    runtime: str = "compiled"
    flusher: Optional[FlusherStats] = None
    #: Default execution precision policy of the forward engine.
    precision: str = "float64"
    #: Island-parallel replay width of the compiled plans (1 = serial).
    threads: int = 1
    #: Detector-health and imputation counters (None without a monitor).
    quality: Optional[QualityStats] = None
    #: Completed hot checkpoint swaps over the service's lifetime.
    swaps: int = 0


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`ForecastFrontend.swap_checkpoint` call did."""

    old_version: str
    new_version: str
    #: Whether the new checkpoint's scaler differed (and the streaming ring
    #: was re-normalised under the buffer lock).
    scaler_changed: bool
    #: Plan artifacts copied from the checkpoint's AOT sidecar into the
    #: deployment store before the engines were built.
    artifacts_adopted: int
    #: Plans bound from existing artifacts while warming the new engines.
    plans_reused: int
    #: Plans traced from scratch while warming the new engines.
    plans_compiled: int
    #: Wall-clock duration of the swap (load -> publish), milliseconds.
    swap_ms: float


class _Generation:
    """One immutable serving generation: weights, scaler, version, engines.

    The swap path builds a complete new generation off to the side (plans
    warmed, batchers constructed) and publishes it with a single reference
    assignment; every query captures ``self._gen`` once at entry, so a
    request runs start to finish against exactly one generation — never a
    torn old-model/new-scaler mix.
    """

    __slots__ = ("model", "scaler", "model_version", "engine")

    def __init__(self, model, scaler, model_version, engine=None) -> None:
        self.model = model
        self.scaler = scaler
        self.model_version = model_version
        self.engine = engine


class _ServiceEngine:
    """The single-worker generation payload: one forward, one batcher."""

    __slots__ = ("forward", "batcher")

    def __init__(self, forward, batcher) -> None:
        self.forward = forward
        self.batcher = batcher


def _merge_batcher_stats(parts: List[BatcherStats]) -> BatcherStats:
    """Sum batcher counters across generations (stats survive a hot swap)."""
    merged = BatcherStats()
    for part in parts:
        merged.requests += part.requests
        merged.flushes += part.flushes
        merged.coalesced += part.coalesced
        merged.largest_batch = max(merged.largest_batch, part.largest_batch)
        merged.failed_flushes += part.failed_flushes
        merged.failed_requests += part.failed_requests
        merged.expired_requests += part.expired_requests
    return merged


class ForecastFrontend:
    """Shared serving plumbing: scaling, caching, streaming, checkpoints.

    Holds everything a forecast front end needs *around* the model
    forwards — the fitted scaler, the weights-fingerprint model version,
    the LRU cache and the rolling streaming buffer — so the single-worker
    :class:`ForecastService` and the multi-worker
    :class:`~repro.serving.ShardedForecastService` only differ in how a
    batch of cache misses is computed.
    """

    def __init__(
        self,
        model: Module,
        scaler: Optional[object] = None,
        model_version: Optional[str] = None,
        cache_entries: int = 1024,
        runtime: Optional[str] = None,
        precision: Optional[str] = None,
        threads: Optional[int] = None,
        artifact_dir: Optional[Union[str, Path, ArtifactStore]] = None,
        quality: Union[None, bool, QualityConfig, SensorHealthMonitor] = None,
        quality_adjacency: Optional[np.ndarray] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        config = getattr(model, "config", None)
        if config is None:
            raise ValueError("model must expose a config attribute")
        model.eval()
        self.config = config
        # Failure policy for every serving path: deadlines, bounded retries,
        # optional circuit breakers, stale-serve.  The default config retries
        # retryable failures only and enables no breakers — see
        # docs/serving_quickstart.md §"Resilience & degraded modes".
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self._stale_served = 0
        # Expiries on direct (non-queued) paths; the batch queue's sweep
        # counts its own in BatcherStats.expired_requests.
        self._expired_direct = 0
        self._gen = _Generation(model, scaler, model_version or _weights_fingerprint(model))
        self._swap_lock = threading.Lock()
        self._swaps = 0
        self.runtime = resolve_runtime_mode(runtime)
        self.precision = resolve_precision(precision).name
        self.threads = resolve_thread_count(threads)
        # One store instance for the whole deployment: resolved here so the
        # sharded service hands the SAME object to every worker — N shards
        # then share one on-disk directory *and* one in-process memo, i.e.
        # each trace is compiled once per fleet, not once per worker.
        # (Ignored under the autograd runtime, which compiles nothing.)
        self.artifact_store: Optional[ArtifactStore] = (
            artifact_dir
            if artifact_dir is None or isinstance(artifact_dir, ArtifactStore)
            else ArtifactStore(artifact_dir)
        )
        if self.runtime != "compiled" and self.precision != "float64":
            raise ValueError(
                "reduced-precision serving requires the compiled runtime; "
                f"runtime={self.runtime!r} executes float64 autograd forwards"
            )
        self.cache: Optional[ForecastCache] = (
            ForecastCache(max_entries=cache_entries) if cache_entries > 0 else None
        )
        # Streaming quality control: `quality=` accepts a ready monitor, a
        # QualityConfig, or True (default thresholds); the monitor sits in
        # front of the rolling buffer's ring, classifying and imputing every
        # ingested step (see repro.serving.quality).
        self.quality = self._resolve_quality(quality, quality_adjacency)
        # The streaming ring stores windows at the service's serving
        # precision.  On the single-worker direct path (_predict hands the
        # raw array to the compiled plan) a float32 snapshot enters the
        # float32 plan without an upcast-downcast round trip; batcher-routed
        # paths (the sharded streaming fan-out) still coalesce through a
        # float64 Tensor and pay the plan's entry cast — correct either way,
        # the ring dtype only removes casts where the array flows directly.
        self.buffer = RollingWindowBuffer(
            input_length=config.input_length,
            num_nodes=config.num_nodes,
            num_features=config.input_dim,
            scaler=scaler,
            dtype=np.float32 if self.precision == "float32" else float,
            quality=self.quality,
        )
        self._requests = 0
        self._requests_lock = threading.Lock()

    def _resolve_quality(
        self,
        quality: Union[None, bool, QualityConfig, SensorHealthMonitor],
        adjacency: Optional[np.ndarray],
    ) -> Optional[SensorHealthMonitor]:
        if quality is None or quality is False:
            return None
        if isinstance(quality, SensorHealthMonitor):
            return quality
        config = quality if isinstance(quality, QualityConfig) else QualityConfig()
        return SensorHealthMonitor(
            self.config.num_nodes,
            num_features=self.config.input_dim,
            config=config,
            adjacency=adjacency,
        )

    # ------------------------------------------------------------------
    # The live serving generation.  model / scaler / model_version read
    # through self._gen so a hot swap atomically retargets every consumer.
    # ------------------------------------------------------------------
    @property
    def model(self) -> Module:
        """The currently served model (changes on hot swap)."""
        return self._gen.model

    @property
    def scaler(self) -> Optional[object]:
        """The currently served scaler (changes on hot swap)."""
        return self._gen.scaler

    @property
    def model_version(self) -> str:
        """Version of the currently served weights (cache namespace)."""
        return self._gen.model_version

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        buffer_state: Optional[Union[str, Path]] = None,
        **kwargs,
    ):
        """Build a service from a :func:`~repro.training.save_model_checkpoint` file.

        ``buffer_state`` optionally points at a
        :meth:`save_buffer_state` sidecar; when given, the rolling buffer is
        restored so streaming queries work immediately (warm start).
        Remaining keyword arguments go to the service constructor, so
        sharded deployments load the same checkpoints:
        ``ShardedForecastService.from_checkpoint(path, num_shards=4)``.
        """
        from ..training.checkpoints import load_model_checkpoint

        loaded = load_model_checkpoint(path)
        version = kwargs.pop("model_version", None)
        if version is None:
            version = loaded.metadata.get("model_version")
        if kwargs.get("quality") and kwargs.get("quality_adjacency") is None:
            # The neighbor-average imputation strategy averages over the
            # prior graph; the checkpoint carries exactly that adjacency.
            kwargs["quality_adjacency"] = loaded.adjacency
        service = cls(loaded.model, scaler=loaded.scaler, model_version=version, **kwargs)
        if buffer_state is not None:
            service.restore_buffer_state(buffer_state)
        return service

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Forecast horizon ``T'`` of the served model."""
        return self.config.output_length

    def _normalise_window(
        self, window: np.ndarray, gen: Optional[_Generation] = None
    ) -> np.ndarray:
        scaler = (gen or self._gen).scaler
        window = np.asarray(window, dtype=float)
        if window.ndim == 2 and self.config.input_dim == 1:
            window = window[:, :, None]
        expected = (self.config.input_length, self.config.num_nodes, self.config.input_dim)
        if window.shape != expected:
            raise ValueError(f"window shape {window.shape} does not match model input {expected}")
        if scaler is not None:
            window = window.copy()
            window[..., 0] = scaler.transform(window[..., 0])
        return window

    def _normalise_batch(
        self, windows: np.ndarray, gen: Optional[_Generation] = None
    ) -> List[np.ndarray]:
        """Validate a raw ``(B, T, N, F)`` batch into normalised windows."""
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 3 and self.config.input_dim == 1:
            windows = windows[..., None]
        if windows.ndim != 4:
            raise ValueError(f"windows must have shape (B, T, N, F); got {windows.shape}")
        return [self._normalise_window(window, gen=gen) for window in windows]

    def _denormalise(
        self, predictions: np.ndarray, gen: Optional[_Generation] = None
    ) -> np.ndarray:
        scaler = (gen or self._gen).scaler
        if scaler is not None:
            return scaler.inverse_transform(predictions)
        return predictions

    def _check_horizon(self, horizon: Optional[int]) -> int:
        if horizon is None:
            return self.config.output_length
        if not 1 <= horizon <= self.config.output_length:
            raise ValueError(
                f"horizon must be in [1, {self.config.output_length}]; got {horizon}"
            )
        return int(horizon)

    def _empty_forecasts(self, horizon: int) -> np.ndarray:
        """The well-formed answer to an empty query batch."""
        return np.empty((0, horizon, self.config.num_nodes))

    # ------------------------------------------------------------------
    # Precision-policy plumbing.  The service-wide default is fixed at
    # construction; synchronous queries may override it per request — the
    # float64 SLA path of a float32 deployment (or an opportunistic
    # float32 answer from a float64 one).
    # ------------------------------------------------------------------
    def _resolve_request_precision(self, precision: Optional[str]) -> Optional[str]:
        """Normalise a per-request override; ``None`` means the default path.

        Overrides that merely restate the service default collapse to the
        default path (micro-batched, default cache namespace).  A genuine
        override requires the compiled runtime — autograd forwards are
        float64 by construction.
        """
        if precision is None:
            return None
        name = resolve_precision(precision).name
        if name == self.precision:
            return None
        if self.runtime != "compiled":
            raise ValueError(
                "per-request precision overrides require the compiled runtime"
            )
        return name

    def _key_version(
        self, precision: Optional[str] = None, gen: Optional[_Generation] = None
    ) -> str:
        """Cache namespace for one precision policy.

        Float32 and float64 answers to the same window differ, so they may
        never alias one cache entry; the float64 namespace stays the bare
        model version for cache continuity with earlier deployments.  The
        version comes from the request's captured generation, so a swap
        invalidates every stream/window key in one assignment.
        """
        version = (gen or self._gen).model_version
        name = precision or self.precision
        return version if name == "float64" else f"{version}:{name}"

    def _count_requests(self, count: int = 1) -> None:
        """Bump the request counter (locked: query paths race by design)."""
        with self._requests_lock:
            self._requests += count

    def _count_stale(self, count: int = 1) -> None:
        with self._requests_lock:
            self._stale_served += count

    def _check_deadline(self, deadline: Optional[Deadline], stage: str) -> None:
        """Deadline probe that keeps :meth:`health` honest.

        Direct-path expiries (predict, precision chunks — anything outside
        the batch queue, whose sweep already counts its own) land in the
        ``expired_requests`` health counter before the typed raise.
        """
        if deadline is None:
            return
        try:
            deadline.check(stage)
        except DeadlineExceeded:
            with self._requests_lock:
                self._expired_direct += 1
            raise

    def _entry_deadline(self, deadline_ms: Optional[float]) -> Optional[Deadline]:
        """Capture a request's time budget at entry.

        An explicit ``deadline_ms`` wins; otherwise the service-wide
        ``ResilienceConfig.default_deadline_ms`` applies; ``None`` for both
        means no budget (the historical behaviour).
        """
        if deadline_ms is None:
            deadline_ms = self.resilience.default_deadline_ms
        return Deadline.after(deadline_ms)

    def _serve_stale_instead(self, key, error: BaseException) -> Optional[StaleForecast]:
        """Degraded-mode fallback: a marked-stale cache entry for ``key``.

        Only consulted when ``ResilienceConfig(serve_stale=True)`` and only
        for typed resilience failures — a deterministic error (bad shape,
        unknown horizon) must surface, not be papered over with old data.
        """
        if not self.resilience.serve_stale or self.cache is None or key is None:
            return None
        if not isinstance(error, ResilienceError):
            return None
        stale = self.cache.get_stale(key)
        if stale is not None:
            self._count_stale()
        return stale

    # ------------------------------------------------------------------
    def _warm_up_sizes(self, batch_sizes, cap: int) -> List[int]:
        """Resolve a warm-up ladder: explicit sizes, or doubling up to ``cap``."""
        if batch_sizes is not None:
            sizes = sorted({int(size) for size in batch_sizes})
            if not sizes or sizes[0] <= 0:
                raise ValueError("warm_up batch sizes must be positive")
            return sizes
        sizes: List[int] = []
        size = 1
        while size < cap:
            sizes.append(size)
            size *= 2
        sizes.append(cap)
        return sizes

    def _example_batch(self, size: int) -> np.ndarray:
        """A zero batch of ``size`` windows shaped for the served model."""
        return np.zeros(
            (size, self.config.input_length, self.config.num_nodes, self.config.input_dim)
        )

    # ------------------------------------------------------------------
    # Shared query skeleton.  The cache front, miss deduplication and
    # finalisation (merge -> denormalise -> horizon -> cache insert) are
    # identical for every frontend; subclasses provide only the compute:
    # _compute_misses (synchronous) and _submit_parts (asynchronous).
    # ------------------------------------------------------------------
    @staticmethod
    def _merge(parts: List[np.ndarray]) -> np.ndarray:
        """Combine one query's pending parts (a single part by default;
        node-sharded services concatenate per-shard column blocks)."""
        return parts[0]

    def _compute_misses(
        self,
        windows: List[np.ndarray],
        precision: Optional[str] = None,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[np.ndarray]:
        """Run the model for deduplicated misses (normalised in and out).

        ``precision`` is a resolved per-request override (never the
        default): such requests bypass the micro-batch queues — mixing
        precisions in one coalesced forward would serve some requests at
        the wrong policy — and compute on the calling thread.  ``gen`` is
        the generation captured at request entry; the compute must run on
        that generation's engines even if a swap lands mid-request.
        ``deadline`` is the budget captured at entry; expired requests fail
        typed before compute.
        """
        raise NotImplementedError

    def _submit_parts(
        self, window: np.ndarray, gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> List["PendingForecast"]:
        """Enqueue one normalised window; returns its pending parts."""
        raise NotImplementedError

    def _admit(self, lane: str, rows: int) -> None:
        """Admission-control hook, called at accept time for cache misses.

        The base frontend admits everything; the sharded service overrides
        this with bounded per-lane gates that raise
        :class:`~repro.serving.ServiceOverloaded` — always *before* the
        request touches a queue, so accepted work is never shed later.
        """

    def _finalize(self, key, horizon: int, gen: Optional[_Generation] = None):
        """Build the merge -> denormalise -> cache hook for one query."""
        gen = gen or self._gen

        def finalize(parts: List[np.ndarray]) -> np.ndarray:
            forecast = self._denormalise(self._merge(parts), gen=gen)[:horizon]
            if self.cache is not None and key is not None:
                self.cache.put(key, forecast)
            return forecast.copy()

        return finalize

    def _serve_normalised_batch(
        self,
        normalised: List[np.ndarray],
        horizon: int,
        precision: Optional[str] = None,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> np.ndarray:
        """Serve normalised windows: cache hits, deduplicated misses, stack.

        ``precision`` is a resolved per-request override; it namespaces the
        cache keys (a float32 answer must never satisfy a float64 query)
        and is forwarded to :meth:`_compute_misses`.  When compute fails
        with a typed resilience error and stale-serve is on, misses are
        answered from any model version's cached entry for the same window
        (the whole stacked result is then a :class:`StaleForecast`).
        """
        gen = gen or self._gen
        version = self._key_version(precision, gen=gen)
        results: List[Optional[np.ndarray]] = [None] * len(normalised)
        # Requests that miss the cache, grouped by key so identical in-flight
        # windows share one forward slot.
        miss_groups: "dict[tuple, List[int]]" = {}
        for index, window in enumerate(normalised):
            key = ForecastCache.make_key(version, window, horizon)
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            miss_groups.setdefault(key, []).append(index)

        served_stale = False
        if miss_groups:
            groups = list(miss_groups.items())
            self._admit("bulk", len(groups))
            try:
                outputs = self._compute_misses(
                    [normalised[group[0]] for _, group in groups],
                    precision=precision,
                    gen=gen,
                    deadline=deadline,
                )
            except ResilienceError as error:
                if not (self.resilience.serve_stale and self.cache is not None):
                    raise
                stale = [self.cache.get_stale(key) for key, _ in groups]
                if any(entry is None for entry in stale):
                    # Degraded mode can only answer what some generation
                    # once computed; a window never seen fails typed.
                    raise
                self._count_stale(len(groups))
                served_stale = True
                outputs = None
                for (key, group), entry in zip(groups, stale):
                    results[group[0]] = entry
                    for index in group[1:]:
                        results[index] = entry.copy()
            if outputs is not None:
                for (key, group), output in zip(groups, outputs):
                    forecast = self._denormalise(output, gen=gen)[:horizon]
                    if self.cache is not None:
                        self.cache.put(key, forecast)
                    results[group[0]] = forecast
                    for index in group[1:]:
                        results[index] = forecast.copy()
        stacked = np.stack(results, axis=0)
        return StaleForecast(stacked) if served_stale else stacked

    def forecast_many(
        self,
        windows: np.ndarray,
        horizon: Optional[int] = None,
        precision: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Forecast a batch of raw windows with caching plus batched compute.

        Cache hits are answered directly; misses are deduplicated (identical
        in-flight windows are computed once) and computed by the concrete
        frontend — one coalesced micro-batched forward on the single-worker
        service, a routed fan-out on the sharded one.  An empty batch is
        answered with an empty ``(0, horizon, N)`` array instead of
        reaching the model.

        ``precision`` overrides the service's execution-precision policy
        for this query only — e.g. ``precision="float64"`` is the SLA path
        of a ``precision="float32"`` deployment, served bit-identically to
        an all-float64 service from its own cache namespace.

        ``deadline_ms`` caps the request's total time budget: misses still
        queued (or dispatched chunks still waiting) past the budget fail
        with a typed :class:`~repro.serving.DeadlineExceeded` instead of
        computing.
        """
        horizon = self._check_horizon(horizon)
        precision = self._resolve_request_precision(precision)
        deadline = self._entry_deadline(deadline_ms)
        # One generation per request: a hot swap mid-batch must not mix the
        # old scaler's normalisation with the new model's forward.
        gen = self._gen
        normalised = self._normalise_batch(windows, gen=gen)
        self._count_requests(len(normalised))
        if not normalised:
            return self._empty_forecasts(horizon)
        return self._serve_normalised_batch(
            normalised, horizon, precision=precision, gen=gen, deadline=deadline
        )

    def submit(self, window: np.ndarray, horizon: Optional[int] = None,
               deadline_ms: Optional[float] = None) -> AsyncForecast:
        """Enqueue one raw window; returns a handle to collect later.

        The batched forward runs when ``auto_flush_at`` requests are
        pending, when the ``linger_ms`` background flusher fires, or
        lazily on :meth:`AsyncForecast.result` — whichever happens first.
        Cache hits return an already-settled handle.  (See the concrete
        service's ``auto_flush_at`` documentation for *which thread* the
        size-threshold flush runs on.)  ``deadline_ms`` rides with the
        queued entry: if it expires before a flush reaches the entry, the
        handle fails typed with
        :class:`~repro.serving.DeadlineExceeded` instead of computing.
        """
        horizon = self._check_horizon(horizon)
        deadline = self._entry_deadline(deadline_ms)
        self._count_requests()
        gen = self._gen
        normalised = self._normalise_window(window, gen=gen)
        key = None
        if self.cache is not None:
            key = ForecastCache.make_key(self._key_version(gen=gen), normalised, horizon)
            cached = self.cache.get(key)
            if cached is not None:
                return AsyncForecast.completed(cached)
        self._admit("bulk", 1)
        parts = self._submit_parts(normalised, gen=gen, deadline=deadline)
        return AsyncForecast(parts, self._finalize(key, horizon, gen=gen))

    # ------------------------------------------------------------------
    # Streaming operation
    # ------------------------------------------------------------------
    def ingest(self, observation: np.ndarray) -> None:
        """Push one raw observation step ``(N, F)`` into the rolling buffer."""
        self.buffer.ingest(observation)

    def save_buffer_state(self, path: Union[str, Path]) -> Path:
        """Persist the rolling buffer next to a checkpoint (warm start).

        A restarted service built with ``from_checkpoint(..., buffer_state=...)``
        (or :meth:`restore_buffer_state`) resumes streaming forecasts
        immediately instead of waiting out a ``T``-step cold window.
        """
        return self.buffer.save(path)

    def restore_buffer_state(self, path: Union[str, Path]) -> None:
        """Reload a :meth:`save_buffer_state` snapshot into the live buffer."""
        self.buffer.restore(path)

    # ------------------------------------------------------------------
    # Hot checkpoint swap (zero downtime).
    # ------------------------------------------------------------------
    def _validate_swap_config(self, config) -> None:
        """A swapped checkpoint must describe the same serving geometry."""
        for attr in ("num_nodes", "input_length", "output_length", "input_dim"):
            live, new = getattr(self.config, attr), getattr(config, attr)
            if live != new:
                raise ValueError(
                    f"cannot hot-swap a checkpoint with {attr}={new} into a "
                    f"service built for {attr}={live}; geometry changes need "
                    "a new deployment"
                )

    def _build_engine(self, model: Module, warm_sizes=None) -> Tuple[object, int, int]:
        """Build (engine, plans_reused, plans_compiled) for a new generation.

        The base frontend has no engines; concrete services construct their
        forward/batcher payload here, fully warmed, *before* publication —
        the first request on the new generation must not pay a trace.
        """
        return None, 0, 0

    def _publish_generation(self, gen: _Generation) -> None:
        """Install a fully-built generation (runs under the buffer lock)."""
        self._gen = gen

    def _retire_generation(self, old: _Generation) -> None:
        """Drain whatever the old generation still owes after publication."""

    def swap_checkpoint(self, path: Union[str, Path], warm_sizes=None) -> SwapReport:
        """Atomically install a new checkpoint into the live service.

        Zero-downtime, drain-free: the new generation (weights, scaler,
        compiled plans, batchers) is built completely off to the side, then
        published with a single reference assignment performed **under the
        streaming buffer's lock**, atomically with re-normalising the ring
        if the new checkpoint's scaler differs.  Concurrent requests each
        captured a generation at entry: in-flight work completes on the old
        weights (its micro-batchers stay flushable and its plans stay
        valid), new requests see the new weights — never a mix.

        Cache correctness is free: forecast and plan caches are keyed by
        ``model_version`` (the weights fingerprint), so old entries can
        never answer new-version queries.  When the checkpoint has an AOT
        artifact sidecar (:func:`~repro.training.save_plan_artifacts`) and
        the service was built with ``artifact_dir=``, the sidecar's plans
        are adopted into the deployment store first, making the swap a
        handful of disk binds instead of retraces — and process-tier
        workers (whose store roots are fixed at spawn) can load them too.

        ``warm_sizes`` optionally lists batch sizes to pre-plan on the new
        engines (default: just the streaming batch of 1).
        """
        from ..training.checkpoints import artifact_dir_for, load_model_checkpoint

        started = time.perf_counter()
        loaded = load_model_checkpoint(path)
        self._validate_swap_config(loaded.config)
        version = loaded.metadata.get("model_version")
        if version is None:
            version = _weights_fingerprint(loaded.model)
        with self._swap_lock:
            adopted = 0
            if self.runtime == "compiled" and self.artifact_store is not None:
                sidecar = artifact_dir_for(path)
                if sidecar.is_dir():
                    adopted = len(self.artifact_store.adopt(sidecar))
            old = self._gen
            engine, reused, compiled = self._build_engine(loaded.model, warm_sizes)
            new = _Generation(loaded.model, loaded.scaler, version, engine)
            # rescale() runs the publication callback under the buffer lock:
            # ring re-normalisation (when the scaler changed) and generation
            # publication are one atomic event for snapshot() readers.
            rescaled = self.buffer.rescale(
                loaded.scaler, commit=lambda: self._publish_generation(new)
            )
            self._retire_generation(old)
            self._swaps += 1
        return SwapReport(
            old_version=old.model_version,
            new_version=version,
            scaler_changed=rescaled,
            artifacts_adopted=adopted,
            plans_reused=reused,
            plans_compiled=compiled,
            swap_ms=(time.perf_counter() - started) * 1e3,
        )

    # ------------------------------------------------------------------
    # Health surface (resilience visibility).
    # ------------------------------------------------------------------
    def _health_shards(self) -> Tuple[ShardHealth, ...]:
        """Per-shard liveness/breaker rows; concrete services override."""
        return ()

    def _health_lane_depths(self) -> dict:
        return {}

    def _health_counters(self) -> Tuple[int, int]:
        """(expired_requests, retries) for the health snapshot."""
        return 0, 0

    def health(self) -> ServiceHealth:
        """Resilience snapshot: breaker states, worker liveness, lane depths.

        ``healthy`` is the operator's one-bit summary: no breaker is open
        and no spawned worker is known dead.  The per-shard rows carry the
        detail (heartbeat ages, respawn/hang counters, breaker snapshots).
        """
        shards = self._health_shards()
        expired, retries = self._health_counters()
        healthy = True
        for shard in shards:
            if shard.breaker is not None and shard.breaker.state == "open":
                healthy = False
            if shard.worker_alive is False:
                healthy = False
        with self._requests_lock:
            stale_served = self._stale_served
        return ServiceHealth(
            healthy=healthy,
            shards=shards,
            lane_depths=self._health_lane_depths(),
            stale_served=stale_served,
            expired_requests=expired,
            retries=retries,
        )

    # ------------------------------------------------------------------
    # Lifecycle: subclasses with background threads override close().
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release background resources; the base frontend has none."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class ForecastService(ForecastFrontend):
    """Serve per-node traffic forecasts from a trained model.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.DyHSL` (any module exposing a
        ``config`` with ``input_length`` / ``output_length`` / ``num_nodes``
        / ``input_dim`` works).  The service switches it to evaluation mode.
    scaler:
        The scaler fitted on the training flow; ``None`` serves on the
        normalised scale directly.
    model_version:
        Cache namespace for this deployment; defaults to a fingerprint of
        the weights so a redeploy can never serve stale cached forecasts.
    cache_entries:
        LRU capacity (0 disables caching).
    max_batch_size:
        Largest coalesced forward pass of the micro-batcher.
    auto_flush_at:
        When set, a :meth:`submit` that brings the queue to this size
        triggers the batched forward immediately.  The size-based flush
        runs on the *submitting* thread (deliberate backpressure — see
        the sharded service for fully non-blocking submits).
    linger_ms:
        When set, a background flusher drains the queue once its oldest
        request has waited this long — asynchronous traffic below the
        ``auto_flush_at`` threshold no longer waits for the next submit.
        Stop it with :meth:`close` (or use the service as a context
        manager).
    runtime:
        ``"compiled"`` (graph-free kernel plans, the default) or
        ``"autograd"`` (plain ``no_grad`` forwards).  ``None`` consults the
        ``REPRO_RUNTIME`` environment variable.
    precision:
        Execution-precision policy of the compiled plans: ``"float64"``
        (bit-identical to autograd, the default) or ``"float32"`` (~2x
        memory-bandwidth headroom; see ``docs/runtime.md``).  ``None``
        consults ``REPRO_RUNTIME_PRECISION``.  Synchronous queries accept a
        per-request ``precision=`` override — the float64 SLA path.
    threads:
        Island-parallel replay width of the compiled plans (integer or
        ``"auto"``; ``None`` consults ``REPRO_RUNTIME_THREADS``; 1 — the
        default — replays serially).
    artifact_dir:
        Directory (or shared :class:`~repro.runtime.ArtifactStore`) of
        durable plan artifacts: a restarted service rebuilds its plans from
        disk instead of re-tracing — the warm-start recipe in
        ``docs/serving_quickstart.md``.  Fresh compiles are written through.

    Example
    -------
    >>> service = ForecastService.from_checkpoint("dyhsl.npz")
    >>> forecast = service.forecast(window)          # (T', N), raw scale
    >>> service.ingest(latest_reading)               # streaming path
    >>> if service.buffer.ready:
    ...     forecast = service.forecast_latest()
    """

    def __init__(
        self,
        model: Module,
        scaler: Optional[object] = None,
        model_version: Optional[str] = None,
        cache_entries: int = 1024,
        max_batch_size: int = 128,
        auto_flush_at: Optional[int] = None,
        linger_ms: Optional[float] = None,
        runtime: Optional[str] = None,
        precision: Optional[str] = None,
        threads: Optional[int] = None,
        artifact_dir: Optional[Union[str, Path, ArtifactStore]] = None,
        quality: Union[None, bool, QualityConfig, SensorHealthMonitor] = None,
        quality_adjacency: Optional[np.ndarray] = None,
        resilience: Optional[ResilienceConfig] = None,
    ) -> None:
        super().__init__(
            model,
            scaler=scaler,
            model_version=model_version,
            cache_entries=cache_entries,
            runtime=runtime,
            precision=precision,
            threads=threads,
            artifact_dir=artifact_dir,
            quality=quality,
            quality_adjacency=quality_adjacency,
            resilience=resilience,
        )
        self._max_batch_size = max_batch_size
        self._auto_flush_at = auto_flush_at
        # The single worker's breaker (None unless configured).  Created
        # once and shared across generations, so a hot swap never resets
        # an open breaker's failure history.
        self._breaker = self.resilience.make_breaker(0)
        # Batcher counters of generations retired by hot swaps, folded into
        # stats() so a swap never resets the service's lifetime telemetry.
        self._retired_stats: List[BatcherStats] = []
        self._retired_retries = 0
        self._gen.engine, _, _ = self._build_engine(model, warm_sizes=())
        self.flusher: Optional[BackgroundFlusher] = (
            BackgroundFlusher([self.batcher], linger_ms=linger_ms)
            if linger_ms is not None
            else None
        )

    # ------------------------------------------------------------------
    # The live engines (one forward callable plus one micro-batcher per
    # generation): read through self._gen so a hot swap retargets every
    # serving path with one assignment.
    # ------------------------------------------------------------------
    @property
    def _forward(self):
        return self._gen.engine.forward

    @property
    def batcher(self) -> MicroBatcher:
        """The current generation's micro-batching queue."""
        return self._gen.engine.batcher

    def _build_engine(self, model: Module, warm_sizes=None) -> Tuple[_ServiceEngine, int, int]:
        # One forward callable for every serving path: the compiled runtime
        # returns plain arrays, the autograd model returns Tensors; both are
        # normalised in _predict / MicroBatcher.flush.
        forward = (
            CompiledModel(
                model,
                precision=self.precision,
                threads=self.threads,
                artifact_dir=self.artifact_store,
            )
            if self.runtime == "compiled"
            else model
        )
        reused = compiled = 0
        if self.runtime == "compiled" and warm_sizes != ():
            # Warm the new plans BEFORE the generation goes live: by default
            # the streaming batch of 1, or an explicit size ladder.  With
            # AOT artifacts in the store these are disk binds, not traces.
            sizes = [1] if warm_sizes is None else self._warm_up_sizes(warm_sizes, self._max_batch_size)
            for size in sizes:
                forward.compile_for(self._example_batch(size))
            info = forward.cache_info()
            reused, compiled = info.artifact_loads, info.compiles
        # Breaker + bounded-retry policy wraps the forward at the one point
        # every serving path funnels through (the batcher's forward_fn and
        # the direct _predict path read the same object).
        forward = ResilientForward(
            forward, retry=self.resilience.retry, breaker=self._breaker
        )
        batcher = MicroBatcher(
            forward, max_batch_size=self._max_batch_size, auto_flush_at=self._auto_flush_at
        )
        return _ServiceEngine(forward, batcher), reused, compiled

    def _retire_generation(self, old: _Generation) -> None:
        if old.engine is None:
            return
        try:
            # Requests still queued on the old generation complete on the
            # old weights (their handles lazily flush this same batcher, so
            # nothing is lost even if this drain races them).
            old.engine.batcher.flush()
        except BaseException:
            pass  # the affected handles carry the error
        self._retired_stats.append(old.engine.batcher.stats)
        self._retired_retries += getattr(old.engine.forward, "retries", 0)
        if self.flusher is not None:
            self.flusher.retarget([self.batcher])

    # ------------------------------------------------------------------
    def _predict(
        self,
        window: np.ndarray,
        horizon: int,
        precision: Optional[str] = None,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> np.ndarray:
        """One uncached forward of a normalised window -> raw-scale forecast.

        The compiled runtime takes the raw array (its entry cast owns the
        dtype handling, so a float32 streaming window is served zero-copy);
        the autograd fallback wraps in a float64 ``Tensor`` as ever.
        """
        gen = gen or self._gen
        forward = gen.engine.forward
        self._check_deadline(deadline, "predict")
        with no_grad():
            if self.runtime == "compiled":
                outputs = (
                    forward(window[None], precision=precision)
                    if precision is not None
                    else forward(window[None])
                )
            else:
                outputs = forward(Tensor(np.asarray(window, dtype=float)[None]))
        predictions = outputs.data if isinstance(outputs, Tensor) else np.asarray(outputs)
        return self._denormalise(predictions[0], gen=gen)[:horizon]

    def _forecast_normalised(
        self,
        window: np.ndarray,
        horizon: int,
        precision: Optional[str] = None,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> np.ndarray:
        """Serve one normalised window, consulting the cache around the model."""
        gen = gen or self._gen
        key = None
        if self.cache is not None:
            key = ForecastCache.make_key(self._key_version(precision, gen=gen), window, horizon)
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        try:
            forecast = self._predict(
                window, horizon, precision=precision, gen=gen, deadline=deadline
            )
        except ResilienceError as error:
            stale = self._serve_stale_instead(key, error)
            if stale is not None:
                return stale
            raise
        if self.cache is not None:
            self.cache.put(key, forecast)
        return forecast.copy()

    # ------------------------------------------------------------------
    def forecast(
        self,
        window: np.ndarray,
        horizon: Optional[int] = None,
        precision: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Forecast the next steps from one raw-scale window.

        Parameters
        ----------
        window:
            Raw observations of shape ``(T, N, F)`` (or ``(T, N)`` when the
            model consumes a single feature).
        horizon:
            Number of future steps wanted (defaults to the model's ``T'``).
        precision:
            Per-request override of the service's execution-precision
            policy (e.g. the float64 SLA path of a float32 deployment);
            served from its own cache namespace.
        deadline_ms:
            Per-request time budget; overrides the service-wide
            ``ResilienceConfig.default_deadline_ms``.  An expired budget
            fails the request with :class:`DeadlineExceeded` before the
            forward runs — or serves a :class:`StaleForecast` when
            ``serve_stale`` is enabled and a matching entry exists.

        Returns
        -------
        numpy.ndarray
            Forecast of shape ``(horizon, N)`` on the original flow scale.
        """
        horizon = self._check_horizon(horizon)
        precision = self._resolve_request_precision(precision)
        self._count_requests()
        deadline = self._entry_deadline(deadline_ms)
        gen = self._gen
        return self._forecast_normalised(
            self._normalise_window(window, gen=gen),
            horizon,
            precision=precision,
            gen=gen,
            deadline=deadline,
        )

    def forecast_node(
        self,
        window: np.ndarray,
        node: int,
        horizon: Optional[int] = None,
        precision: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Forecast a single sensor: returns shape ``(horizon,)``."""
        if not 0 <= node < self.config.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.config.num_nodes})")
        return self.forecast(
            window, horizon=horizon, precision=precision, deadline_ms=deadline_ms
        )[:, node]

    # ------------------------------------------------------------------
    # The compute hooks behind the shared forecast_many / submit skeleton
    # (see ForecastFrontend): misses coalesce into one batched forward
    # pass, chunked by the batcher's max_batch_size.
    #
    # One sizing note on submit(): the single-worker service has no
    # executor thread, so the auto_flush_at size-threshold flush runs on
    # the *submitting* thread — the threshold is deliberate backpressure,
    # bounding how much work a producer can enqueue without paying for
    # any of it.  Linger drains always run on the background flusher;
    # ShardedForecastService schedules both kinds of drain onto its
    # worker threads, so its submit never computes.
    # ------------------------------------------------------------------
    def _compute_misses(
        self,
        windows: List[np.ndarray],
        precision: Optional[str] = None,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[np.ndarray]:
        engine = (gen or self._gen).engine
        if precision is not None:
            # Per-request precision override: direct compiled forwards at
            # the requested policy, off the (single-policy) batch queue —
            # chunked like a flush so an override query keeps the same
            # peak-batch bound as the default path.
            size = engine.batcher.max_batch_size
            outputs: List[np.ndarray] = []
            for start in range(0, len(windows), size):
                self._check_deadline(deadline, "precision-chunk")
                chunk = np.stack(windows[start : start + size], axis=0)
                outputs.extend(engine.forward(chunk, precision=precision))
            return outputs
        pending = [engine.batcher.submit(window, deadline=deadline) for window in windows]
        engine.batcher.flush()
        return [handle.result() for handle in pending]

    def _submit_parts(
        self,
        window: np.ndarray,
        gen: Optional[_Generation] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[PendingForecast]:
        return [(gen or self._gen).engine.batcher.submit(window, deadline=deadline)]

    # ------------------------------------------------------------------
    # Streaming operation
    # ------------------------------------------------------------------
    def forecast_latest(
        self, horizon: Optional[int] = None, deadline_ms: Optional[float] = None
    ) -> np.ndarray:
        """Forecast from the most recent buffered window (streaming path).

        Cache lookups are keyed on the buffer's O(1) version token instead
        of a content hash of the window, so a repeated poll between stream
        advances costs one counter read plus one dictionary lookup — no
        window materialisation, no SHA-1 over ``T * N * F`` floats.
        """
        horizon = self._check_horizon(horizon)
        self._count_requests()
        deadline = self._entry_deadline(deadline_ms)
        if self.cache is None:
            # snapshot(also=...): lock-consistent copy, and the serving
            # generation is captured under that same lock — a racing ingest
            # OR hot swap lands entirely before or after it, never
            # mid-window (the swap publishes its generation inside
            # buffer.rescale, under this very lock).
            window, _, gen = self.buffer.snapshot(also=lambda: self._gen)
            return self._predict(window, horizon, gen=gen, deadline=deadline).copy()
        key = (self._key_version(), self.buffer.cache_token(), horizon)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        # Miss: copy the window atomically with its token AND the serving
        # generation (all taken under the buffer's mutation lock), so the
        # cache entry always describes exactly the data that was forecast —
        # and a swap that re-normalises the ring can never pair the old
        # window with the new model.
        window, token, gen = self.buffer.snapshot(also=lambda: self._gen)
        key = (self._key_version(gen=gen), token, horizon)
        try:
            forecast = self._predict(window, horizon, gen=gen, deadline=deadline)
        except ResilienceError as error:
            # Stale streaming fallback: the content index keys on the buffer
            # token, so an entry a *previous model version* computed for this
            # very window is still discoverable after a hot swap.
            stale = self._serve_stale_instead(key, error)
            if stale is not None:
                return stale
            raise
        self.cache.put(key, forecast)
        return forecast.copy()

    # ------------------------------------------------------------------
    def save_artifacts(self, path=None) -> List:
        """Persist every compiled plan as a durable artifact (AOT warm start).

        ``path`` may be a directory or an
        :class:`~repro.runtime.ArtifactStore`; omitted, the store attached
        at construction (``artifact_dir=``) is used.  A service restarted
        against the same store serves its first request with zero retraces.
        """
        if self.runtime != "compiled":
            raise ValueError("plan artifacts require the compiled runtime")
        return self._forward.save_artifacts(path)

    def warm_up(self, batch_sizes=None) -> List:
        """Build the batch-size ladder of plans before traffic arrives.

        A freshly started service pays its trace/fuse/schedule work — or,
        pointed at a saved artifact store (``artifact_dir=``), a few disk
        binds — here instead of on the first unlucky requests.  One plan
        per batch size is prepared; by default a doubling ladder up to the
        batcher's ``max_batch_size``.  Returns the
        :class:`~repro.runtime.PlanStats` of every warmed plan.  No-op
        under the autograd runtime, which has nothing to compile.
        """
        if self.runtime != "compiled":
            return []
        return [
            self._forward.compile_for(self._example_batch(size))
            for size in self._warm_up_sizes(batch_sizes, self.batcher.max_batch_size)
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the background flusher and drain the queue; idempotent.

        With or without a flusher, no handle is left pending after
        ``close()`` (a failing final drain is carried by the affected
        handles, as always).  Synchronous queries keep working after —
        only the timed drains stop.
        """
        if self.flusher is not None:
            self.flusher.close(drain=True)
        else:
            try:
                self.batcher.flush()
            except BaseException:
                pass  # the affected handles carry the error

    # ------------------------------------------------------------------
    # health() hooks (see ForecastFrontend.health)
    # ------------------------------------------------------------------
    def _health_shards(self) -> Tuple[ShardHealth, ...]:
        return (
            ShardHealth(
                shard=0,
                breaker=self._breaker.snapshot() if self._breaker is not None else None,
                worker_pid=None,
                worker_alive=None,
                heartbeat_age_s=None,
                respawns=0,
                hung_detections=0,
            ),
        )

    def _health_lane_depths(self) -> dict:
        return {"bulk": self.batcher.pending}

    def _health_counters(self) -> Tuple[int, int]:
        batcher = _merge_batcher_stats(self._retired_stats + [self.batcher.stats])
        retries = self._retired_retries + getattr(self._forward, "retries", 0)
        with self._requests_lock:
            expired = self._expired_direct + batcher.expired_requests
        return expired, retries

    def stats(self) -> ServiceStats:
        """Operational counters: requests, cache hit rate, batch amortisation."""
        cache_stats = (
            self.cache.stats()
            if self.cache is not None
            else CacheStats(hits=0, misses=0, evictions=0, size=0, max_entries=0)
        )
        return ServiceStats(
            model_version=self.model_version,
            requests=self._requests,
            cache=cache_stats,
            batcher=_merge_batcher_stats(self._retired_stats + [self.batcher.stats]),
            runtime=self.runtime,
            flusher=self.flusher.stats() if self.flusher is not None else None,
            precision=self.precision,
            threads=self.threads,
            quality=self.buffer.quality_stats(),
            swaps=self._swaps,
        )
