"""The forecast-serving front end.

:class:`ForecastService` is the piece a production deployment talks to.  It
owns a trained :class:`~repro.core.DyHSL` (loaded from a self-describing
checkpoint or passed in), the fitted training scaler, a rolling observation
buffer for streaming ingestion, a micro-batching queue and an LRU forecast
cache, and exposes raw-scale queries:

* :meth:`forecast` — one raw window in, one ``(T', N)`` forecast out;
* :meth:`forecast_many` — a batch of windows, answered with cache lookups
  plus a single coalesced forward for the misses;
* :meth:`ingest` / :meth:`forecast_latest` — streaming operation: push
  detector readings as they arrive, forecast from the rolling buffer.

All inputs and outputs are on the *original* flow scale (vehicles per five
minutes); normalisation is an internal concern.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..nn import Module
from ..tensor import Tensor, no_grad
from .batching import BatcherStats, MicroBatcher
from .buffer import RollingWindowBuffer
from .cache import CacheStats, ForecastCache

__all__ = ["ServiceStats", "ForecastService"]


def _weights_fingerprint(model: Module) -> str:
    """Short content hash of the model weights, used as the model version."""
    digest = hashlib.sha1()
    for name, value in sorted(model.state_dict().items()):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class ServiceStats:
    """Operational counters of a running service."""

    model_version: str
    requests: int
    cache: CacheStats
    batcher: BatcherStats


class ForecastService:
    """Serve per-node traffic forecasts from a trained model.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.DyHSL` (any module exposing a
        ``config`` with ``input_length`` / ``output_length`` / ``num_nodes``
        / ``input_dim`` works).  The service switches it to evaluation mode.
    scaler:
        The scaler fitted on the training flow; ``None`` serves on the
        normalised scale directly.
    model_version:
        Cache namespace for this deployment; defaults to a fingerprint of
        the weights so a redeploy can never serve stale cached forecasts.
    cache_entries:
        LRU capacity (0 disables caching).
    max_batch_size:
        Largest coalesced forward pass of the micro-batcher.

    Example
    -------
    >>> service = ForecastService.from_checkpoint("dyhsl.npz")
    >>> forecast = service.forecast(window)          # (T', N), raw scale
    >>> service.ingest(latest_reading)               # streaming path
    >>> if service.buffer.ready:
    ...     forecast = service.forecast_latest()
    """

    def __init__(
        self,
        model: Module,
        scaler: Optional[object] = None,
        model_version: Optional[str] = None,
        cache_entries: int = 1024,
        max_batch_size: int = 128,
    ) -> None:
        config = getattr(model, "config", None)
        if config is None:
            raise ValueError("model must expose a config attribute")
        model.eval()
        self.model = model
        self.config = config
        self.scaler = scaler
        self.model_version = model_version or _weights_fingerprint(model)
        self.cache: Optional[ForecastCache] = (
            ForecastCache(max_entries=cache_entries) if cache_entries > 0 else None
        )
        self.batcher = MicroBatcher(model, max_batch_size=max_batch_size)
        self.buffer = RollingWindowBuffer(
            input_length=config.input_length,
            num_nodes=config.num_nodes,
            num_features=config.input_dim,
            scaler=scaler,
        )
        self._requests = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, path: Union[str, Path], **kwargs) -> "ForecastService":
        """Build a service from a :func:`~repro.training.save_model_checkpoint` file."""
        from ..training.checkpoints import load_model_checkpoint

        loaded = load_model_checkpoint(path)
        version = kwargs.pop("model_version", None)
        if version is None:
            version = loaded.metadata.get("model_version")
        return cls(loaded.model, scaler=loaded.scaler, model_version=version, **kwargs)

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Forecast horizon ``T'`` of the served model."""
        return self.config.output_length

    def _normalise_window(self, window: np.ndarray) -> np.ndarray:
        window = np.asarray(window, dtype=float)
        if window.ndim == 2 and self.config.input_dim == 1:
            window = window[:, :, None]
        expected = (self.config.input_length, self.config.num_nodes, self.config.input_dim)
        if window.shape != expected:
            raise ValueError(f"window shape {window.shape} does not match model input {expected}")
        if self.scaler is not None:
            window = window.copy()
            window[..., 0] = self.scaler.transform(window[..., 0])
        return window

    def _denormalise(self, predictions: np.ndarray) -> np.ndarray:
        if self.scaler is not None:
            return self.scaler.inverse_transform(predictions)
        return predictions

    def _forecast_normalised(self, window: np.ndarray, horizon: int) -> np.ndarray:
        """Serve one normalised window, consulting the cache around the model."""
        key = None
        if self.cache is not None:
            key = ForecastCache.make_key(self.model_version, window, horizon)
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        with no_grad():
            predictions = self.model(Tensor(window[None]))
        forecast = self._denormalise(predictions.data[0])[:horizon]
        if self.cache is not None:
            self.cache.put(key, forecast)
        return forecast.copy()

    # ------------------------------------------------------------------
    def forecast(self, window: np.ndarray, horizon: Optional[int] = None) -> np.ndarray:
        """Forecast the next steps from one raw-scale window.

        Parameters
        ----------
        window:
            Raw observations of shape ``(T, N, F)`` (or ``(T, N)`` when the
            model consumes a single feature).
        horizon:
            Number of future steps wanted (defaults to the model's ``T'``).

        Returns
        -------
        numpy.ndarray
            Forecast of shape ``(horizon, N)`` on the original flow scale.
        """
        horizon = self._check_horizon(horizon)
        self._requests += 1
        return self._forecast_normalised(self._normalise_window(window), horizon)

    def forecast_node(self, window: np.ndarray, node: int, horizon: Optional[int] = None) -> np.ndarray:
        """Forecast a single sensor: returns shape ``(horizon,)``."""
        if not 0 <= node < self.config.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.config.num_nodes})")
        return self.forecast(window, horizon=horizon)[:, node]

    def forecast_many(self, windows: np.ndarray, horizon: Optional[int] = None) -> np.ndarray:
        """Forecast a batch of raw windows with caching plus micro-batching.

        Cache hits are answered directly; misses are deduplicated (identical
        in-flight windows are computed once) and coalesced into a single
        batched forward pass (chunked by the batcher's ``max_batch_size``),
        then inserted into the cache.
        """
        horizon = self._check_horizon(horizon)
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 3 and self.config.input_dim == 1:
            windows = windows[..., None]
        if windows.ndim != 4:
            raise ValueError(f"windows must have shape (B, T, N, F); got {windows.shape}")
        self._requests += windows.shape[0]

        normalised = [self._normalise_window(window) for window in windows]
        results: List[Optional[np.ndarray]] = [None] * len(normalised)
        # Requests that miss the cache, grouped by key so identical in-flight
        # windows share one forward slot.
        miss_groups: "dict[tuple, List[int]]" = {}
        for index, window in enumerate(normalised):
            key = ForecastCache.make_key(self.model_version, window, horizon)
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            miss_groups.setdefault(key, []).append(index)

        if miss_groups:
            pending = {
                key: self.batcher.submit(normalised[group[0]])
                for key, group in miss_groups.items()
            }
            self.batcher.flush()
            for key, group in miss_groups.items():
                forecast = self._denormalise(pending[key].result())[:horizon]
                if self.cache is not None:
                    self.cache.put(key, forecast)
                results[group[0]] = forecast
                for index in group[1:]:
                    results[index] = forecast.copy()
        return np.stack(results, axis=0)

    # ------------------------------------------------------------------
    # Streaming operation
    # ------------------------------------------------------------------
    def ingest(self, observation: np.ndarray) -> None:
        """Push one raw observation step ``(N, F)`` into the rolling buffer."""
        self.buffer.ingest(observation)

    def forecast_latest(self, horizon: Optional[int] = None) -> np.ndarray:
        """Forecast from the most recent buffered window (streaming path)."""
        horizon = self._check_horizon(horizon)
        self._requests += 1
        # Copy: the buffer view aliases the live ring, and a concurrent
        # ingest between cache-key hashing and the forward would otherwise
        # poison the cache with a forecast of different data than the hash.
        window = np.array(self.buffer.window())
        return self._forecast_normalised(window, horizon)

    # ------------------------------------------------------------------
    def _check_horizon(self, horizon: Optional[int]) -> int:
        if horizon is None:
            return self.config.output_length
        if not 1 <= horizon <= self.config.output_length:
            raise ValueError(
                f"horizon must be in [1, {self.config.output_length}]; got {horizon}"
            )
        return int(horizon)

    def stats(self) -> ServiceStats:
        """Operational counters: requests, cache hit rate, batch amortisation."""
        cache_stats = (
            self.cache.stats()
            if self.cache is not None
            else CacheStats(hits=0, misses=0, evictions=0, size=0, max_entries=0)
        )
        return ServiceStats(
            model_version=self.model_version,
            requests=self._requests,
            cache=cache_stats,
            batcher=self.batcher.stats,
        )
