"""Rolling observation buffer for streaming inference.

A live deployment does not receive ready-made ``(T, N, F)`` windows — it
receives one detector reading per sensor per five-minute step (possibly
late and out of order within the step).  The :class:`RollingWindowBuffer`
turns that stream into model-ready input:

* observations are pushed per step (all sensors) or per node (one sensor);
* the flow feature is z-score normalised *on ingest* with the training
  scaler, so materialising a window is a pure O(1) view of the underlying
  double-written ring (see :class:`repro.data.StreamingWindows`) instead of
  a normalise-and-slice pass per request;
* every mutation bumps a cheap version token
  (:meth:`RollingWindowBuffer.cache_token`), letting the serving cache key
  serve-from-stream lookups on a counter instead of re-hashing the full
  window content on every advance;
* the complete buffer state round-trips through :meth:`save` /
  :meth:`restore`, so a restarted service resumes exactly where it stopped
  instead of sitting through a ``T``-step cold window (warm start).
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..data.windows import StreamingWindows
from .quality import QualityStats, SensorHealthMonitor

__all__ = ["RollingWindowBuffer"]


def _same_scaler(a: Optional[object], b: Optional[object]) -> bool:
    """Whether two scalers would normalise a stream identically."""
    if a is None or b is None:
        return a is b
    if type(a) is not type(b):
        return False
    try:
        return a.to_dict() == b.to_dict()
    except AttributeError:
        return a is b


class RollingWindowBuffer:
    """Maintain the latest normalised observation window of a sensor network.

    Parameters
    ----------
    input_length:
        Window length ``T`` expected by the model.
    num_nodes / num_features:
        Sensor count ``N`` and raw feature count ``F``.
    scaler:
        Fitted scaler used to normalise the flow feature (channel 0) on
        ingest; ``None`` stores observations unnormalised.
    target_feature:
        Which feature channel the scaler applies to (flow = 0).
    dtype:
        Element type of the underlying ring (default float64).  A float32
        serving deployment can keep its streaming buffer at single
        precision, so the materialised window enters the compiled float32
        plan without being bounced through float64 on the hot path.

    Example
    -------
    >>> buffer = RollingWindowBuffer(12, num_nodes=10, scaler=data.scaler)
    >>> for reading in live_feed:          # (10,) raw flows per 5-minute step
    ...     buffer.ingest(reading)
    >>> model(Tensor(buffer.window()[None]))
    """

    def __init__(
        self,
        input_length: int,
        num_nodes: int,
        num_features: int = 1,
        scaler: Optional[object] = None,
        target_feature: int = 0,
        dtype=float,
        quality: Optional[SensorHealthMonitor] = None,
    ) -> None:
        if not 0 <= target_feature < num_features:
            raise ValueError(f"target_feature {target_feature} out of range for F={num_features}")
        if quality is not None and (
            quality.num_nodes != num_nodes or quality.num_features != num_features
        ):
            raise ValueError(
                f"quality monitor tracks ({quality.num_nodes} nodes, "
                f"{quality.num_features} features); this buffer holds "
                f"({num_nodes}, {num_features})"
            )
        self.scaler = scaler
        self.target_feature = target_feature
        self.quality = quality
        self._stream = StreamingWindows(input_length, num_nodes, num_features, dtype=dtype)
        # Per-node imputation marks, pushed in lockstep with the value ring:
        # a window is "degraded" when any of its steps carries an imputed
        # reading, and the cache token says so (see _token_locked).
        self._imputed = StreamingWindows(input_length, num_nodes, 1, dtype=np.bool_)
        self._imputed_total = 0
        # Cache-versioning counters: corrections counts late per-node
        # updates, epoch increments on reset so recycled step counts can
        # never alias an earlier stream's content, and the (process-local,
        # never persisted) restore generation keeps tokens from two restored
        # snapshots with equal counters distinct within one process.  The
        # lock makes every mutation atomic with its counter bump, so a
        # snapshot's (window, token) pair is always consistent — a token can
        # never describe data it did not see.
        self._corrections = 0
        self._epoch = 0
        self._restores = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def input_length(self) -> int:
        """Window length ``T``."""
        return self._stream.input_length

    @property
    def num_nodes(self) -> int:
        """Sensor count ``N``."""
        return self._stream.num_nodes

    @property
    def num_features(self) -> int:
        """Feature count ``F``."""
        return self._stream.num_features

    @property
    def steps_ingested(self) -> int:
        """Total observation steps ingested."""
        return self._stream.steps_ingested

    @property
    def ready(self) -> bool:
        """Whether a full window is available."""
        return self._stream.ready

    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """Element type of the ring (and every window/snapshot it yields)."""
        return self._stream.dtype

    def _normalise_step(self, step: np.ndarray) -> np.ndarray:
        # Normalise at the ring's own dtype: a float32 buffer must not pay
        # a float64 round trip per ingested step (the dtype-audit rule —
        # float32 inputs are never silently upcast on the hot path).
        step = np.asarray(step, dtype=self._stream.dtype)
        if step.ndim == 1 and self.num_features == 1:
            step = step[:, None]
        if self.scaler is not None:
            step = step.copy()
            step[:, self.target_feature] = self.scaler.transform(step[:, self.target_feature])
        return step

    def ingest(self, observation: np.ndarray) -> None:
        """Ingest one raw observation step ``(N, F)`` (or ``(N,)`` when F=1).

        With a quality monitor attached (``quality=`` at construction), the
        step is first classified and flagged readings are imputed, so broken
        detectors degrade the forecast gracefully instead of poisoning the
        ring.  Without one, non-finite readings are rejected with a
        ``ValueError`` — they must never reach the normalised ring.
        """
        if self.quality is not None:
            report = self.quality.observe(observation)
            step = self._normalise_step(report.clean)
            mask = report.flagged[:, None]
            imputed = report.imputed
        else:
            probe = np.asarray(observation, dtype=float)
            if not np.isfinite(probe).all():
                raise ValueError(
                    "observation contains non-finite readings; attach a "
                    "SensorHealthMonitor (quality= at buffer/service "
                    "construction) to impute broken sensors, or clean the "
                    "stream upstream"
                )
            step = self._normalise_step(observation)
            mask = np.zeros((self.num_nodes, 1), dtype=bool)
            imputed = 0
        with self._lock:
            self._stream.push(step)
            self._imputed.push(mask)
            self._imputed_total += imputed

    def ingest_signal(self, signal: np.ndarray) -> None:
        """Ingest a raw ``(steps, N, F)`` signal chunk step by step.

        ``(steps, N)`` is accepted when the buffer holds a single feature,
        mirroring the per-step shapes :meth:`ingest` takes.  Each step goes
        through the same quality/validation path as :meth:`ingest`.
        """
        signal = np.asarray(signal, dtype=float)
        if signal.ndim == 2 and self.num_features == 1:
            signal = signal[:, :, None]
        if signal.ndim != 3:
            raise ValueError(f"signal must have shape (steps, N, F); got {signal.shape}")
        if self.quality is None and not np.isfinite(signal).all():
            # Reject the whole chunk up front so a poisoned step cannot leave
            # the ring partially advanced.
            raise ValueError(
                "signal chunk contains non-finite readings; attach a "
                "SensorHealthMonitor (quality=) to impute broken sensors"
            )
        for step in signal:
            self.ingest(step)

    def ingest_node(self, node: int, values: np.ndarray) -> None:
        """Correct the latest step of one node with a late-arriving reading."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        values = np.asarray(values, dtype=self._stream.dtype).reshape(self.num_features)
        if not np.isfinite(np.asarray(values, dtype=float)).all():
            raise ValueError(
                f"correction for node {node} contains non-finite values; "
                "late corrections must carry real readings"
            )
        if self.quality is not None:
            # A correction is ground truth from the sensor: fold it into the
            # monitor's hold state so later imputations use it.
            self.quality.observe_correction(node, values)
        if self.scaler is not None:
            values = values.copy()
            values[self.target_feature] = float(
                self.scaler.transform(np.asarray(values[self.target_feature]))
            )
        with self._lock:
            self._stream.update_node(node, values)
            # The corrected reading is real data: clear the imputation mark.
            self._imputed.update_node(node, np.array([False]))
            self._corrections += 1

    # ------------------------------------------------------------------
    def window(self) -> np.ndarray:
        """Latest model-ready normalised window ``(T, N, F)`` (O(1) view)."""
        return self._stream.latest()

    def reset(self) -> None:
        """Forget all ingested observations (invalidates cache tokens)."""
        with self._lock:
            self._stream.reset()
            self._imputed.reset()
            self._imputed_total = 0
            self._corrections = 0
            self._epoch += 1

    # ------------------------------------------------------------------
    # Cache versioning
    # ------------------------------------------------------------------
    def _window_imputed_locked(self) -> int:
        if not self._imputed.ready:
            return 0
        return int(self._imputed.latest().sum())

    def _token_locked(self) -> str:
        token = (
            f"stream:{self._epoch}:{self._restores}:"
            f"{self._stream.steps_ingested}:{self._corrections}"
        )
        # Degraded windows carry their imputation count in the token, so a
        # forecast computed from imputed data can never be served later as
        # if it came from a clean window with the same counters.
        degraded = self._window_imputed_locked()
        if degraded:
            token = f"{token}:deg{degraded}"
        return token

    def cache_token(self) -> str:
        """O(1) identity token of the current buffer content.

        Changes whenever the content can change (step ingest, late per-node
        correction, reset, state restore), so a forecast cache can use it in
        place of a content hash of the full window.  The ``stream:`` prefix
        keeps tokens disjoint from the hex digests of
        :func:`repro.serving.cache.hash_window` keys.
        """
        with self._lock:
            return self._token_locked()

    def snapshot(self, also: Optional[Callable[[], object]] = None) -> Tuple:
        """Copy the latest window together with its consistent cache token.

        The copy and the token read happen under the buffer's mutation
        lock, so the token can never describe different data than the
        returned window — a concurrent ingest lands entirely before or
        entirely after the snapshot.

        ``also`` is an optional callable evaluated **under the same lock**;
        its result is returned as a third tuple element.  The hot-swap path
        uses it to capture the serving generation atomically with the
        window: :meth:`rescale` publishes a new generation inside this same
        lock, so a snapshot can never pair an old-scaler window with the
        new model (or vice versa).
        """
        with self._lock:
            window = np.array(self._stream.latest())
            token = self._token_locked()
            if also is None:
                return window, token
            return window, token, also()

    # ------------------------------------------------------------------
    # Hot-swap support
    # ------------------------------------------------------------------
    def rescale(
        self,
        scaler: Optional[object],
        commit: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Re-normalise the ring under a new scaler (hot checkpoint swap).

        The ring stores *normalised* observations, so swapping in a
        checkpoint whose scaler was fitted on different data would silently
        mis-scale every subsequent forecast.  This denormalises the stored
        target channel with the old scaler and renormalises it with the new
        one, in place, under the buffer lock.  ``commit`` (if given) runs
        under that same lock after the ring is consistent — the swap path
        passes the generation-publication callback here, which is what makes
        "new scaler" and "new model" a single atomic event for concurrent
        :meth:`snapshot` readers.

        Returns ``True`` when the ring content actually changed (and cache
        tokens were invalidated), ``False`` when the scalers are equivalent.
        """
        with self._lock:
            changed = not _same_scaler(self.scaler, scaler)
            if changed:
                store = self._stream._store
                channel = store[:, :, self.target_feature]
                if self.scaler is not None:
                    channel = np.asarray(
                        self.scaler.inverse_transform(channel), dtype=store.dtype
                    )
                if scaler is not None:
                    channel = np.asarray(scaler.transform(channel), dtype=store.dtype)
                store[:, :, self.target_feature] = channel
                self.scaler = scaler
                # Content changed at unchanged counters: only an epoch bump
                # keeps pre-rescale tokens from describing the new ring.
                self._epoch += 1
            if commit is not None:
                commit()
            return changed

    # ------------------------------------------------------------------
    # Quality reporting
    # ------------------------------------------------------------------
    def window_quality(self) -> Dict[str, object]:
        """Imputation marks of the current window (degraded-forecast metadata).

        Returns a dict with ``imputed_values`` (marks inside the current
        window), ``degraded`` (whether any are set), ``total_imputed``
        (cumulative over the stream's lifetime) and ``mask`` — a ``(T, N)``
        boolean copy of the marks, or ``None`` before the first full window.
        """
        with self._lock:
            mask = None
            if self._imputed.ready:
                mask = np.array(self._imputed.latest())[:, :, 0]
            count = int(mask.sum()) if mask is not None else 0
            return {
                "imputed_values": count,
                "degraded": bool(count),
                "total_imputed": int(self._imputed_total),
                "mask": mask,
            }

    def quality_stats(self) -> Optional[QualityStats]:
        """Monitor counters, composed with the current window's degradation."""
        if self.quality is None:
            return None
        stats = self.quality.stats()
        with self._lock:
            degraded = self._window_imputed_locked()
        return dataclasses.replace(
            stats, window_imputed_values=degraded, window_degraded=bool(degraded)
        )

    # ------------------------------------------------------------------
    # Warm-start persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Complete buffer state (normalised ring, counters) for checkpointing.

        The ring stores *normalised* observations: a snapshot is only
        meaningful next to the checkpoint whose scaler filled it.
        """
        with self._lock:
            state = self._stream.state_dict()
            state["corrections"] = int(self._corrections)
            state["epoch"] = int(self._epoch)
            state["imputed_store"] = self._imputed.state_dict()["store"]
            state["imputed_total"] = int(self._imputed_total)
        if self.quality is not None:
            # Monitor state rides along under a "quality." prefix so health
            # states and detector histories survive a warm restart with the
            # window itself.
            for key, value in self.quality.state_dict().items():
                state[f"quality.{key}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot into this buffer.

        The snapshot's ring must match the live ring in dtype and shape
        (see :meth:`StreamingWindows.load_state_dict`) — restoring a
        float64 snapshot into a float32 serving buffer raises instead of
        silently changing the deployment's precision.
        """
        quality_state = {
            key[len("quality.") :]: value
            for key, value in state.items()
            if key.startswith("quality.")
        }
        with self._lock:
            self._stream.load_state_dict({"store": state["store"], "count": state["count"]})
            count = int(state["count"])
            if "imputed_store" in state:
                self._imputed.load_state_dict(
                    {"store": np.asarray(state["imputed_store"], dtype=bool), "count": count}
                )
            else:
                # Pre-quality snapshot: no marks were recorded, treat the
                # restored window as clean but keep the rings in lockstep.
                self._imputed.reset()
                self._imputed.load_state_dict(
                    {
                        "store": np.zeros(
                            (2 * self.input_length, self.num_nodes, 1), dtype=bool
                        ),
                        "count": count,
                    }
                )
            self._imputed_total = int(state.get("imputed_total", 0))
            self._corrections = int(state.get("corrections", 0))
            self._epoch = int(state.get("epoch", 0))
            self._restores += 1
        if self.quality is not None:
            if quality_state:
                self.quality.load_state_dict(quality_state)
            else:
                # Snapshot carries no monitor state: start the health
                # machinery fresh rather than trusting stale streaks.
                self.quality.reset()

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the buffer state as an ``.npz`` sidecar next to a checkpoint.

        A missing ``.npz`` suffix is appended (never substituted —
        ``model.buffer`` becomes ``model.buffer.npz``, so a sidecar can't
        silently clobber ``model.npz``); the resolved path is returned.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        state = self.state_dict()
        payload = {
            "store": state["store"],
            "count": np.int64(state["count"]),
            "corrections": np.int64(state["corrections"]),
            "epoch": np.int64(state["epoch"]),
            "imputed_store": state["imputed_store"],
            "imputed_total": np.int64(state["imputed_total"]),
            "dims": np.array(
                [self.input_length, self.num_nodes, self.num_features], dtype=np.int64
            ),
            # The ring dtype, recorded explicitly so restore() can reject a
            # precision mismatch with a clear message before touching the
            # live ring (the store array also carries it, but only
            # implicitly).
            "dtype": np.array(str(self.dtype)),
        }
        for key, value in state.items():
            if key.startswith("quality."):
                payload[key] = value
        np.savez(path, **payload)
        return path

    def restore(self, path: Union[str, Path]) -> None:
        """Reload a :meth:`save` snapshot; the service resumes without a cold window."""
        path = Path(path)
        if path.suffix != ".npz":
            # Mirror save()'s suffix normalisation so the exact path handed
            # to save() round-trips through restore().
            path = path.with_name(path.name + ".npz")
        if not path.exists():
            raise FileNotFoundError(f"buffer state {path} does not exist")
        with np.load(path, allow_pickle=False) as archive:
            dims = tuple(int(d) for d in archive["dims"])
            expected = (self.input_length, self.num_nodes, self.num_features)
            if dims != expected:
                raise ValueError(
                    f"buffer state dimensions {dims} do not match this buffer's {expected}"
                )
            stored_dtype = np.dtype(
                archive["dtype"].item() if "dtype" in archive.files else archive["store"].dtype
            )
            if stored_dtype != self.dtype:
                raise ValueError(
                    f"buffer state {path} was saved from a {stored_dtype} ring; this "
                    f"buffer serves at {self.dtype} — restoring would silently change "
                    "the deployment's precision.  Save a snapshot at the serving "
                    f"precision or construct the buffer with dtype={stored_dtype}."
                )
            state: Dict[str, object] = {
                "store": archive["store"],
                "count": int(archive["count"]),
                "corrections": int(archive["corrections"]),
                "epoch": int(archive["epoch"]),
            }
            if "imputed_store" in archive.files:
                state["imputed_store"] = archive["imputed_store"]
                state["imputed_total"] = int(archive["imputed_total"])
            for key in archive.files:
                if key.startswith("quality."):
                    state[key] = archive[key]
            self.load_state_dict(state)
