"""Rolling observation buffer for streaming inference.

A live deployment does not receive ready-made ``(T, N, F)`` windows — it
receives one detector reading per sensor per five-minute step (possibly
late and out of order within the step).  The :class:`RollingWindowBuffer`
turns that stream into model-ready input:

* observations are pushed per step (all sensors) or per node (one sensor);
* the flow feature is z-score normalised *on ingest* with the training
  scaler, so materialising a window is a pure O(1) view of the underlying
  double-written ring (see :class:`repro.data.StreamingWindows`) instead of
  a normalise-and-slice pass per request.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.windows import StreamingWindows

__all__ = ["RollingWindowBuffer"]


class RollingWindowBuffer:
    """Maintain the latest normalised observation window of a sensor network.

    Parameters
    ----------
    input_length:
        Window length ``T`` expected by the model.
    num_nodes / num_features:
        Sensor count ``N`` and raw feature count ``F``.
    scaler:
        Fitted scaler used to normalise the flow feature (channel 0) on
        ingest; ``None`` stores observations unnormalised.
    target_feature:
        Which feature channel the scaler applies to (flow = 0).

    Example
    -------
    >>> buffer = RollingWindowBuffer(12, num_nodes=10, scaler=data.scaler)
    >>> for reading in live_feed:          # (10,) raw flows per 5-minute step
    ...     buffer.ingest(reading)
    >>> model(Tensor(buffer.window()[None]))
    """

    def __init__(
        self,
        input_length: int,
        num_nodes: int,
        num_features: int = 1,
        scaler: Optional[object] = None,
        target_feature: int = 0,
    ) -> None:
        if not 0 <= target_feature < num_features:
            raise ValueError(f"target_feature {target_feature} out of range for F={num_features}")
        self.scaler = scaler
        self.target_feature = target_feature
        self._stream = StreamingWindows(input_length, num_nodes, num_features)

    # ------------------------------------------------------------------
    @property
    def input_length(self) -> int:
        """Window length ``T``."""
        return self._stream.input_length

    @property
    def num_nodes(self) -> int:
        """Sensor count ``N``."""
        return self._stream.num_nodes

    @property
    def num_features(self) -> int:
        """Feature count ``F``."""
        return self._stream.num_features

    @property
    def steps_ingested(self) -> int:
        """Total observation steps ingested."""
        return self._stream.steps_ingested

    @property
    def ready(self) -> bool:
        """Whether a full window is available."""
        return self._stream.ready

    # ------------------------------------------------------------------
    def _normalise_step(self, step: np.ndarray) -> np.ndarray:
        step = np.asarray(step, dtype=float)
        if step.ndim == 1 and self.num_features == 1:
            step = step[:, None]
        if self.scaler is not None:
            step = step.copy()
            step[:, self.target_feature] = self.scaler.transform(step[:, self.target_feature])
        return step

    def ingest(self, observation: np.ndarray) -> None:
        """Ingest one raw observation step ``(N, F)`` (or ``(N,)`` when F=1)."""
        self._stream.push(self._normalise_step(observation))

    def ingest_signal(self, signal: np.ndarray) -> None:
        """Ingest a raw ``(steps, N, F)`` signal chunk step by step."""
        signal = np.asarray(signal, dtype=float)
        if signal.ndim != 3:
            raise ValueError(f"signal must have shape (steps, N, F); got {signal.shape}")
        for step in signal:
            self.ingest(step)

    def ingest_node(self, node: int, values: np.ndarray) -> None:
        """Correct the latest step of one node with a late-arriving reading."""
        values = np.asarray(values, dtype=float).reshape(self.num_features)
        if self.scaler is not None:
            values = values.copy()
            values[self.target_feature] = float(
                self.scaler.transform(np.asarray(values[self.target_feature]))
            )
        self._stream.update_node(node, values)

    # ------------------------------------------------------------------
    def window(self) -> np.ndarray:
        """Latest model-ready normalised window ``(T, N, F)`` (O(1) view)."""
        return self._stream.latest()

    def reset(self) -> None:
        """Forget all ingested observations."""
        self._stream.reset()
