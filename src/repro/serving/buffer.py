"""Rolling observation buffer for streaming inference.

A live deployment does not receive ready-made ``(T, N, F)`` windows — it
receives one detector reading per sensor per five-minute step (possibly
late and out of order within the step).  The :class:`RollingWindowBuffer`
turns that stream into model-ready input:

* observations are pushed per step (all sensors) or per node (one sensor);
* the flow feature is z-score normalised *on ingest* with the training
  scaler, so materialising a window is a pure O(1) view of the underlying
  double-written ring (see :class:`repro.data.StreamingWindows`) instead of
  a normalise-and-slice pass per request;
* every mutation bumps a cheap version token
  (:meth:`RollingWindowBuffer.cache_token`), letting the serving cache key
  serve-from-stream lookups on a counter instead of re-hashing the full
  window content on every advance;
* the complete buffer state round-trips through :meth:`save` /
  :meth:`restore`, so a restarted service resumes exactly where it stopped
  instead of sitting through a ``T``-step cold window (warm start).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..data.windows import StreamingWindows

__all__ = ["RollingWindowBuffer"]


class RollingWindowBuffer:
    """Maintain the latest normalised observation window of a sensor network.

    Parameters
    ----------
    input_length:
        Window length ``T`` expected by the model.
    num_nodes / num_features:
        Sensor count ``N`` and raw feature count ``F``.
    scaler:
        Fitted scaler used to normalise the flow feature (channel 0) on
        ingest; ``None`` stores observations unnormalised.
    target_feature:
        Which feature channel the scaler applies to (flow = 0).
    dtype:
        Element type of the underlying ring (default float64).  A float32
        serving deployment can keep its streaming buffer at single
        precision, so the materialised window enters the compiled float32
        plan without being bounced through float64 on the hot path.

    Example
    -------
    >>> buffer = RollingWindowBuffer(12, num_nodes=10, scaler=data.scaler)
    >>> for reading in live_feed:          # (10,) raw flows per 5-minute step
    ...     buffer.ingest(reading)
    >>> model(Tensor(buffer.window()[None]))
    """

    def __init__(
        self,
        input_length: int,
        num_nodes: int,
        num_features: int = 1,
        scaler: Optional[object] = None,
        target_feature: int = 0,
        dtype=float,
    ) -> None:
        if not 0 <= target_feature < num_features:
            raise ValueError(f"target_feature {target_feature} out of range for F={num_features}")
        self.scaler = scaler
        self.target_feature = target_feature
        self._stream = StreamingWindows(input_length, num_nodes, num_features, dtype=dtype)
        # Cache-versioning counters: corrections counts late per-node
        # updates, epoch increments on reset so recycled step counts can
        # never alias an earlier stream's content, and the (process-local,
        # never persisted) restore generation keeps tokens from two restored
        # snapshots with equal counters distinct within one process.  The
        # lock makes every mutation atomic with its counter bump, so a
        # snapshot's (window, token) pair is always consistent — a token can
        # never describe data it did not see.
        self._corrections = 0
        self._epoch = 0
        self._restores = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def input_length(self) -> int:
        """Window length ``T``."""
        return self._stream.input_length

    @property
    def num_nodes(self) -> int:
        """Sensor count ``N``."""
        return self._stream.num_nodes

    @property
    def num_features(self) -> int:
        """Feature count ``F``."""
        return self._stream.num_features

    @property
    def steps_ingested(self) -> int:
        """Total observation steps ingested."""
        return self._stream.steps_ingested

    @property
    def ready(self) -> bool:
        """Whether a full window is available."""
        return self._stream.ready

    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """Element type of the ring (and every window/snapshot it yields)."""
        return self._stream.dtype

    def _normalise_step(self, step: np.ndarray) -> np.ndarray:
        # Normalise at the ring's own dtype: a float32 buffer must not pay
        # a float64 round trip per ingested step (the dtype-audit rule —
        # float32 inputs are never silently upcast on the hot path).
        step = np.asarray(step, dtype=self._stream.dtype)
        if step.ndim == 1 and self.num_features == 1:
            step = step[:, None]
        if self.scaler is not None:
            step = step.copy()
            step[:, self.target_feature] = self.scaler.transform(step[:, self.target_feature])
        return step

    def ingest(self, observation: np.ndarray) -> None:
        """Ingest one raw observation step ``(N, F)`` (or ``(N,)`` when F=1)."""
        step = self._normalise_step(observation)
        with self._lock:
            self._stream.push(step)

    def ingest_signal(self, signal: np.ndarray) -> None:
        """Ingest a raw ``(steps, N, F)`` signal chunk step by step.

        ``(steps, N)`` is accepted when the buffer holds a single feature,
        mirroring the per-step shapes :meth:`ingest` takes.
        """
        signal = np.asarray(signal, dtype=self._stream.dtype)
        if signal.ndim == 2 and self.num_features == 1:
            signal = signal[:, :, None]
        if signal.ndim != 3:
            raise ValueError(f"signal must have shape (steps, N, F); got {signal.shape}")
        for step in signal:
            self.ingest(step)

    def ingest_node(self, node: int, values: np.ndarray) -> None:
        """Correct the latest step of one node with a late-arriving reading."""
        values = np.asarray(values, dtype=self._stream.dtype).reshape(self.num_features)
        if self.scaler is not None:
            values = values.copy()
            values[self.target_feature] = float(
                self.scaler.transform(np.asarray(values[self.target_feature]))
            )
        with self._lock:
            self._stream.update_node(node, values)
            self._corrections += 1

    # ------------------------------------------------------------------
    def window(self) -> np.ndarray:
        """Latest model-ready normalised window ``(T, N, F)`` (O(1) view)."""
        return self._stream.latest()

    def reset(self) -> None:
        """Forget all ingested observations (invalidates cache tokens)."""
        with self._lock:
            self._stream.reset()
            self._corrections = 0
            self._epoch += 1

    # ------------------------------------------------------------------
    # Cache versioning
    # ------------------------------------------------------------------
    def _token_locked(self) -> str:
        return (
            f"stream:{self._epoch}:{self._restores}:"
            f"{self._stream.steps_ingested}:{self._corrections}"
        )

    def cache_token(self) -> str:
        """O(1) identity token of the current buffer content.

        Changes whenever the content can change (step ingest, late per-node
        correction, reset, state restore), so a forecast cache can use it in
        place of a content hash of the full window.  The ``stream:`` prefix
        keeps tokens disjoint from the hex digests of
        :func:`repro.serving.cache.hash_window` keys.
        """
        with self._lock:
            return self._token_locked()

    def snapshot(self) -> Tuple[np.ndarray, str]:
        """Copy the latest window together with its consistent cache token.

        The copy and the token read happen under the buffer's mutation
        lock, so the token can never describe different data than the
        returned window — a concurrent ingest lands entirely before or
        entirely after the snapshot.
        """
        with self._lock:
            return np.array(self._stream.latest()), self._token_locked()

    # ------------------------------------------------------------------
    # Warm-start persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Complete buffer state (normalised ring, counters) for checkpointing.

        The ring stores *normalised* observations: a snapshot is only
        meaningful next to the checkpoint whose scaler filled it.
        """
        with self._lock:
            state = self._stream.state_dict()
            state["corrections"] = int(self._corrections)
            state["epoch"] = int(self._epoch)
            return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot into this buffer.

        The snapshot's ring must match the live ring in dtype and shape
        (see :meth:`StreamingWindows.load_state_dict`) — restoring a
        float64 snapshot into a float32 serving buffer raises instead of
        silently changing the deployment's precision.
        """
        with self._lock:
            self._stream.load_state_dict({"store": state["store"], "count": state["count"]})
            self._corrections = int(state.get("corrections", 0))
            self._epoch = int(state.get("epoch", 0))
            self._restores += 1

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the buffer state as an ``.npz`` sidecar next to a checkpoint.

        A missing ``.npz`` suffix is appended (never substituted —
        ``model.buffer`` becomes ``model.buffer.npz``, so a sidecar can't
        silently clobber ``model.npz``); the resolved path is returned.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        state = self.state_dict()
        np.savez(
            path,
            store=state["store"],
            count=np.int64(state["count"]),
            corrections=np.int64(state["corrections"]),
            epoch=np.int64(state["epoch"]),
            dims=np.array([self.input_length, self.num_nodes, self.num_features], dtype=np.int64),
            # The ring dtype, recorded explicitly so restore() can reject a
            # precision mismatch with a clear message before touching the
            # live ring (the store array also carries it, but only
            # implicitly).
            dtype=np.array(str(self.dtype)),
        )
        return path

    def restore(self, path: Union[str, Path]) -> None:
        """Reload a :meth:`save` snapshot; the service resumes without a cold window."""
        path = Path(path)
        if path.suffix != ".npz":
            # Mirror save()'s suffix normalisation so the exact path handed
            # to save() round-trips through restore().
            path = path.with_name(path.name + ".npz")
        if not path.exists():
            raise FileNotFoundError(f"buffer state {path} does not exist")
        with np.load(path, allow_pickle=False) as archive:
            dims = tuple(int(d) for d in archive["dims"])
            expected = (self.input_length, self.num_nodes, self.num_features)
            if dims != expected:
                raise ValueError(
                    f"buffer state dimensions {dims} do not match this buffer's {expected}"
                )
            stored_dtype = np.dtype(
                archive["dtype"].item() if "dtype" in archive.files else archive["store"].dtype
            )
            if stored_dtype != self.dtype:
                raise ValueError(
                    f"buffer state {path} was saved from a {stored_dtype} ring; this "
                    f"buffer serves at {self.dtype} — restoring would silently change "
                    "the deployment's precision.  Save a snapshot at the serving "
                    f"precision or construct the buffer with dtype={stored_dtype}."
                )
            self.load_state_dict(
                {
                    "store": archive["store"],
                    "count": int(archive["count"]),
                    "corrections": int(archive["corrections"]),
                    "epoch": int(archive["epoch"]),
                }
            )
