"""Resilience primitives for the serving stack.

This module is the one place the serving tiers reach for failure policy:

- :class:`Deadline` — a per-request time budget captured at entry and
  propagated through the micro-batcher queue, shard dispatch, and the
  process-tier shm round-trip.  Expired requests fail fast with a typed
  :class:`DeadlineExceeded` instead of occupying queue slots.
- :class:`RetryPolicy` — bounded retries with jittered exponential backoff
  for *retryable* failures only (worker death mid-flight, injected
  transients).  Deterministic errors (bad shapes, unknown horizons) are
  never retried.
- :class:`CircuitBreaker` — per-shard consecutive-failure breaker with an
  open → half-open probe cycle.  ``"replicas"`` mode reroutes around open
  shards; ``"nodes"`` mode degrades to a typed :class:`PartialResult`.
- :class:`WatchdogConfig` — hung-worker detection thresholds and the capped
  exponential respawn backoff / storm window used by the process tier.
- :class:`ResilientForward` — the wrapper installed around each shard's
  forward callable that applies breaker + retry policy at the single point
  every tier's compute funnels through.

All knobs bundle into :class:`ResilienceConfig`, accepted by every service
constructor.  Defaults are conservative: retries only fire for errors that
declare themselves retryable, breakers stay disabled unless configured, and
the watchdog's hang timeout is far above any healthy batch latency.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .faults import fault_point

__all__ = [
    "ResilienceError",
    "TransientError",
    "DeadlineExceeded",
    "WorkerCrashed",
    "CircuitOpen",
    "PartialResult",
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerSnapshot",
    "WatchdogConfig",
    "ResilienceConfig",
    "ResilientForward",
    "ShardHealth",
    "ServiceHealth",
    "is_retryable",
]


class ResilienceError(RuntimeError):
    """Base class for typed failures raised by the resilience layer."""


class TransientError(ResilienceError):
    """A failure that is expected to clear on retry (marker base class)."""

    retryable = True


class DeadlineExceeded(ResilienceError):
    """The request's time budget expired before (or during) compute."""

    def __init__(self, budget_ms: float, elapsed_ms: float, stage: str) -> None:
        super().__init__(
            f"deadline of {budget_ms:.1f} ms exceeded after {elapsed_ms:.1f} ms "
            f"at stage {stage!r}"
        )
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms
        self.stage = stage


class WorkerCrashed(TransientError):
    """A process-tier worker died or wedged mid-batch.

    The message keeps the historical "died mid-batch" phrasing that
    pre-resilience tests and operator runbooks match on.
    """

    def __init__(self, shard: int, detail: str, hung: bool = False) -> None:
        kind = "wedged (hang watchdog)" if hung else "died"
        super().__init__(f"shard {shard} worker process {kind} mid-batch ({detail})")
        self.shard = shard
        self.detail = detail
        self.hung = hung


class CircuitOpen(ResilienceError):
    """A shard's circuit breaker is open; calls are rejected without compute."""

    def __init__(self, shard: int, failures: int, retry_after: float) -> None:
        super().__init__(
            f"circuit open for shard {shard} after {failures} consecutive "
            f"failures; retry in {retry_after:.2f}s"
        )
        self.shard = shard
        self.failures = failures
        self.retry_after = retry_after


class PartialResult(ResilienceError):
    """Typed degraded result for ``"nodes"`` mode when some shards fail.

    ``forecast`` carries the merged output with the failed shards' node
    columns NaN-filled; ``failed_shards`` maps shard index -> the error that
    took it out.
    """

    def __init__(self, forecast: np.ndarray, failed_shards: Dict[int, BaseException]) -> None:
        names = ", ".join(str(s) for s in sorted(failed_shards))
        super().__init__(
            f"partial result: shards [{names}] failed; their node columns are NaN"
        )
        self.forecast = forecast
        self.failed_shards = failed_shards


def is_retryable(error: BaseException) -> bool:
    """True when ``error`` declares itself safe to retry."""
    return bool(getattr(error, "retryable", False))


class Deadline:
    """A monotonic-clock time budget captured at request entry."""

    __slots__ = ("budget_ms", "start")

    def __init__(self, budget_ms: float, start: Optional[float] = None) -> None:
        if budget_ms <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_ms = float(budget_ms)
        self.start = time.monotonic() if start is None else start

    @classmethod
    def after(cls, budget_ms: Optional[float]) -> Optional["Deadline"]:
        """Build a deadline, passing ``None`` through (no budget)."""
        return None if budget_ms is None else cls(budget_ms)

    def elapsed_ms(self) -> float:
        return (time.monotonic() - self.start) * 1000.0

    def remaining_ms(self) -> float:
        return self.budget_ms - self.elapsed_ms()

    @property
    def expired(self) -> bool:
        return self.remaining_ms() <= 0.0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        elapsed = self.elapsed_ms()
        if elapsed >= self.budget_ms:
            raise DeadlineExceeded(self.budget_ms, elapsed, stage)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(budget_ms={self.budget_ms}, remaining_ms={self.remaining_ms():.1f})"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    ``max_attempts`` counts total attempts (first try included), so the loop
    is always bounded; backoff sleeps ``base_delay_ms * multiplier**(n-1)``
    capped at ``max_delay_ms``, scaled by a seeded jitter in
    ``[1 - jitter, 1 + jitter]`` so retry storms decorrelate but tests
    replay deterministically from the seed.
    """

    max_attempts: int = 2
    base_delay_ms: float = 5.0
    multiplier: float = 2.0
    max_delay_ms: float = 200.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_ms(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        raw = min(self.base_delay_ms * (self.multiplier ** (attempt - 1)), self.max_delay_ms)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(raw, 0.0)

    def call(
        self,
        fn: Callable[[], Any],
        *,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Invoke ``fn`` with bounded, backoff-paced retries.

        Retries only errors for which :func:`is_retryable` is true, and only
        while the deadline (if any) has budget left.  The last error is
        re-raised unchanged when attempts run out.
        """
        rng = random.Random(self.seed)
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.check("retry")
            try:
                return fn()
            except Exception as error:  # noqa: BLE001 - policy decides re-raise
                last = error
                if attempt >= self.max_attempts or not is_retryable(error):
                    raise
                delay_ms = self.backoff_ms(attempt, rng)
                if deadline is not None and deadline.remaining_ms() <= delay_ms:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                time.sleep(delay_ms / 1000.0)
        raise last  # pragma: no cover - loop always returns or raises


@dataclass(frozen=True)
class BreakerSnapshot:
    shard: int
    state: str
    consecutive_failures: int
    opened_at: Optional[float]
    retry_after: float


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    States: ``closed`` (normal), ``open`` (rejecting; entered after
    ``failure_threshold`` consecutive failures), ``half_open`` (one probe
    call admitted after ``reset_timeout_s``; success closes the breaker,
    failure re-opens it).
    """

    def __init__(
        self,
        shard: int = 0,
        *,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.shard = shard
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._breaker_lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._breaker_lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if self._state == "open" and self._opened_at is not None:
            if time.monotonic() - self._opened_at >= self.reset_timeout_s:
                return "half_open"
        return self._state

    def allow(self) -> bool:
        """True when a call may proceed (and claims the half-open probe)."""
        with self._breaker_lock:
            state = self._effective_state()
            if state == "closed":
                return True
            if state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def check(self) -> None:
        """Raise :class:`CircuitOpen` unless a call may proceed."""
        if not self.allow():
            with self._breaker_lock:
                retry_after = 0.0
                if self._opened_at is not None:
                    retry_after = max(
                        0.0,
                        self.reset_timeout_s - (time.monotonic() - self._opened_at),
                    )
                failures = self._failures
            raise CircuitOpen(self.shard, failures, retry_after)

    def record_success(self) -> None:
        with self._breaker_lock:
            self._state = "closed"
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._breaker_lock:
            self._failures += 1
            self._probing = False
            if self._state == "open" or self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = time.monotonic()

    def snapshot(self) -> BreakerSnapshot:
        with self._breaker_lock:
            retry_after = 0.0
            if self._opened_at is not None and self._effective_state() == "open":
                retry_after = max(
                    0.0,
                    self.reset_timeout_s - (time.monotonic() - self._opened_at),
                )
            return BreakerSnapshot(
                shard=self.shard,
                state=self._effective_state(),
                consecutive_failures=self._failures,
                opened_at=self._opened_at,
                retry_after=retry_after,
            )


@dataclass(frozen=True)
class WatchdogConfig:
    """Hung-worker detection and respawn pacing for the process tier.

    ``hang_timeout_s`` must exceed the worst-case healthy single-chunk
    compute time; a dispatch that outlives it *and* whose worker heartbeat
    has gone stale is declared wedged and escalated
    (join → terminate → kill → respawn).  Respawns back off exponentially
    (``respawn_backoff_base_s`` doubling up to ``respawn_backoff_cap_s``)
    and more than ``storm_threshold`` respawns inside ``storm_window_s``
    pins the backoff at the cap (respawn-storm protection).
    """

    hang_timeout_s: float = 30.0
    heartbeat_interval_s: float = 0.1
    respawn_backoff_base_s: float = 0.05
    respawn_backoff_cap_s: float = 2.0
    storm_window_s: float = 30.0
    storm_threshold: int = 5


@dataclass(frozen=True)
class ResilienceConfig:
    """Bundle of resilience knobs accepted by every service constructor."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: Optional[int] = None
    breaker_reset_timeout_s: float = 5.0
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    default_deadline_ms: Optional[float] = None
    serve_stale: bool = False

    @property
    def breakers_enabled(self) -> bool:
        return self.breaker_failure_threshold is not None

    def make_breaker(self, shard: int) -> Optional[CircuitBreaker]:
        if not self.breakers_enabled:
            return None
        return CircuitBreaker(
            shard,
            failure_threshold=int(self.breaker_failure_threshold),
            reset_timeout_s=self.breaker_reset_timeout_s,
        )


class ResilientForward:
    """Breaker + bounded-retry wrapper around a shard's forward callable.

    Every tier's compute funnels through the forward handed to its
    MicroBatcher, so wrapping here gives one enforcement point: the breaker
    is consulted before compute, retryable failures (worker death, injected
    transients) are re-dispatched under the retry policy's backoff, and
    outcomes feed the breaker.  Attribute access (``cache_info``,
    ``save_artifacts``, ``compile_for``, ``precision``, ``threads``)
    delegates to the wrapped forward so engine plumbing is unaffected.
    """

    def __init__(
        self,
        forward: Callable[..., Any],
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> None:
        self._forward = forward
        self._retry = retry
        self._breaker = breaker
        self._on_retry = on_retry
        self._retry_lock = threading.Lock()
        self._retries = 0

    @property
    def wrapped(self) -> Callable[..., Any]:
        return self._forward

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self._breaker

    @property
    def retries(self) -> int:
        with self._retry_lock:
            return self._retries

    def _count_retry(self, attempt: int, error: BaseException) -> None:
        with self._retry_lock:
            self._retries += 1
        if self._on_retry is not None:
            self._on_retry(attempt, error)

    def _attempt(self, args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
        # Parent-side injection site: lets the fault harness exercise the
        # retry/breaker machinery without a process tier underneath.
        fault_point("forward.call")
        return self._forward(*args, **kwargs)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        breaker = self._breaker
        if breaker is not None:
            breaker.check()
        try:
            if self._retry is None:
                result = self._attempt(args, kwargs)
            else:
                result = self._retry.call(
                    lambda: self._attempt(args, kwargs),
                    on_retry=self._count_retry,
                )
        except Exception as error:
            # A spent client budget says nothing about shard health — only
            # genuine compute failures feed the breaker.
            if breaker is not None and not isinstance(error, DeadlineExceeded):
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def __getattr__(self, name: str) -> Any:
        return getattr(self._forward, name)


@dataclass(frozen=True)
class ShardHealth:
    shard: int
    breaker: Optional[BreakerSnapshot]
    worker_pid: Optional[int]
    worker_alive: Optional[bool]
    heartbeat_age_s: Optional[float]
    respawns: int
    hung_detections: int


@dataclass(frozen=True)
class ServiceHealth:
    """Snapshot returned by ``service.health()``."""

    healthy: bool
    shards: Tuple[ShardHealth, ...]
    lane_depths: Dict[str, int]
    stale_served: int
    expired_requests: int
    retries: int

    @property
    def open_breakers(self) -> List[int]:
        return [
            s.shard
            for s in self.shards
            if s.breaker is not None and s.breaker.state == "open"
        ]
