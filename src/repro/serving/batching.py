"""Micro-batching request queue.

A production forecast endpoint receives many concurrent *single-window*
queries.  Running the model once per request wastes most of the time in
per-call overhead: every forward pass through the NumPy substrate pays a
fixed cost in Python-level op dispatch that is independent of the batch
size, while the matmuls themselves vectorise almost for free along the
batch dimension.  The :class:`MicroBatcher` therefore coalesces pending
requests into one ``(B, T, N, F)`` forward pass under ``no_grad`` and
distributes the per-sample slices back to the callers — the standard
dynamic-batching pattern of inference servers, in synchronous form.

The batcher is deliberately ignorant of batch *shapes* beyond equality
checks: whatever ragged coalesced size a flush produces is handed to the
forward callable unchanged, and the compiled runtime's batch bucketing
(see ``docs/runtime.md``) pads it to a power-of-two plan internally.

Usage::

    batcher = MicroBatcher(model, max_batch_size=64)
    pending = [batcher.submit(w) for w in windows]   # enqueue, no compute
    batcher.flush()                                  # one batched forward
    results = [p.result() for p in pending]

``PendingForecast.result()`` flushes lazily when needed, so callers that
do not control the flush cadence still always get an answer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, no_grad

__all__ = ["PendingForecast", "BatcherStats", "MicroBatcher"]


class PendingForecast:
    """Handle for a forecast that has been enqueued but maybe not computed.

    The micro-batcher fulfils the handle during :meth:`MicroBatcher.flush`;
    calling :meth:`result` earlier triggers a flush so the caller never
    deadlocks on its own request.  If the model raised during the batched
    forward, :meth:`result` re-raises that error for every request of the
    failed batch instead of silently dropping them.
    """

    def __init__(self, batcher: "MicroBatcher") -> None:
        self._batcher = batcher
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._done = False

    @property
    def done(self) -> bool:
        """Whether the forecast has been computed (or failed)."""
        return self._done

    def _fulfil(self, value: np.ndarray) -> None:
        self._value = value
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True

    def result(self) -> np.ndarray:
        """The forecast ``(T', N)``; flushes the queue if still pending."""
        if not self._done:
            self._batcher.flush()
        if not self._done:  # defensive: flush must settle every pending handle
            raise RuntimeError("flush did not settle this request")
        if self._error is not None:
            raise RuntimeError("batched forward failed for this request") from self._error
        return self._value


@dataclass
class BatcherStats:
    """Running counters of how well requests were amortised into batches.

    Scalars only (no per-flush history), so the stats stay O(1) in memory
    over the lifetime of a long-running service.
    """

    requests: int = 0
    flushes: int = 0
    coalesced: int = 0
    largest_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests amortised per forward pass."""
        return self.coalesced / self.flushes if self.flushes else 0.0

    def _record_flush(self, batch_size: int) -> None:
        self.flushes += 1
        self.coalesced += batch_size
        self.largest_batch = max(self.largest_batch, batch_size)


class MicroBatcher:
    """Coalesce concurrent single-window requests into batched forwards.

    Parameters
    ----------
    forward_fn:
        The model (or any callable) mapping a ``(B, T, N, F)`` batch to
        ``(B, T', N)`` predictions.  A :class:`~repro.nn.Module` is used
        directly; a :class:`~repro.runtime.CompiledModel` plugs in the
        graph-free kernel runtime (the serving default); outputs may be
        :class:`~repro.tensor.Tensor` or plain arrays.
    max_batch_size:
        Upper bound on the coalesced batch; larger queues are drained in
        several chunks (bounds peak memory).
    auto_flush_at:
        When set, :meth:`submit` triggers a flush as soon as this many
        requests are pending — callers then never have to flush manually.

    All entry points are thread-safe; the forward pass itself runs outside
    the queue lock so new requests can keep arriving while a batch computes.
    """

    def __init__(
        self,
        forward_fn: Callable[[Tensor], object],
        max_batch_size: int = 128,
        auto_flush_at: Optional[int] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if auto_flush_at is not None and auto_flush_at <= 0:
            raise ValueError("auto_flush_at must be positive when set")
        self.forward_fn = forward_fn
        self.max_batch_size = max_batch_size
        self.auto_flush_at = auto_flush_at
        self._queue: List[Tuple[np.ndarray, PendingForecast]] = []
        self._queue_lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.stats = BatcherStats()

    @property
    def pending(self) -> int:
        """Number of enqueued, not yet computed requests."""
        with self._queue_lock:
            return len(self._queue)

    def submit(self, window: np.ndarray) -> PendingForecast:
        """Enqueue one observation window ``(T, N, F)`` for forecasting."""
        window = np.asarray(window, dtype=float)
        if window.ndim != 3:
            raise ValueError(f"window must have shape (T, N, F); got {window.shape}")
        handle = PendingForecast(self)
        with self._queue_lock:
            if self._queue and self._queue[0][0].shape != window.shape:
                raise ValueError(
                    f"window shape {window.shape} differs from the pending batch "
                    f"shape {self._queue[0][0].shape}"
                )
            self._queue.append((window, handle))
            should_flush = self.auto_flush_at is not None and len(self._queue) >= self.auto_flush_at
        with self._stats_lock:
            self.stats.requests += 1
        if should_flush:
            self.flush()
        return handle

    def flush(self) -> int:
        """Drain the queue with batched forwards; returns requests fulfilled.

        If the model raises on a chunk, every handle of that chunk is failed
        with the error (so waiting callers see the real cause from
        :meth:`PendingForecast.result`) and the exception propagates;
        requests in later chunks stay queued for the next flush.
        """
        fulfilled = 0
        with self._flush_lock:
            while True:
                with self._queue_lock:
                    chunk = self._queue[: self.max_batch_size]
                    del self._queue[: len(chunk)]
                if not chunk:
                    return fulfilled
                try:
                    windows = np.stack([window for window, _ in chunk], axis=0)
                    with no_grad():
                        outputs = self.forward_fn(Tensor(windows))
                    predictions = outputs.data if isinstance(outputs, Tensor) else np.asarray(outputs)
                    if predictions.shape[0] != len(chunk):
                        raise RuntimeError(
                            f"forward returned {predictions.shape[0]} predictions for a "
                            f"batch of {len(chunk)}"
                        )
                except BaseException as error:
                    for _, handle in chunk:
                        handle._fail(error)
                    raise
                for index, (_, handle) in enumerate(chunk):
                    handle._fulfil(predictions[index].copy())
                with self._stats_lock:
                    self.stats._record_flush(len(chunk))
                fulfilled += len(chunk)

    def forecast_batch(self, windows: np.ndarray) -> np.ndarray:
        """Convenience path: forecast an already-assembled ``(B, T, N, F)`` batch.

        Bypasses the queue but shares the batching statistics, so benchmark
        comparisons see both paths.
        """
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 4:
            raise ValueError(f"batch must have shape (B, T, N, F); got {windows.shape}")
        with no_grad():
            outputs = self.forward_fn(Tensor(windows))
        predictions = outputs.data if isinstance(outputs, Tensor) else np.asarray(outputs)
        with self._stats_lock:
            self.stats.requests += windows.shape[0]
            self.stats._record_flush(windows.shape[0])
        return predictions
