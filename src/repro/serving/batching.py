"""Micro-batching request queue and the background linger flusher.

A production forecast endpoint receives many concurrent *single-window*
queries.  Running the model once per request wastes most of the time in
per-call overhead: every forward pass through the NumPy substrate pays a
fixed cost in Python-level op dispatch that is independent of the batch
size, while the matmuls themselves vectorise almost for free along the
batch dimension.  The :class:`MicroBatcher` therefore coalesces pending
requests into one ``(B, T, N, F)`` forward pass under ``no_grad`` and
distributes the per-sample slices back to the callers — the standard
dynamic-batching pattern of inference servers.

The batcher is deliberately ignorant of batch *shapes* beyond equality
checks: whatever ragged coalesced size a flush produces is handed to the
forward callable unchanged, and the compiled runtime's batch bucketing
(see ``docs/runtime.md``) pads it to a power-of-two plan internally.

Usage::

    batcher = MicroBatcher(model, max_batch_size=64)
    pending = [batcher.submit(w) for w in windows]   # enqueue, no compute
    batcher.flush()                                  # one batched forward
    results = [p.result() for p in pending]

``PendingForecast.result()`` flushes lazily when needed, so callers that
do not control the flush cadence still always get an answer.

Two pieces turn this synchronous queue into an asynchronous ingestion
loop (see ``docs/serving_quickstart.md``):

* :class:`BackgroundFlusher` — a daemon thread that drains batchers on a
  time-based linger: a request that has waited ``linger_ms`` is flushed
  even when the ``auto_flush_at`` threshold was never reached, so trickle
  traffic stops waiting for the next submit (or for its caller to block
  in ``result()``);
* :class:`AsyncForecast` — a composite handle assembling one forecast
  from one or more :class:`PendingForecast` parts (the per-shard outputs
  of a sharded service) plus a finalisation hook (denormalisation, cache
  insertion).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor import Tensor, no_grad
from .resilience import Deadline, DeadlineExceeded, ResilienceError

__all__ = [
    "PendingForecast",
    "AsyncForecast",
    "BatcherStats",
    "MicroBatcher",
    "FlusherStats",
    "BackgroundFlusher",
]


class PendingForecast:
    """Handle for a forecast that has been enqueued but maybe not computed.

    The micro-batcher fulfils the handle during :meth:`MicroBatcher.flush`;
    calling :meth:`result` earlier triggers a flush so the caller never
    deadlocks on its own request.  If the model raised during the batched
    forward, :meth:`result` re-raises that error for every request of the
    failed batch instead of silently dropping them.
    """

    def __init__(self, batcher: "MicroBatcher") -> None:
        self._batcher = batcher
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._done = False

    @property
    def done(self) -> bool:
        """Whether the forecast has been computed (or failed)."""
        return self._done

    @property
    def error(self) -> Optional[BaseException]:
        """The failure behind this handle, if it failed (``None`` otherwise).

        Lets degraded-mode callers (partial-result assembly, stale-serve
        fallbacks) inspect the underlying cause without triggering the
        re-raise in :meth:`result`.
        """
        return self._error

    def _fulfil(self, value: np.ndarray) -> None:
        self._value = value
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True

    def result(self) -> np.ndarray:
        """The forecast ``(T', N)``; flushes the queue if still pending."""
        if not self._done:
            self._batcher.flush()
        if not self._done:  # defensive: flush must settle every pending handle
            raise RuntimeError("flush did not settle this request")
        if self._error is not None:
            if isinstance(self._error, ResilienceError):
                # Typed resilience failures (DeadlineExceeded, WorkerCrashed,
                # CircuitOpen) are the caller-facing contract — re-raise them
                # unwrapped so except clauses can match on the type.
                raise self._error
            raise RuntimeError("batched forward failed for this request") from self._error
        return self._value


class AsyncForecast:
    """One forecast assembled from pending parts plus a finalisation hook.

    ``parts`` are the :class:`PendingForecast` handles this forecast is
    built from — one per owning shard in a sharded service, exactly one
    for a single-worker service.  ``finalize`` maps the settled part
    arrays to the caller-facing forecast (shard merging, denormalisation,
    horizon truncation, cache insertion).  :meth:`result` drives the same
    lazy-flush semantics as :class:`PendingForecast`, so a handle is
    always answerable even when no background flusher is running.
    """

    def __init__(
        self,
        parts: Sequence[PendingForecast],
        finalize: Callable[[List[np.ndarray]], np.ndarray],
    ) -> None:
        self._parts = list(parts)
        self._finalize = finalize
        self._value: Optional[np.ndarray] = None
        self._settled = False

    @classmethod
    def completed(cls, value: np.ndarray) -> "AsyncForecast":
        """A handle that is already settled (e.g. answered from the cache)."""
        handle = cls((), lambda parts: value)
        handle._value = value
        handle._settled = True
        return handle

    @property
    def done(self) -> bool:
        """Whether every part has been computed (or failed)."""
        return self._settled or all(part.done for part in self._parts)

    def result(self) -> np.ndarray:
        """The raw-scale forecast; triggers lazy flushes if parts are pending.

        Re-raises the underlying forward error if any part failed.
        """
        if not self._settled:
            self._value = self._finalize([part.result() for part in self._parts])
            self._settled = True
        return self._value


@dataclass
class BatcherStats:
    """Running counters of how well requests were amortised into batches.

    Scalars only (no per-flush history), so the stats stay O(1) in memory
    over the lifetime of a long-running service.
    """

    requests: int = 0
    flushes: int = 0
    coalesced: int = 0
    largest_batch: int = 0
    #: Chunk forwards that raised; their requests are counted in
    #: ``failed_requests`` and never in ``coalesced``.
    failed_flushes: int = 0
    failed_requests: int = 0
    #: Requests whose deadline expired while queued; failed typed with
    #: :class:`~repro.serving.DeadlineExceeded` before any compute, and
    #: never counted in ``coalesced`` or ``failed_requests``.
    expired_requests: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests amortised per successful forward pass."""
        return self.coalesced / self.flushes if self.flushes else 0.0

    def _record_flush(self, batch_size: int) -> None:
        self.flushes += 1
        self.coalesced += batch_size
        self.largest_batch = max(self.largest_batch, batch_size)

    def _record_failure(self, batch_size: int) -> None:
        self.failed_flushes += 1
        self.failed_requests += batch_size


class MicroBatcher:
    """Coalesce concurrent single-window requests into batched forwards.

    Parameters
    ----------
    forward_fn:
        The model (or any callable) mapping a ``(B, T, N, F)`` batch to
        ``(B, T', N)`` predictions.  A :class:`~repro.nn.Module` is used
        directly; a :class:`~repro.runtime.CompiledModel` plugs in the
        graph-free kernel runtime (the serving default); outputs may be
        :class:`~repro.tensor.Tensor` or plain arrays.
    max_batch_size:
        Upper bound on the coalesced batch; larger queues are drained in
        several chunks (bounds peak memory).
    auto_flush_at:
        When set, :meth:`submit` triggers a flush as soon as this many
        requests are pending — callers then never have to flush manually.

    All entry points are thread-safe; the forward pass itself runs outside
    the queue lock so new requests can keep arriving while a batch computes.

    ``submit_listener`` (an attribute, set by :class:`BackgroundFlusher`)
    is invoked after every enqueue, outside all locks — the hook a linger
    flusher uses to re-arm its timer when the queue goes non-empty.
    """

    def __init__(
        self,
        forward_fn: Callable[[Tensor], object],
        max_batch_size: int = 128,
        auto_flush_at: Optional[int] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if auto_flush_at is not None and auto_flush_at <= 0:
            raise ValueError("auto_flush_at must be positive when set")
        self.forward_fn = forward_fn
        self.max_batch_size = max_batch_size
        self.auto_flush_at = auto_flush_at
        self.submit_listener: Optional[Callable[[], None]] = None
        self._queue: List[Tuple[np.ndarray, PendingForecast, float, Optional[Deadline]]] = []
        self._queue_lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.stats = BatcherStats()

    @property
    def pending(self) -> int:
        """Number of enqueued, not yet computed requests."""
        with self._queue_lock:
            return len(self._queue)

    def oldest_pending_at(self) -> Optional[float]:
        """``time.monotonic()`` timestamp of the oldest queued request.

        ``None`` when the queue is empty.  A linger flusher drains the
        queue once ``time.monotonic() - oldest_pending_at()`` exceeds its
        linger window.
        """
        with self._queue_lock:
            return self._queue[0][2] if self._queue else None

    def oldest_pending_age(self) -> Optional[float]:
        """Seconds the oldest queued request has waited (``None`` if empty)."""
        oldest = self.oldest_pending_at()
        return None if oldest is None else max(0.0, time.monotonic() - oldest)

    def submit(self, window: np.ndarray,
               deadline: Optional[Deadline] = None) -> PendingForecast:
        """Enqueue one observation window ``(T, N, F)`` for forecasting.

        ``deadline`` rides with the queue entry: if the budget expires
        before the entry reaches a forward pass, the next flush fails its
        handle with a typed :class:`~repro.serving.DeadlineExceeded`
        instead of spending compute on an answer nobody is waiting for.
        """
        window = np.asarray(window, dtype=float)
        if window.ndim != 3:
            raise ValueError(f"window must have shape (T, N, F); got {window.shape}")
        handle = PendingForecast(self)
        with self._queue_lock:
            if self._queue and self._queue[0][0].shape != window.shape:
                raise ValueError(
                    f"window shape {window.shape} differs from the pending batch "
                    f"shape {self._queue[0][0].shape}"
                )
            was_empty = not self._queue
            self._queue.append((window, handle, time.monotonic(), deadline))
            should_flush = self.auto_flush_at is not None and len(self._queue) >= self.auto_flush_at
        with self._stats_lock:
            self.stats.requests += 1
        # Only the first request of a batch establishes a new earliest
        # linger deadline, so only the empty->non-empty transition needs to
        # wake a watching flusher — later submits would wake it for nothing.
        listener = self.submit_listener
        if was_empty and listener is not None:
            listener()
        if should_flush:
            self.flush()
        return handle

    def flush(self) -> int:
        """Drain the queue with batched forwards; returns requests fulfilled.

        If the model raises on a chunk, every handle of that chunk is failed
        with the error (so waiting callers see the real cause from
        :meth:`PendingForecast.result`), the failure is recorded in
        :attr:`stats` (``failed_flushes`` / ``failed_requests``) and the
        exception propagates with the number of requests fulfilled by the
        earlier, successful chunks attached as ``fulfilled_before_error`` —
        partial progress is never silently discarded.  Requests in later
        chunks stay queued for the next flush.
        """
        fulfilled = 0
        with self._flush_lock:
            while True:
                with self._queue_lock:
                    # Sweep expired entries first so a stale request never
                    # occupies a slot in the batch about to compute.
                    expired = [
                        entry for entry in self._queue
                        if entry[3] is not None and entry[3].expired
                    ]
                    if expired:
                        self._queue = [
                            entry for entry in self._queue
                            if entry[3] is None or not entry[3].expired
                        ]
                    chunk = self._queue[: self.max_batch_size]
                    del self._queue[: len(chunk)]
                for _, handle, _, entry_deadline in expired:
                    handle._fail(
                        DeadlineExceeded(
                            entry_deadline.budget_ms,
                            entry_deadline.elapsed_ms(),
                            "batch-queue",
                        )
                    )
                if expired:
                    with self._stats_lock:
                        self.stats.expired_requests += len(expired)
                if not chunk:
                    return fulfilled
                try:
                    windows = np.stack([window for window, _, _, _ in chunk], axis=0)
                    with no_grad():
                        outputs = self.forward_fn(Tensor(windows))
                    predictions = outputs.data if isinstance(outputs, Tensor) else np.asarray(outputs)
                    if predictions.shape[0] != len(chunk):
                        raise RuntimeError(
                            f"forward returned {predictions.shape[0]} predictions for a "
                            f"batch of {len(chunk)}"
                        )
                except BaseException as error:
                    for _, handle, _, _ in chunk:
                        handle._fail(error)
                    with self._stats_lock:
                        self.stats._record_failure(len(chunk))
                    try:
                        error.fulfilled_before_error = fulfilled
                    except (AttributeError, TypeError):  # exceptions with __slots__
                        pass
                    raise
                for index, (_, handle, _, _) in enumerate(chunk):
                    handle._fulfil(predictions[index].copy())
                with self._stats_lock:
                    self.stats._record_flush(len(chunk))
                fulfilled += len(chunk)

    def forecast_batch(self, windows: np.ndarray) -> np.ndarray:
        """Convenience path: forecast an already-assembled ``(B, T, N, F)`` batch.

        Bypasses the queue but shares the batching statistics, so benchmark
        comparisons see both paths.
        """
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 4:
            raise ValueError(f"batch must have shape (B, T, N, F); got {windows.shape}")
        with no_grad():
            outputs = self.forward_fn(Tensor(windows))
        predictions = outputs.data if isinstance(outputs, Tensor) else np.asarray(outputs)
        with self._stats_lock:
            self.stats.requests += windows.shape[0]
            self.stats._record_flush(windows.shape[0])
        return predictions


@dataclass(frozen=True)
class FlusherStats:
    """Counters of a background flusher's timed drains."""

    timed_flushes: int
    errors: int
    linger_ms: float


class BackgroundFlusher:
    """Daemon thread draining micro-batchers on a time-based linger.

    ``auto_flush_at`` bounds how *many* requests wait; the linger bounds
    how *long* they wait.  Without it, traffic that never reaches the
    threshold sits in the queue until the next submit happens to cross it
    or a caller blocks in ``result()`` — with it, any request is flushed
    at most ``linger_ms`` after enqueue.

    Parameters
    ----------
    targets:
        The batchers to watch.  Each entry is either a
        :class:`MicroBatcher` (drained with its own :meth:`~MicroBatcher.flush`
        on the flusher thread) or a ``(batcher, flush)`` pair — a sharded
        service passes the shard worker's asynchronous flush so drains run
        on the worker thread and a slow shard cannot block the timer.
    linger_ms:
        Maximum milliseconds a request may wait before its batcher is
        drained.

    Forward errors during a timed drain never kill the thread: the failed
    chunk's handles already carry the error (see
    :meth:`MicroBatcher.flush`), the batcher's stats record the failure,
    and the flusher counts it in :attr:`stats` and keeps serving.
    :meth:`close` stops the thread and drains every batcher one final
    time, so no pending handle is left waiting on a dead timer.
    """

    def __init__(self, targets, linger_ms: float = 25.0) -> None:
        if linger_ms <= 0:
            raise ValueError("linger_ms must be positive")
        self._linger = linger_ms / 1000.0
        self.linger_ms = float(linger_ms)
        self._targets: List[Tuple[MicroBatcher, Callable[[], object]]] = []
        for target in targets:
            if isinstance(target, MicroBatcher):
                self._targets.append((target, target.flush))
            else:
                batcher, flush = target
                self._targets.append((batcher, flush))
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._stats_lock = threading.Lock()
        self._timed_flushes = 0
        self._errors = 0
        for batcher, _ in self._targets:
            batcher.submit_listener = self._wake.set
        self._thread = threading.Thread(
            target=self._loop, name="repro-linger-flusher", daemon=True
        )
        self._thread.start()

    @property
    def running(self) -> bool:
        """Whether the flusher thread is alive and serving."""
        return self._thread.is_alive()

    def retarget(self, targets) -> None:
        """Point the running flusher at a new set of batchers (hot swap).

        The loop reads the target list afresh on every pass, so replacing
        the reference is safe without stopping the thread.  Old batchers
        stop being watched — the swap path drains them once at retirement,
        and their handles stay lazily flushable — and the new batchers'
        submit listeners are wired so the first enqueue wakes the timer.
        """
        resolved: List[Tuple[MicroBatcher, Callable[[], object]]] = []
        for target in targets:
            if isinstance(target, MicroBatcher):
                resolved.append((target, target.flush))
            else:
                batcher, flush = target
                resolved.append((batcher, flush))
        old = self._targets
        for batcher, _ in resolved:
            batcher.submit_listener = self._wake.set
        self._targets = resolved
        retargeted = {id(batcher) for batcher, _ in resolved}
        for batcher, _ in old:
            if id(batcher) not in retargeted:
                batcher.submit_listener = None
        self._wake.set()

    def stats(self) -> FlusherStats:
        """Snapshot of the timed-drain counters."""
        with self._stats_lock:
            return FlusherStats(
                timed_flushes=self._timed_flushes,
                errors=self._errors,
                linger_ms=self.linger_ms,
            )

    # ------------------------------------------------------------------
    def _next_timeout(self, now: float) -> Optional[float]:
        """Seconds until the earliest linger deadline (None: no pending)."""
        deadline: Optional[float] = None
        for batcher, _ in self._targets:
            oldest = batcher.oldest_pending_at()
            if oldest is None:
                continue
            due = oldest + self._linger
            if deadline is None or due < deadline:
                deadline = due
        if deadline is None:
            return None
        return max(deadline - now, 0.0)

    def _drain_due(self, now: float) -> None:
        # First pass schedules every due drain (asynchronous flush targets
        # start concurrently on their worker threads), second pass waits for
        # them — without the wait, a still-queued drain would leave
        # oldest_pending_at() in the past and spin this loop at timeout 0.
        scheduled = []
        for batcher, flush in self._targets:
            oldest = batcher.oldest_pending_at()
            if oldest is None or now - oldest < self._linger:
                continue
            try:
                result = flush()
            except BaseException:
                # The handles of the failed chunk already carry the error.
                result = None
                with self._stats_lock:
                    self._errors += 1
            with self._stats_lock:
                self._timed_flushes += 1
            if result is not None and hasattr(result, "wait"):
                scheduled.append(result)
        for job in scheduled:
            if job.wait() is not None:
                with self._stats_lock:
                    self._errors += 1

    def _loop(self) -> None:
        while not self._stop.is_set():
            timeout = self._next_timeout(time.monotonic())
            self._wake.wait(timeout)
            if self._stop.is_set():
                return
            self._wake.clear()
            self._drain_due(time.monotonic())

    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the flusher; optionally drain every batcher one last time.

        Idempotent.  The final drain runs synchronously on the calling
        thread (the workers behind asynchronous flush targets may be
        stopping too), so after ``close()`` no handle is pending.
        """
        already_stopped = self._stop.is_set()
        self._stop.set()
        self._wake.set()
        if self._thread.is_alive():
            try:
                self._thread.join()
            except RuntimeError:  # pragma: no cover - interpreter teardown
                # join() raises after Python shutdown has begun; the daemon
                # thread is being torn down anyway, so a late close() (e.g.
                # from __del__ or an atexit-closed process tier) must not
                # turn cleanup into a crash.
                pass
        if already_stopped or not drain:
            return
        for batcher, _ in self._targets:
            batcher.submit_listener = None
            try:
                batcher.flush()
            except BaseException:
                with self._stats_lock:
                    self._errors += 1

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # Last-resort stop (no drain: the forward engines behind the
        # batchers may already be gone).  Explicit close() remains the
        # contract; this only keeps an abandoned flusher from outliving
        # its service as a busy-waiting daemon.
        try:
            self.close(drain=False)
        except Exception:
            pass
