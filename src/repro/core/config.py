"""DyHSL hyperparameter configuration.

The defaults follow Section V-A4 of the paper: ``Lp = 6`` prior graph
convolution layers, ``I = 32`` hyperedges, ``J = 6`` pooling window sizes
``ε ∈ {1, 2, 3, 4, 6, 12}``, ``Ls = 2`` layers in the multi-scale module and
``d = 64`` hidden dimensions, with 12-step inputs and outputs.

The configuration also exposes the ablation switches studied in
Tables V–VII:

* ``structure_learning`` — ``"low_rank"`` is the proposed DHSL; ``"static"``
  corresponds to the *NSL* row (no structure learning: a fixed, non-learned
  incidence matrix); ``"from_scratch"`` to the *FS* row (a dense learnable
  adjacency); ``"none"`` removes the hypergraph branch entirely.
* ``use_igc`` — disables the interactive graph convolution block
  (Table VI, "w/o" row).
* ``window_sizes`` — controls the number of scales ``J`` (Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

__all__ = ["DyHSLConfig", "STRUCTURE_LEARNING_MODES"]

#: Valid values of :attr:`DyHSLConfig.structure_learning`.
STRUCTURE_LEARNING_MODES: Tuple[str, ...] = ("low_rank", "static", "from_scratch", "none")


@dataclass
class DyHSLConfig:
    """Complete hyperparameter set of the DyHSL model.

    Attributes
    ----------
    num_nodes:
        Number of sensors ``N`` in the road network.
    input_length / output_length:
        Historical window ``T`` and forecasting horizon ``T'``.
    input_dim:
        Number of raw features per observation (flow only = 1).
    hidden_dim:
        Hidden feature width ``d``.
    prior_layers:
        Number of prior graph convolution layers ``Lp``.
    num_hyperedges:
        Number of hyperedges ``I`` of the learned temporal hypergraph.
    hypergraph_layers:
        Hypergraph convolution layers ``L_H`` inside one DHSL block call.
    mhce_layers:
        Iterations ``Ls`` of the multi-scale holistic correlation extraction.
    window_sizes:
        Temporal pooling window sizes ``ε_1 … ε_J``; every value must divide
        ``input_length``.
    dropout:
        Dropout probability applied inside the blocks.
    structure_learning:
        Hypergraph structure learning mode (see module docstring).
    use_igc:
        Include the interactive graph convolution block.
    use_prior_graph:
        Include the prior graph encoder (set to ``False`` only for ablation
        experiments).
    """

    num_nodes: int
    input_length: int = 12
    output_length: int = 12
    input_dim: int = 1
    hidden_dim: int = 64
    prior_layers: int = 6
    num_hyperedges: int = 32
    hypergraph_layers: int = 1
    mhce_layers: int = 2
    window_sizes: Sequence[int] = (1, 2, 3, 4, 6, 12)
    dropout: float = 0.1
    structure_learning: str = "low_rank"
    use_igc: bool = True
    use_prior_graph: bool = True

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.input_length <= 0 or self.output_length <= 0:
            raise ValueError("input_length and output_length must be positive")
        if self.hidden_dim <= 0 or self.input_dim <= 0:
            raise ValueError("hidden_dim and input_dim must be positive")
        if self.prior_layers < 0 or self.mhce_layers <= 0 or self.hypergraph_layers <= 0:
            raise ValueError("layer counts must be positive (prior_layers may be zero)")
        if self.num_hyperedges <= 0:
            raise ValueError("num_hyperedges must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.structure_learning not in STRUCTURE_LEARNING_MODES:
            raise ValueError(
                f"structure_learning must be one of {STRUCTURE_LEARNING_MODES}; got {self.structure_learning!r}"
            )
        self.window_sizes = tuple(int(size) for size in self.window_sizes)
        if not self.window_sizes:
            raise ValueError("at least one window size is required")
        for size in self.window_sizes:
            if size <= 0 or self.input_length % size != 0:
                raise ValueError(
                    f"every window size must divide input_length={self.input_length}; got {size}"
                )
        if self.structure_learning == "none" and not self.use_igc:
            raise ValueError("at least one of the DHSL and IGC branches must be enabled")

    @property
    def num_scales(self) -> int:
        """Number of pooling scales ``J``."""
        return len(self.window_sizes)

    def replace(self, **overrides) -> "DyHSLConfig":
        """Return a copy of the configuration with selected fields replaced."""
        from dataclasses import asdict

        params = asdict(self)
        params.update(overrides)
        return DyHSLConfig(**params)
