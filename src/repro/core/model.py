"""The full DyHSL forecasting model.

Assembles the pipeline of Fig. 2 of the paper:

1. :class:`~repro.core.embeddings.SpatioTemporalEmbedding` — project raw
   observations and add node / time identities;
2. :class:`~repro.core.prior_graph.PriorGraphEncoder` — prior graph
   convolution over the Eq. 4 temporal graph;
3. :class:`~repro.core.mhce.MultiScaleExtractor` — multi-scale holistic
   correlation extraction combining the DHSL and IGC blocks;
4. prediction head — the fused global embedding ``γ_i`` is concatenated
   with the last-step local embedding ``h^T_i`` and mapped through a fully
   connected layer to the ``T'`` future steps of every node.

The model consumes normalised inputs of shape ``(batch, T, N, F)`` and
produces predictions of shape ``(batch, T', N)`` on the same normalised
scale; callers convert back to vehicles / 5 minutes with the data pipeline's
scaler (see :class:`repro.data.ForecastingData`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Linear, Module
from ..tensor import Tensor, ops
from .config import DyHSLConfig
from .embeddings import SpatioTemporalEmbedding
from .mhce import MultiScaleExtractor
from .prior_graph import PriorGraphEncoder

__all__ = ["DyHSL"]


class DyHSL(Module):
    """Dynamic Hypergraph Structure Learning model for traffic forecasting.

    Parameters
    ----------
    config:
        Hyperparameter configuration (see :class:`DyHSLConfig`).
    adjacency:
        Road-network adjacency matrix ``A`` of shape ``(N, N)``.

    Example
    -------
    >>> config = DyHSLConfig(num_nodes=20, hidden_dim=32)
    >>> model = DyHSL(config, adjacency)
    >>> predictions = model(Tensor(windows))   # (batch, 12, 20)
    """

    def __init__(self, config: DyHSLConfig, adjacency: np.ndarray) -> None:
        super().__init__()
        adjacency = np.asarray(adjacency, dtype=float)
        if adjacency.shape != (config.num_nodes, config.num_nodes):
            raise ValueError(
                f"adjacency shape {adjacency.shape} does not match num_nodes={config.num_nodes}"
            )
        self.config = config
        self.embedding = SpatioTemporalEmbedding(
            num_nodes=config.num_nodes,
            input_length=config.input_length,
            input_dim=config.input_dim,
            hidden_dim=config.hidden_dim,
        )
        if config.use_prior_graph and config.prior_layers > 0:
            self.prior_encoder: Optional[PriorGraphEncoder] = PriorGraphEncoder(
                adjacency=adjacency,
                input_length=config.input_length,
                hidden_dim=config.hidden_dim,
                num_layers=config.prior_layers,
                dropout=config.dropout,
            )
        else:
            self.prior_encoder = None
        self.extractor = MultiScaleExtractor(config, adjacency)
        # Prediction head: concatenation of the global embedding γ_i and the
        # last-step local embedding h^T_i, mapped to the T' future steps.
        self.output_head = Linear(2 * config.hidden_dim, config.output_length)

    # ------------------------------------------------------------------
    def encode(self, x: Tensor) -> Tensor:
        """Run the embedding and prior-graph stages, returning ``(B, T, N, d)``."""
        features = self.embedding(x)
        if self.prior_encoder is not None:
            return self.prior_encoder(features)
        return features

    def forward(self, x: Tensor) -> Tensor:
        """Forecast the next ``T'`` steps for every node.

        Parameters
        ----------
        x:
            Normalised observation windows of shape ``(batch, T, N, F)``.

        Returns
        -------
        Tensor
            Predictions of shape ``(batch, T', N)``.
        """
        if not isinstance(x, Tensor):
            x = Tensor(x)
        states = self.encode(x)                       # (B, T, N, d)
        global_embedding = self.extractor(states)     # (B, N, d)
        last_step = states[:, -1, :, :]               # (B, N, d)
        combined = ops.concatenate([global_embedding, last_step], axis=-1)
        predictions = self.output_head(combined)      # (B, N, T')
        return predictions.swapaxes(-1, -2)           # (B, T', N)

    # ------------------------------------------------------------------
    def incidence_matrices(self, x: Tensor, window: int = 1, layer: int = 0) -> np.ndarray:
        """Extract the learned hypergraph incidence matrices for a batch.

        Used by the Fig. 7 analysis: returns an array of shape
        ``(batch, T/ε, N, I)`` describing how strongly each observation is
        associated with each hyperedge.
        """
        if not isinstance(x, Tensor):
            x = Tensor(x)
        from ..tensor import no_grad

        with no_grad():
            states = self.encode(x)
        return self.extractor.incidence_matrices(states, window=window, layer=layer)

    def scale_weights(self) -> np.ndarray:
        """Learned softmax weights of the ``J`` pooling scales (Eq. 14)."""
        return self.extractor.fusion.normalized_weights()
