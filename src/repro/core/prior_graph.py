"""Prior graph encoder (Section IV-A, Eq. 4–5).

The encoder lifts the road network into a temporal graph (observations at
all time steps, connected by spatial and temporal edges) and runs ``Lp``
layers of message passing over it so every observation's state embedding
already mixes joint spatio-temporal context before the DHSL / IGC blocks.
"""

from __future__ import annotations

import numpy as np

from ..graph.sparse import SparseMatrix, sparse_matmul
from ..graph.temporal_graph import normalized_temporal_adjacency
from ..nn import Dropout, Linear, Module, ModuleList
from ..tensor import Tensor

__all__ = ["TemporalGraphConvolution", "PriorGraphEncoder"]


class TemporalGraphConvolution(Module):
    """One layer of Eq. 5: ``H' = φ(Ā H W)`` on the temporal graph.

    The normalised temporal adjacency ``Ā`` is a constant provided by the
    encoder; the layer owns only the feature transformation ``W``.
    A residual connection keeps deep stacks (the paper uses ``Lp = 6``)
    trainable without vanishing signals.
    """

    def __init__(self, hidden_dim: int, use_residual: bool = True) -> None:
        super().__init__()
        self.linear = Linear(hidden_dim, hidden_dim)
        self.use_residual = use_residual

    def forward(self, hidden: Tensor, adjacency: SparseMatrix) -> Tensor:
        aggregated = sparse_matmul(adjacency, hidden)
        transformed = self.linear(aggregated).relu()
        if self.use_residual:
            return transformed + hidden
        return transformed


class PriorGraphEncoder(Module):
    """Stack of temporal graph convolutions over the Eq. 4 temporal graph.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``A`` of shape ``(N, N)``.
    input_length:
        Observation window length ``T``.
    hidden_dim:
        Feature width ``d``.
    num_layers:
        Number of graph convolution layers ``Lp``.
    dropout:
        Dropout applied after each layer.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        input_length: int,
        hidden_dim: int,
        num_layers: int = 6,
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        self.num_nodes = int(np.asarray(adjacency).shape[0])
        self.input_length = input_length
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.adjacency = SparseMatrix(normalized_temporal_adjacency(adjacency, input_length))
        self.layers = ModuleList([TemporalGraphConvolution(hidden_dim) for _ in range(num_layers)])
        self.dropout = Dropout(dropout)

    def forward(self, features: Tensor) -> Tensor:
        """Encode initial observation features.

        Parameters
        ----------
        features:
            Tensor of shape ``(batch, T, N, d)`` from
            :class:`repro.core.embeddings.SpatioTemporalEmbedding`.

        Returns
        -------
        Tensor
            State representations ``h`` of shape ``(batch, T, N, d)``.
        """
        batch, steps, nodes, dim = features.shape
        if steps != self.input_length or nodes != self.num_nodes:
            raise ValueError(
                f"features ({steps}, {nodes}) do not match the encoder's ({self.input_length}, {self.num_nodes})"
            )
        # Time-major flattening: observation (t, i) sits at row t*N + i,
        # matching build_temporal_adjacency's block layout.
        hidden = features.reshape(batch, steps * nodes, dim)
        for layer in self.layers:
            hidden = layer(hidden, self.adjacency)
            hidden = self.dropout(hidden)
        return hidden.reshape(batch, steps, nodes, dim)
