"""Multi-scale Holistic Correlation Extraction (Section IV-D, Eq. 13–14).

The MHCE module integrates the two complementary views of the traffic state:

* the **DHSL block** extracts dynamic, non-pairwise relations through the
  learned temporal hypergraph;
* the **IGC block** extracts high-order relations grounded in the road
  network.

For every pooling window size ``ε`` the encoder states are max-pooled along
the time axis (capturing patterns of different periodicity), the two blocks
are applied in parallel for ``Ls`` iterations with their outputs averaged
(Eq. 13), the per-scale sequence embedding is obtained by mean pooling over
time, and finally the ``J`` scale embeddings are fused with a learned
softmax weighting (Eq. 14).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph.sparse import SparseMatrix
from ..graph.temporal_graph import normalized_temporal_adjacency
from ..nn import LayerNorm, Module, ModuleList, Parameter
from ..tensor import Tensor, init, ops
from .config import DyHSLConfig
from .dhsl import DynamicHypergraphBlock
from .igc import InteractiveGraphConvolution

__all__ = ["temporal_max_pool", "ScaleFusion", "MultiScaleExtractor"]


def temporal_max_pool(states: Tensor, window: int) -> Tensor:
    """Local max pooling along the time axis.

    Parameters
    ----------
    states:
        Tensor of shape ``(batch, T, N, d)``.
    window:
        Pooling window ``ε``; must divide ``T``.

    Returns
    -------
    Tensor
        Pooled tensor of shape ``(batch, T / ε, N, d)``.
    """
    batch, steps, nodes, dim = states.shape
    if window <= 0 or steps % window != 0:
        raise ValueError(f"window {window} must divide the sequence length {steps}")
    if window == 1:
        return states
    reshaped = states.reshape(batch, steps // window, window, nodes, dim)
    return reshaped.max(axis=2)


class ScaleFusion(Module):
    """Softmax-weighted fusion of per-scale embeddings (Eq. 14)."""

    def __init__(self, num_scales: int) -> None:
        super().__init__()
        if num_scales <= 0:
            raise ValueError("num_scales must be positive")
        self.num_scales = num_scales
        self.scale_weights = Parameter(init.zeros((num_scales,)), name="scale_weights")

    def forward(self, scale_embeddings: Sequence[Tensor]) -> Tensor:
        """Fuse ``J`` tensors of identical shape into their weighted average."""
        if len(scale_embeddings) != self.num_scales:
            raise ValueError(
                f"expected {self.num_scales} scale embeddings, got {len(scale_embeddings)}"
            )
        weights = self.scale_weights.softmax(axis=0)
        fused = scale_embeddings[0] * weights[0]
        for index in range(1, self.num_scales):
            fused = fused + scale_embeddings[index] * weights[index]
        return fused

    def normalized_weights(self) -> np.ndarray:
        """Current softmax scale weights (useful for analysis)."""
        from ..tensor import kernels

        return kernels.softmax(self.scale_weights.data, axis=0)


class MultiScaleExtractor(Module):
    """The full MHCE module operating on prior-encoder states.

    Parameters
    ----------
    config:
        Model configuration (window sizes, layer counts, ablation switches).
    adjacency:
        Road-network adjacency ``A`` used to build the per-scale temporal
        graphs for the IGC block.
    """

    def __init__(self, config: DyHSLConfig, adjacency: np.ndarray) -> None:
        super().__init__()
        self.config = config
        self.window_sizes = tuple(config.window_sizes)
        self.use_hypergraph = config.structure_learning != "none"
        self.use_igc = config.use_igc

        if self.use_hypergraph:
            self.hypergraph_blocks = ModuleList(
                [
                    DynamicHypergraphBlock(
                        hidden_dim=config.hidden_dim,
                        num_hyperedges=config.num_hyperedges,
                        num_nodes=config.num_nodes,
                        num_layers=config.hypergraph_layers,
                        mode=config.structure_learning,
                        dropout=config.dropout,
                    )
                    for _ in range(config.mhce_layers)
                ]
            )
        if self.use_igc:
            self.igc_blocks = ModuleList(
                [
                    InteractiveGraphConvolution(config.hidden_dim, dropout=config.dropout)
                    for _ in range(config.mhce_layers)
                ]
            )
        # A residual connection plus layer normalisation around every Eq. 13
        # update keeps activations well conditioned when the blocks are
        # iterated (the hypergraph convolution is cubic in the state scale,
        # so un-normalised stacking would explode).
        self.layer_norms = ModuleList([LayerNorm(config.hidden_dim) for _ in range(config.mhce_layers)])
        # Pre-compute the normalised temporal adjacency of every pooled
        # sequence length needed by the IGC block.
        self._scale_adjacency: Dict[int, SparseMatrix] = {}
        if self.use_igc:
            for window in self.window_sizes:
                pooled_steps = config.input_length // window
                if pooled_steps not in self._scale_adjacency:
                    self._scale_adjacency[pooled_steps] = SparseMatrix(
                        normalized_temporal_adjacency(adjacency, pooled_steps)
                    )
        self.fusion = ScaleFusion(len(self.window_sizes))

    # ------------------------------------------------------------------
    def _run_blocks(self, states: Tensor, pooled_steps: int) -> Tensor:
        """Apply Eq. 13 for ``Ls`` iterations on one pooled sequence."""
        adjacency = self._scale_adjacency.get(pooled_steps) if self.use_igc else None
        for layer in range(self.config.mhce_layers):
            outputs: List[Tensor] = []
            if self.use_hypergraph:
                outputs.append(self.hypergraph_blocks[layer](states))
            if self.use_igc:
                outputs.append(self.igc_blocks[layer](states, adjacency))
            if len(outputs) == 1:
                update = outputs[0]
            else:
                update = (outputs[0] + outputs[1]) * 0.5
            states = self.layer_norms[layer](states + update)
        return states

    def forward(self, states: Tensor) -> Tensor:
        """Extract the fused multi-scale global embedding.

        Parameters
        ----------
        states:
            Prior-encoder output of shape ``(batch, T, N, d)``.

        Returns
        -------
        Tensor
            Global per-node embedding ``γ`` of shape ``(batch, N, d)``.
        """
        batch, steps, nodes, dim = states.shape
        scale_embeddings: List[Tensor] = []
        for window in self.window_sizes:
            pooled = temporal_max_pool(states, window)  # (B, T/ε, N, d)
            pooled_steps = steps // window
            flattened = pooled.reshape(batch, pooled_steps * nodes, dim)
            updated = self._run_blocks(flattened, pooled_steps)
            unflattened = updated.reshape(batch, pooled_steps, nodes, dim)
            # Mean pooling along the time dimension gives the per-scale
            # sequence embedding γ^ε.
            scale_embeddings.append(unflattened.mean(axis=1))
        return self.fusion(scale_embeddings)

    def incidence_matrices(self, states: Tensor, window: int = 1, layer: int = 0) -> np.ndarray:
        """Extract learned incidence matrices for analysis (paper Fig. 7).

        Parameters
        ----------
        states:
            Prior-encoder output of shape ``(batch, T, N, d)``.
        window:
            Pooling scale whose hypergraph to inspect.
        layer:
            Which of the ``Ls`` DHSL blocks to query.

        Returns
        -------
        numpy.ndarray
            Incidence tensor of shape ``(batch, T/ε, N, I)``.
        """
        if not self.use_hypergraph:
            raise RuntimeError("hypergraph branch is disabled in this configuration")
        if window not in self.window_sizes:
            raise ValueError(f"window {window} is not one of the configured scales {self.window_sizes}")
        batch, steps, nodes, dim = states.shape
        pooled = temporal_max_pool(states, window)
        pooled_steps = steps // window
        flattened = pooled.reshape(batch, pooled_steps * nodes, dim)
        incidence = self.hypergraph_blocks[layer].last_incidence(flattened)
        return incidence.reshape(batch, pooled_steps, nodes, -1)
