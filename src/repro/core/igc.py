"""Interactive Graph Convolution block (Section IV-C, Eq. 9–12).

Standard message passing aggregates neighbour states *linearly*; the IGC
block additionally models the *interaction* of neighbour pairs.  Using the
factorisation of Eq. 11, the pairwise interaction term collapses into the
Hadamard product of two independent linear aggregations, keeping the cost
linear in the number of edges:

.. math::
    π^t_i = φ\\Big( \\big(\\sum_j Ā_{it,jt'} h^{t'}_j W_1\\big) \\odot
                     \\big(\\sum_j Ā_{it,jt'} h^{t'}_j W_2\\big) \\Big)

    r^t_i = π^t_i + φ\\Big(\\sum_j Ā_{it,jt'} h^{t'}_j W_3\\Big)

The adjacency ``Ā`` is the row-normalised temporal graph of the (possibly
pooled) observation sequence, supplied by the multi-scale module.
"""

from __future__ import annotations

from ..graph.sparse import SparseMatrix, sparse_matmul
from ..nn import Dropout, Linear, Module
from ..tensor import Tensor

__all__ = ["InteractiveGraphConvolution"]


class InteractiveGraphConvolution(Module):
    """The ``BLOCK_I`` operator of the multi-scale module.

    Parameters
    ----------
    hidden_dim:
        State dimension ``d``.
    dropout:
        Dropout probability applied to the updated states.
    """

    def __init__(self, hidden_dim: int, dropout: float = 0.1) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.projection_first = Linear(hidden_dim, hidden_dim, bias=False)
        self.projection_second = Linear(hidden_dim, hidden_dim, bias=False)
        self.projection_linear = Linear(hidden_dim, hidden_dim)
        self.dropout = Dropout(dropout)

    def forward(self, hidden: Tensor, adjacency: SparseMatrix) -> Tensor:
        """Update states using interactive plus linear neighbourhood aggregation.

        Parameters
        ----------
        hidden:
            Observation states of shape ``(batch, M, d)`` where ``M`` is the
            number of temporal-graph nodes at the current pooling scale.
        adjacency:
            Row-normalised temporal adjacency ``Ā`` of shape ``(M, M)``.

        Returns
        -------
        Tensor
            Updated states ``r`` of shape ``(batch, M, d)``.
        """
        if hidden.ndim != 3:
            raise ValueError(f"expected states of shape (batch, M, d); got {hidden.shape}")
        if adjacency.shape[0] != hidden.shape[1]:
            raise ValueError(
                f"adjacency of shape {adjacency.shape} does not match {hidden.shape[1]} observations"
            )
        # Interactive aggregation (Eq. 11): two independent projections of the
        # linearly aggregated neighbourhood, combined with a Hadamard product.
        aggregated = sparse_matmul(adjacency, hidden)
        interactive = (self.projection_first(aggregated) * self.projection_second(aggregated)).tanh()
        # Linear aggregation branch (second term of Eq. 12).
        linear = self.projection_linear(aggregated).relu()
        return self.dropout(interactive + linear)
