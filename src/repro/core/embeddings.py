"""Spatio-temporal observation embeddings.

The prior graph encoder (Section IV-A) initialises each temporal-graph node
feature by *adding a spatial embedding (location identity) and a temporal
embedding (position in the observation window) to a projection of the raw
traffic features*.  This module implements that initial feature construction.
"""

from __future__ import annotations

import numpy as np

from ..nn import Embedding, Linear, Module
from ..tensor import Tensor

__all__ = ["SpatioTemporalEmbedding"]


class SpatioTemporalEmbedding(Module):
    """Project raw observations and add node / time-step identity embeddings.

    Parameters
    ----------
    num_nodes:
        Number of sensors ``N``.
    input_length:
        Observation window length ``T``.
    input_dim:
        Raw feature dimension ``F``.
    hidden_dim:
        Output embedding width ``d``.
    """

    def __init__(self, num_nodes: int, input_length: int, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.num_nodes = num_nodes
        self.input_length = input_length
        self.input_projection = Linear(input_dim, hidden_dim)
        self.spatial_embedding = Embedding(num_nodes, hidden_dim)
        self.temporal_embedding = Embedding(input_length, hidden_dim)

    def forward(self, x: Tensor) -> Tensor:
        """Embed a batch of observation windows.

        Parameters
        ----------
        x:
            Tensor of shape ``(batch, T, N, F)``.

        Returns
        -------
        Tensor
            Initial temporal-graph node features of shape
            ``(batch, T, N, hidden_dim)``.
        """
        if x.ndim != 4:
            raise ValueError(f"expected input of shape (batch, T, N, F); got {x.shape}")
        if x.shape[1] != self.input_length or x.shape[2] != self.num_nodes:
            raise ValueError(
                f"input window ({x.shape[1]}, {x.shape[2]}) does not match the configured "
                f"({self.input_length}, {self.num_nodes})"
            )
        projected = self.input_projection(x)
        spatial = self.spatial_embedding(np.arange(self.num_nodes))  # (N, d)
        temporal = self.temporal_embedding(np.arange(self.input_length))  # (T, d)
        # Broadcast: (B, T, N, d) + (N, d) + (T, 1, d)
        return projected + spatial + temporal.unsqueeze(1)
