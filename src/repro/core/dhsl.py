"""Dynamic Hypergraph Structure Learning block (Section IV-B, Eq. 6–8).

The DHSL block is the paper's central contribution.  For the observations of
one pooling scale (``M = N * T / ε`` temporal-graph nodes with state matrix
``H ∈ R^{M x d}``) it:

1. **learns** the incidence matrix of a temporal hypergraph in low-rank form,
   ``Λ = H W`` with ``W ∈ R^{d x I}`` (Eq. 6) — the structure is therefore
   *dynamic*: it depends on the current traffic state, not only on the road
   network;
2. builds hyperedge embeddings by aggregating member nodes and mixing
   hyperedges through a learnable relation matrix ``U``:
   ``E = φ(U Λᵀ H) + Λᵀ H`` (Eq. 7);
3. redistributes hyperedge information back to the nodes, ``F = Λ E``
   (Eq. 8).

The block also implements the two ablation variants of Table V:

* **NSL** ("no structure learning", ``mode="static"``) — the incidence
  matrix is a fixed random projection of the node states, i.e. the same
  computation with a frozen, non-learnable ``W``;
* **FS** ("from scratch", ``mode="from_scratch"``) — instead of a low-rank
  hypergraph, a dense ``N x N`` adjacency is learned directly and applied
  per time step, the baseline the paper reports as unstable.
"""

from __future__ import annotations

import numpy as np

from ..nn import Dropout, Module, ModuleList, Parameter
from ..tensor import Tensor, init, ops

__all__ = ["LowRankIncidence", "HypergraphConvolution", "DynamicHypergraphBlock"]


class LowRankIncidence(Module):
    """Learn the temporal-hypergraph incidence matrix ``Λ = H W`` (Eq. 6).

    Parameters
    ----------
    hidden_dim:
        State dimension ``d``.
    num_hyperedges:
        Number of hyperedges ``I``.
    learnable:
        When ``False`` the projection ``W`` is frozen at its random
        initialisation — the *NSL* ablation of Table V.
    """

    def __init__(self, hidden_dim: int, num_hyperedges: int, learnable: bool = True) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.num_hyperedges = num_hyperedges
        self.learnable = learnable
        weight = init.xavier_uniform((hidden_dim, num_hyperedges))
        if learnable:
            self.weight = Parameter(weight, name="incidence_weight")
        else:
            # Register as a buffer so the frozen projection is checkpointed
            # but never updated by the optimiser.
            self.register_buffer("weight_buffer", weight)

    def forward(self, hidden: Tensor) -> Tensor:
        """Compute ``Λ`` of shape ``(batch, M, I)`` from states ``(batch, M, d)``."""
        if self.learnable:
            return ops.tensordot_last(hidden, self.weight)
        return ops.tensordot_last(hidden, Tensor(self._buffers["weight_buffer"]))


class HypergraphConvolution(Module):
    """One hypergraph convolution layer (Eq. 7 and Eq. 8).

    Given node states ``H`` and an incidence matrix ``Λ``:

    .. math::
        E = φ(U Λ^T H) + Λ^T H  \\qquad  F = Λ E

    ``U`` models implicit relations *between* hyperedges.
    """

    def __init__(self, hidden_dim: int, num_hyperedges: int, dropout: float = 0.1) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.num_hyperedges = num_hyperedges
        self.hyperedge_relation = Parameter(
            init.xavier_uniform((num_hyperedges, num_hyperedges)), name="hyperedge_relation"
        )
        self.dropout = Dropout(dropout)

    def forward(self, hidden: Tensor, incidence: Tensor) -> Tensor:
        """Propagate states through the hypergraph.

        Parameters
        ----------
        hidden:
            Node states of shape ``(batch, M, d)``.
        incidence:
            Incidence matrix ``Λ`` of shape ``(batch, M, I)``.

        Returns
        -------
        Tensor
            Updated node states ``F`` of shape ``(batch, M, d)``.
        """
        # Λᵀ H: aggregate node states into each hyperedge. (batch, I, d)
        edge_states = incidence.swapaxes(-1, -2).matmul(hidden)
        # φ(U Λᵀ H): mix information between hyperedges, then the residual
        # keeps the raw aggregation (Eq. 7).
        mixed = self.hyperedge_relation.matmul(edge_states).tanh()
        hyperedge_embedding = mixed + edge_states
        hyperedge_embedding = self.dropout(hyperedge_embedding)
        # F = Λ E: redistribute hyperedge embeddings to member nodes (Eq. 8).
        return incidence.matmul(hyperedge_embedding)


class DynamicHypergraphBlock(Module):
    """The full DHSL block ``BLOCK_H`` used inside the multi-scale module.

    Parameters
    ----------
    hidden_dim:
        State dimension ``d``.
    num_hyperedges:
        Number of hyperedges ``I``.
    num_nodes:
        Number of sensors ``N`` (needed only by the *from-scratch* ablation).
    num_layers:
        Number of stacked hypergraph convolutions ``L_H``.
    mode:
        ``"low_rank"`` (proposed), ``"static"`` (NSL) or ``"from_scratch"``
        (FS), matching Table V.
    dropout:
        Dropout probability inside the block.
    """

    def __init__(
        self,
        hidden_dim: int,
        num_hyperedges: int,
        num_nodes: int,
        num_layers: int = 1,
        mode: str = "low_rank",
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        if mode not in ("low_rank", "static", "from_scratch"):
            raise ValueError(f"unsupported DHSL mode {mode!r}")
        self.mode = mode
        self.hidden_dim = hidden_dim
        self.num_hyperedges = num_hyperedges
        self.num_nodes = num_nodes
        self.num_layers = num_layers
        if mode == "from_scratch":
            # Table V "FS": a dense learnable adjacency over the road
            # network, applied independently at every time step.
            self.scratch_adjacency = Parameter(
                init.normal((num_nodes, num_nodes), std=0.05), name="scratch_adjacency"
            )
            self.dropout = Dropout(dropout)
        else:
            self.incidence = LowRankIncidence(hidden_dim, num_hyperedges, learnable=(mode == "low_rank"))
            self.convolutions = ModuleList(
                [HypergraphConvolution(hidden_dim, num_hyperedges, dropout) for _ in range(num_layers)]
            )

    def forward(self, hidden: Tensor) -> Tensor:
        """Update states ``(batch, M, d)`` where ``M`` is a multiple of ``N``."""
        if self.mode == "from_scratch":
            return self._from_scratch_forward(hidden)
        incidence = self.incidence(hidden)
        updated = hidden
        for convolution in self.convolutions:
            updated = convolution(updated, incidence)
        return updated

    def _from_scratch_forward(self, hidden: Tensor) -> Tensor:
        batch, num_observations, dim = hidden.shape
        if num_observations % self.num_nodes != 0:
            raise ValueError(
                f"observation count {num_observations} is not a multiple of num_nodes={self.num_nodes}"
            )
        steps = num_observations // self.num_nodes
        adjacency = self.scratch_adjacency.softmax(axis=-1)
        per_step = hidden.reshape(batch, steps, self.num_nodes, dim)
        propagated = adjacency.matmul(per_step)
        propagated = self.dropout(propagated.tanh())
        return propagated.reshape(batch, num_observations, dim)

    def last_incidence(self, hidden: Tensor) -> np.ndarray:
        """Return the incidence matrix ``Λ`` for analysis (paper Fig. 7).

        Runs the structure-learning step without recording gradients and
        returns a plain array of shape ``(batch, M, I)``.
        """
        if self.mode == "from_scratch":
            raise RuntimeError("the from-scratch ablation does not build an incidence matrix")
        from ..tensor import no_grad

        with no_grad():
            incidence = self.incidence(hidden)
        return incidence.data
