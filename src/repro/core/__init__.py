"""DyHSL core: the paper's primary contribution.

Modules
-------
* :class:`DyHSLConfig` — hyperparameters and ablation switches;
* :class:`SpatioTemporalEmbedding` — initial observation features;
* :class:`PriorGraphEncoder` — temporal-graph convolution (Eq. 4–5);
* :class:`DynamicHypergraphBlock` — DHSL block (Eq. 6–8);
* :class:`InteractiveGraphConvolution` — IGC block (Eq. 9–12);
* :class:`MultiScaleExtractor` — MHCE module (Eq. 13–14);
* :class:`DyHSL` — the assembled forecasting model.
"""

from .config import STRUCTURE_LEARNING_MODES, DyHSLConfig
from .dhsl import DynamicHypergraphBlock, HypergraphConvolution, LowRankIncidence
from .embeddings import SpatioTemporalEmbedding
from .igc import InteractiveGraphConvolution
from .mhce import MultiScaleExtractor, ScaleFusion, temporal_max_pool
from .model import DyHSL
from .prior_graph import PriorGraphEncoder, TemporalGraphConvolution

__all__ = [
    "DyHSLConfig",
    "STRUCTURE_LEARNING_MODES",
    "SpatioTemporalEmbedding",
    "PriorGraphEncoder",
    "TemporalGraphConvolution",
    "LowRankIncidence",
    "HypergraphConvolution",
    "DynamicHypergraphBlock",
    "InteractiveGraphConvolution",
    "MultiScaleExtractor",
    "ScaleFusion",
    "temporal_max_pool",
    "DyHSL",
]
