"""Shared interfaces and helpers for the baseline models.

Two families of baselines are reproduced, matching Table III of the paper:

* **statistical baselines** (HA, ARIMA, VAR, SVR) subclass
  :class:`StatisticalForecaster` and operate directly on raw flow values:
  ``fit(signal)`` sees the chronological training portion as a ``(T, N)``
  array, ``forecast(windows)`` maps raw input windows ``(samples, T, N)`` to
  predictions ``(samples, T', N)``;
* **neural baselines** are ordinary :class:`repro.nn.Module` subclasses with
  the same input/output convention as DyHSL (normalised ``(B, T, N, F)`` in,
  normalised ``(B, T', N)`` out) so they can reuse the same
  :class:`repro.training.Trainer`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StatisticalForecaster", "build_lag_matrix"]


class StatisticalForecaster:
    """Base class for the classical (non-neural) baselines.

    Parameters
    ----------
    horizon:
        Number of future steps ``T'`` to predict.
    """

    def __init__(self, horizon: int = 12) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self._fitted = False

    def fit(self, signal: np.ndarray) -> "StatisticalForecaster":
        """Fit the model on the training portion of the raw signal ``(T, N)``."""
        signal = self._validate_signal(signal)
        self._fit(signal)
        self._fitted = True
        return self

    def forecast(self, windows: np.ndarray) -> np.ndarray:
        """Forecast ``horizon`` steps for every raw input window.

        Parameters
        ----------
        windows:
            Array of shape ``(samples, input_length, N)``.

        Returns
        -------
        numpy.ndarray
            Predictions of shape ``(samples, horizon, N)``.
        """
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before forecasting")
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 3:
            raise ValueError(f"windows must have shape (samples, T, N); got {windows.shape}")
        return self._forecast(windows)

    # Subclass hooks -----------------------------------------------------
    def _fit(self, signal: np.ndarray) -> None:
        raise NotImplementedError

    def _forecast(self, windows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # Helpers ------------------------------------------------------------
    @staticmethod
    def _validate_signal(signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=float)
        if signal.ndim != 2:
            raise ValueError(f"signal must have shape (T, N); got {signal.shape}")
        if signal.shape[0] < 2:
            raise ValueError("signal must contain at least two time steps")
        return signal


def build_lag_matrix(signal: np.ndarray, order: int) -> tuple:
    """Build a lagged design matrix for autoregressive fitting.

    Parameters
    ----------
    signal:
        Array of shape ``(T,)`` (single series) or ``(T, N)``.
    order:
        Number of lags ``p``.

    Returns
    -------
    design:
        Array of shape ``(T - p, p)`` or ``(T - p, p * N)`` with lag ``1``
        first (most recent observation leftmost).
    target:
        Array of shape ``(T - p,)`` or ``(T - p, N)``.
    """
    signal = np.asarray(signal, dtype=float)
    if order <= 0:
        raise ValueError("order must be positive")
    if signal.shape[0] <= order:
        raise ValueError(f"signal of length {signal.shape[0]} too short for order {order}")
    steps = signal.shape[0]
    rows = []
    for lag in range(1, order + 1):
        rows.append(signal[order - lag:steps - lag])
    if signal.ndim == 1:
        design = np.stack(rows, axis=1)
    else:
        design = np.concatenate(rows, axis=1)
    target = signal[order:]
    return design, target
