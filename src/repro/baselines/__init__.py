"""Baseline forecasting models reproduced from the paper's Table III."""

from .agcrn import AGCRN, AGCRNCell, NodeAdaptiveGraphConv
from .astgcn import ASTGCN, SpatialAttention, TemporalAttention
from .base import StatisticalForecaster, build_lag_matrix
from .dcrnn import DCGRUCell, DCRNN, DiffusionConv
from .graph_wavenet import AdaptiveGraphConv, GraphWaveNet
from .hypergraph_models import DHGNNForecaster, HGCRNN, StaticHypergraphConv, neighbourhood_hypergraph
from .registry import BASELINE_REGISTRY, BaselineSpec, available_baselines, create_baseline
from .sequence import FCLSTM, GRUEncoderDecoder, TCNForecaster
from .statistical import ARIMAForecaster, HistoricalAverage, SVRForecaster, VARForecaster
from .stgcn import ChebGraphConv, STConvBlock, STGCN
from .stsgcn import STSGCN, SynchronousGraphConv

__all__ = [
    "ASTGCN",
    "SpatialAttention",
    "TemporalAttention",
    "DHGNNForecaster",
    "HGCRNN",
    "StaticHypergraphConv",
    "neighbourhood_hypergraph",
    "StatisticalForecaster",
    "build_lag_matrix",
    "HistoricalAverage",
    "ARIMAForecaster",
    "VARForecaster",
    "SVRForecaster",
    "FCLSTM",
    "TCNForecaster",
    "GRUEncoderDecoder",
    "STGCN",
    "STConvBlock",
    "ChebGraphConv",
    "DCRNN",
    "DCGRUCell",
    "DiffusionConv",
    "GraphWaveNet",
    "AdaptiveGraphConv",
    "AGCRN",
    "AGCRNCell",
    "NodeAdaptiveGraphConv",
    "STSGCN",
    "SynchronousGraphConv",
    "BaselineSpec",
    "BASELINE_REGISTRY",
    "available_baselines",
    "create_baseline",
]
