"""STGCN baseline (Yu, Yin & Zhu, IJCAI 2018).

Spatio-Temporal Graph Convolutional Network: two ST-Conv blocks, each a
"sandwich" of a gated temporal convolution, a Chebyshev spectral graph
convolution and another gated temporal convolution, followed by an output
layer that maps the remaining temporal dimension to the forecast horizon.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.adjacency import chebyshev_polynomials
from ..nn import Dropout, LayerNorm, Linear, Module, ModuleList, Parameter, TemporalConv
from ..tensor import Tensor, init, ops

__all__ = ["ChebGraphConv", "STConvBlock", "STGCN"]


class ChebGraphConv(Module):
    """Chebyshev polynomial spectral graph convolution.

    Applies ``sum_k T_k(L̃) X W_k`` where ``T_k`` are Chebyshev polynomials
    of the scaled Laplacian — the spatial operator of STGCN.
    """

    def __init__(self, adjacency: np.ndarray, in_channels: int, out_channels: int, order: int = 2) -> None:
        super().__init__()
        self.order = order
        polynomials = chebyshev_polynomials(adjacency, order)
        self._polynomials = [Tensor(p) for p in polynomials]
        self.weight = Parameter(
            init.xavier_uniform((len(polynomials) * in_channels, out_channels)), name="cheb_weight"
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="cheb_bias")

    def forward(self, x: Tensor) -> Tensor:
        """Apply the graph convolution to ``(..., N, C)`` input."""
        supports = [polynomial.matmul(x) for polynomial in self._polynomials]
        stacked = ops.concatenate(supports, axis=-1)
        return ops.tensordot_last(stacked, self.weight) + self.bias


class STConvBlock(Module):
    """One temporal-spatial-temporal "sandwich" block of STGCN."""

    def __init__(
        self,
        adjacency: np.ndarray,
        in_channels: int,
        spatial_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        cheb_order: int = 2,
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        self.temporal_first = TemporalConv(in_channels, out_channels, kernel_size)
        self.graph_conv = ChebGraphConv(adjacency, out_channels, spatial_channels, cheb_order)
        self.temporal_second = TemporalConv(spatial_channels, out_channels, kernel_size)
        self.norm = LayerNorm(out_channels)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        """Process ``(B, T, N, C)`` and return ``(B, T - 2*(k-1), N, C_out)``."""
        batch, steps, nodes, channels = x.shape
        # Temporal convolution operates on (B*N, C, T).
        as_series = x.transpose(0, 2, 3, 1).reshape(batch * nodes, channels, steps)
        out = self.temporal_first(as_series)
        steps_after = out.shape[-1]
        out = out.reshape(batch, nodes, -1, steps_after).transpose(0, 3, 1, 2)  # (B, T', N, C)
        out = self.graph_conv(out).relu()
        batch2, steps2, nodes2, channels2 = out.shape
        as_series = out.transpose(0, 2, 3, 1).reshape(batch2 * nodes2, channels2, steps2)
        out = self.temporal_second(as_series)
        final_steps = out.shape[-1]
        out = out.reshape(batch, nodes, -1, final_steps).transpose(0, 3, 1, 2)
        return self.dropout(self.norm(out))


class STGCN(Module):
    """Full STGCN forecaster.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``(N, N)``.
    input_dim:
        Raw feature dimension ``F``.
    hidden_channels:
        Channel width of the ST-Conv blocks.
    horizon:
        Forecast horizon ``T'``.
    input_length:
        Observation window ``T`` (needed to size the output layer).
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        input_dim: int = 1,
        hidden_channels: int = 32,
        spatial_channels: int = 16,
        horizon: int = 12,
        input_length: int = 12,
        kernel_size: int = 3,
    ) -> None:
        super().__init__()
        self.block_first = STConvBlock(adjacency, input_dim, spatial_channels, hidden_channels, kernel_size)
        self.block_second = STConvBlock(adjacency, hidden_channels, spatial_channels, hidden_channels, kernel_size)
        remaining = input_length - 4 * (kernel_size - 1)
        if remaining <= 0:
            raise ValueError(
                f"input_length={input_length} too short for two ST-Conv blocks with kernel_size={kernel_size}"
            )
        self.head = Linear(remaining * hidden_channels, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        out = self.block_first(x)
        out = self.block_second(out)
        batch, steps, nodes, channels = out.shape
        flattened = out.transpose(0, 2, 1, 3).reshape(batch, nodes, steps * channels)
        return self.head(flattened).swapaxes(-1, -2)
