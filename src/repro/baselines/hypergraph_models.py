"""Hypergraph-based baselines: DHGNN and HGC-RNN.

These are the two baselines most closely related to DyHSL's contribution —
both use hypergraph convolution, but with *fixed* (not learned) hypergraph
structures:

* **DHGNN** (Jiang et al., IJCAI 2019) builds hypergraphs from the data with
  kNN / clustering and performs hypergraph convolution on them.  The paper
  adapts it to traffic forecasting; here the kNN hypergraph is built once
  from each sensor's training-time feature profile and the HGNN propagation
  operator is applied per time step before a recurrent readout.
* **HGC-RNN** (Yi & Park, KDD 2020) combines hypergraph convolution with a
  recurrent network, using a *predefined* hypergraph.  Here the predefined
  hypergraph is derived from the road network (one hyperedge per node's
  closed neighbourhood), which is exactly the kind of static prior DyHSL's
  learned structure is meant to replace.

Both follow the library convention: normalised ``(B, T, N, F)`` in,
normalised ``(B, T', N)`` out, trainable with :class:`repro.training.Trainer`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.adjacency import validate_adjacency
from ..graph.hypergraph import hypergraph_convolution_operator, knn_hypergraph
from ..nn import GRUCell, Linear, Module
from ..tensor import Tensor, ops

__all__ = ["StaticHypergraphConv", "DHGNNForecaster", "HGCRNN", "neighbourhood_hypergraph"]


def neighbourhood_hypergraph(adjacency: np.ndarray) -> np.ndarray:
    """One hyperedge per node containing its closed road-network neighbourhood.

    This is the standard way to derive a hypergraph from a plain graph and
    serves as the *predefined* structure required by HGC-RNN.
    """
    adjacency = validate_adjacency(adjacency)
    incidence = (adjacency > 0).astype(float)
    np.fill_diagonal(incidence, 1.0)
    return incidence


class StaticHypergraphConv(Module):
    """HGNN-style convolution with a fixed propagation operator.

    Applies ``G X W`` where ``G = D_v^{-1/2} Λ D_e^{-1} Λ^T D_v^{-1/2}`` is
    precomputed from a static incidence matrix.
    """

    def __init__(self, incidence: np.ndarray, in_channels: int, out_channels: int) -> None:
        super().__init__()
        operator = hypergraph_convolution_operator(np.asarray(incidence, dtype=float))
        self._operator = Tensor(operator)
        self.linear = Linear(in_channels, out_channels)

    def forward(self, x: Tensor) -> Tensor:
        """Convolve ``(..., N, C)`` node features over the static hypergraph."""
        propagated = self._operator.matmul(x)
        return self.linear(propagated)


class DHGNNForecaster(Module):
    """DHGNN adapted to traffic forecasting.

    The hypergraph is built with kNN over per-sensor historical profiles
    (mean daily pattern is unavailable offline, so sensor coordinates plus
    degree statistics of the road network are used as the clustering
    features, which keeps the construction deterministic).  Two stacked
    hypergraph convolutions per time step feed a GRU readout and a
    multi-horizon head.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``(N, N)``.
    coordinates:
        Optional sensor coordinates ``(N, 2)`` used for the kNN hypergraph;
        when omitted, rows of the adjacency matrix are used as features.
    num_neighbors:
        Hyperedge size parameter ``k`` of the kNN construction.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        coordinates: Optional[np.ndarray] = None,
        input_dim: int = 1,
        hidden_dim: int = 32,
        num_neighbors: int = 4,
        horizon: int = 12,
    ) -> None:
        super().__init__()
        adjacency = validate_adjacency(adjacency)
        num_nodes = adjacency.shape[0]
        if coordinates is None:
            features = adjacency + np.eye(num_nodes)
        else:
            coordinates = np.asarray(coordinates, dtype=float)
            degrees = adjacency.sum(axis=1, keepdims=True)
            features = np.concatenate([coordinates, degrees], axis=1)
        num_neighbors = min(num_neighbors, num_nodes - 1)
        incidence = knn_hypergraph(features, num_neighbors)
        self.conv_first = StaticHypergraphConv(incidence, input_dim, hidden_dim)
        self.conv_second = StaticHypergraphConv(incidence, hidden_dim, hidden_dim)
        self.recurrence = GRUCell(hidden_dim, hidden_dim)
        self.head = Linear(hidden_dim, horizon)
        self.horizon = horizon
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor) -> Tensor:
        """Forecast from ``(B, T, N, F)`` to ``(B, T', N)``."""
        steps = x.shape[1]
        hidden = None
        for step in range(steps):
            frame = x[:, step]                       # (B, N, F)
            spatial = self.conv_first(frame).relu()
            spatial = self.conv_second(spatial).relu()
            hidden = self.recurrence(spatial, hidden)
        return self.head(hidden).swapaxes(-1, -2)


class HGCRNN(Module):
    """HGC-RNN: recurrent model whose input transform is a hypergraph convolution.

    The hypergraph is the *predefined* closed-neighbourhood structure of the
    road network (one hyperedge per sensor), contrasting with DyHSL's learned
    incidence matrix.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``(N, N)``.
    input_dim / hidden_dim / horizon:
        Usual model dimensions.
    """

    def __init__(self, adjacency: np.ndarray, input_dim: int = 1, hidden_dim: int = 32, horizon: int = 12) -> None:
        super().__init__()
        incidence = neighbourhood_hypergraph(adjacency)
        self.hyper_conv = StaticHypergraphConv(incidence, input_dim, hidden_dim)
        self.recurrence = GRUCell(hidden_dim, hidden_dim)
        self.head = Linear(hidden_dim, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        """Forecast from ``(B, T, N, F)`` to ``(B, T', N)``."""
        steps = x.shape[1]
        hidden = None
        for step in range(steps):
            frame = self.hyper_conv(x[:, step]).relu()
            hidden = self.recurrence(frame, hidden)
        return self.head(hidden).swapaxes(-1, -2)
