"""Baseline registry.

Maps the model names used in the paper's Table III to factory functions so
the benchmark harness (and the examples) can instantiate every baseline with
one call.  Each entry records the *family* the paper groups it under:
``statistical``, ``sequence`` (no spatial graph) or ``graph``
(spatio-temporal GNN), plus the proposed model itself.

Every *neural* entry is compatible with the graph-free inference runtime:
``repro.runtime.compile_module(model)`` traces its forward into a flat
kernel plan whose outputs match the autograd forward within 1e-10
(asserted by ``tests/runtime/test_parity.py``); recurrent baselines simply
unroll their time loops into the plan.  Statistical entries implement the
``fit``/``forecast`` interface directly on raw arrays and need no runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core import DyHSL, DyHSLConfig
from .agcrn import AGCRN
from .astgcn import ASTGCN
from .dcrnn import DCRNN
from .graph_wavenet import GraphWaveNet
from .hypergraph_models import DHGNNForecaster, HGCRNN
from .sequence import FCLSTM, GRUEncoderDecoder, TCNForecaster
from .statistical import ARIMAForecaster, HistoricalAverage, SVRForecaster, VARForecaster
from .stgcn import STGCN
from .stsgcn import STSGCN

__all__ = ["BaselineSpec", "BASELINE_REGISTRY", "available_baselines", "create_baseline"]


@dataclass(frozen=True)
class BaselineSpec:
    """Metadata and factory for one model.

    Attributes
    ----------
    name:
        Name as used in the paper's tables.
    family:
        ``statistical``, ``sequence``, ``graph`` or ``proposed``.
    neural:
        Whether the model is trained with the gradient-based
        :class:`repro.training.Trainer` (otherwise it implements the
        statistical ``fit``/``forecast`` interface).
    factory:
        Callable ``(adjacency, num_nodes, horizon, input_length, hidden) -> model``.
    """

    name: str
    family: str
    neural: bool
    factory: Callable


def _make_registry() -> Dict[str, BaselineSpec]:
    registry: Dict[str, BaselineSpec] = {}

    def register(name: str, family: str, neural: bool, factory: Callable) -> None:
        registry[name] = BaselineSpec(name=name, family=family, neural=neural, factory=factory)

    # Statistical models -------------------------------------------------
    register("HA", "statistical", False, lambda adjacency, num_nodes, horizon, input_length, hidden: HistoricalAverage(horizon=horizon))
    register("ARIMA", "statistical", False, lambda adjacency, num_nodes, horizon, input_length, hidden: ARIMAForecaster(horizon=horizon))
    register("VAR", "statistical", False, lambda adjacency, num_nodes, horizon, input_length, hidden: VARForecaster(horizon=horizon))
    register("SVR", "statistical", False, lambda adjacency, num_nodes, horizon, input_length, hidden: SVRForecaster(horizon=horizon, order=input_length))

    # Sequence models (no spatial graph) ---------------------------------
    register("FC-LSTM", "sequence", True, lambda adjacency, num_nodes, horizon, input_length, hidden: FCLSTM(hidden_dim=hidden, horizon=horizon))
    register("TCN", "sequence", True, lambda adjacency, num_nodes, horizon, input_length, hidden: TCNForecaster(channels=hidden, horizon=horizon))
    register("GRU-ED", "sequence", True, lambda adjacency, num_nodes, horizon, input_length, hidden: GRUEncoderDecoder(hidden_dim=hidden, horizon=horizon))

    # Spatio-temporal graph models ---------------------------------------
    register("STGCN", "graph", True, lambda adjacency, num_nodes, horizon, input_length, hidden: STGCN(adjacency, hidden_channels=hidden, horizon=horizon, input_length=input_length))
    register("DCRNN", "graph", True, lambda adjacency, num_nodes, horizon, input_length, hidden: DCRNN(adjacency, hidden_dim=hidden, horizon=horizon))
    register("GraphWaveNet", "graph", True, lambda adjacency, num_nodes, horizon, input_length, hidden: GraphWaveNet(adjacency, num_nodes, channels=hidden, horizon=horizon))
    register("AGCRN", "graph", True, lambda adjacency, num_nodes, horizon, input_length, hidden: AGCRN(num_nodes, hidden_dim=hidden, horizon=horizon))
    register("STSGCN", "graph", True, lambda adjacency, num_nodes, horizon, input_length, hidden: STSGCN(adjacency, num_nodes, hidden_dim=hidden, horizon=horizon))
    register("ASTGCN", "graph", True, lambda adjacency, num_nodes, horizon, input_length, hidden: ASTGCN(adjacency, num_nodes, hidden_dim=hidden, horizon=horizon, input_length=input_length))
    register("DHGNN", "graph", True, lambda adjacency, num_nodes, horizon, input_length, hidden: DHGNNForecaster(adjacency, hidden_dim=hidden, horizon=horizon))
    register("HGC-RNN", "graph", True, lambda adjacency, num_nodes, horizon, input_length, hidden: HGCRNN(adjacency, hidden_dim=hidden, horizon=horizon))

    # Proposed model ------------------------------------------------------
    def dyhsl_factory(adjacency, num_nodes, horizon, input_length, hidden):
        config = DyHSLConfig(
            num_nodes=num_nodes,
            input_length=input_length,
            output_length=horizon,
            hidden_dim=hidden,
            prior_layers=2,
            num_hyperedges=min(32, max(8, hidden // 2)),
            window_sizes=tuple(size for size in (1, 2, 3, 4, 6, 12) if input_length % size == 0),
            mhce_layers=2,
        )
        return DyHSL(config, adjacency)

    register("DyHSL", "proposed", True, dyhsl_factory)
    return registry


#: Name -> specification of every reproducible model.
BASELINE_REGISTRY: Dict[str, BaselineSpec] = _make_registry()


def available_baselines(family: Optional[str] = None) -> List[str]:
    """List registered model names, optionally filtered by family."""
    names = [
        name for name, spec in BASELINE_REGISTRY.items() if family is None or spec.family == family
    ]
    return names


def create_baseline(
    name: str,
    adjacency: np.ndarray,
    num_nodes: int,
    horizon: int = 12,
    input_length: int = 12,
    hidden_dim: int = 32,
):
    """Instantiate a registered model by name.

    Parameters
    ----------
    name:
        Registered model name (see :func:`available_baselines`).
    adjacency:
        Road-network adjacency ``(N, N)``; ignored by models that do not use
        the spatial graph.
    num_nodes:
        Number of sensors ``N``.
    horizon / input_length:
        Forecasting horizon ``T'`` and observation window ``T``.
    hidden_dim:
        Hidden width used by the neural models.
    """
    if name not in BASELINE_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(BASELINE_REGISTRY)}")
    spec = BASELINE_REGISTRY[name]
    return spec.factory(np.asarray(adjacency, dtype=float), num_nodes, horizon, input_length, hidden_dim)
