"""Graph WaveNet baseline (Wu et al., IJCAI 2019).

Combines dilated causal temporal convolutions (gated, WaveNet style) with
graph convolutions that mix a fixed diffusion support built from the road
network and a *self-adaptive adjacency* learned from two node embedding
matrices — the feature the paper credits Graph WaveNet for.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.adjacency import random_walk_normalize
from ..nn import CausalConv1d, Dropout, Linear, Module, ModuleList, Parameter
from ..tensor import Tensor, init, ops

__all__ = ["AdaptiveGraphConv", "GraphWaveNet"]


class AdaptiveGraphConv(Module):
    """Graph convolution over fixed + learned adaptive supports."""

    def __init__(
        self,
        adjacency: np.ndarray,
        num_nodes: int,
        in_channels: int,
        out_channels: int,
        embedding_dim: int = 10,
    ) -> None:
        super().__init__()
        forward = random_walk_normalize(adjacency, add_loops=True)
        backward = random_walk_normalize(adjacency.T, add_loops=True)
        self._supports = [Tensor(forward), Tensor(backward)]
        self.source_embedding = Parameter(init.normal((num_nodes, embedding_dim), std=0.1), name="source_embedding")
        self.target_embedding = Parameter(init.normal((embedding_dim, num_nodes), std=0.1), name="target_embedding")
        num_supports = len(self._supports) + 1
        self.weight = Parameter(
            init.xavier_uniform((num_supports * in_channels, out_channels)), name="gwnet_weight"
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="gwnet_bias")

    def adaptive_adjacency(self) -> Tensor:
        """Self-adaptive adjacency ``softmax(relu(E1 E2))``."""
        scores = self.source_embedding.matmul(self.target_embedding).relu()
        return scores.softmax(axis=-1)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the convolution to ``(..., N, C)`` input."""
        supports = [support.matmul(x) for support in self._supports]
        supports.append(self.adaptive_adjacency().matmul(x))
        stacked = ops.concatenate(supports, axis=-1)
        return ops.tensordot_last(stacked, self.weight) + self.bias


class GraphWaveNet(Module):
    """Compact Graph WaveNet forecaster.

    Each layer applies a gated dilated causal convolution along time,
    followed by the adaptive graph convolution across nodes, with residual
    and skip connections.  The skip aggregate at the final time step feeds a
    two-layer output head.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``(N, N)``.
    num_nodes:
        Number of sensors ``N``.
    input_dim:
        Raw feature dimension ``F``.
    channels:
        Residual channel width.
    num_layers:
        Number of gated temporal + graph convolution layers.
    horizon:
        Forecast horizon ``T'``.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        num_nodes: int,
        input_dim: int = 1,
        channels: int = 32,
        skip_channels: int = 64,
        num_layers: int = 3,
        kernel_size: int = 2,
        horizon: int = 12,
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        self.input_projection = Linear(input_dim, channels)
        self.filter_convs = ModuleList(
            [CausalConv1d(channels, channels, kernel_size, dilation=2 ** layer) for layer in range(num_layers)]
        )
        self.gate_convs = ModuleList(
            [CausalConv1d(channels, channels, kernel_size, dilation=2 ** layer) for layer in range(num_layers)]
        )
        self.graph_convs = ModuleList(
            [AdaptiveGraphConv(adjacency, num_nodes, channels, channels) for _ in range(num_layers)]
        )
        self.skip_projections = ModuleList([Linear(channels, skip_channels) for _ in range(num_layers)])
        self.dropout = Dropout(dropout)
        self.head_hidden = Linear(skip_channels, skip_channels)
        self.head_out = Linear(skip_channels, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, nodes, _ = x.shape
        hidden = self.input_projection(x)  # (B, T, N, C)
        skip_total = None
        for layer in range(len(self.filter_convs)):
            residual = hidden
            # Temporal gated convolution on (B*N, C, T).
            channels = hidden.shape[-1]
            series = hidden.transpose(0, 2, 3, 1).reshape(batch * nodes, channels, steps)
            filtered = self.filter_convs[layer](series).tanh()
            gated = self.gate_convs[layer](series).sigmoid()
            series = filtered * gated
            hidden = series.reshape(batch, nodes, channels, steps).transpose(0, 3, 1, 2)
            # Spatial adaptive graph convolution.
            hidden = self.graph_convs[layer](hidden).relu()
            hidden = self.dropout(hidden)
            hidden = hidden + residual
            # Skip connection from the last time step of this layer.
            skip = self.skip_projections[layer](hidden[:, -1])  # (B, N, skip)
            skip_total = skip if skip_total is None else skip_total + skip
        head = self.head_hidden(skip_total.relu()).relu()
        return self.head_out(head).swapaxes(-1, -2)
