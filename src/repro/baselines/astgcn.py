"""ASTGCN(r) baseline (Guo et al., AAAI 2019).

Attention-based Spatial-Temporal Graph Convolutional Network.  The model
re-weights the spatial graph with a learned *spatial attention* matrix and
re-weights the time axis with a *temporal attention* matrix before applying
Chebyshev graph convolution and a temporal convolution.  Following the
paper's Table III, only the "recent" component is reproduced (the (r)
variant); the daily/weekly periodic branches require calendar-aligned
inputs that the 12-step windows do not carry.

The attention mechanism gives the model quadratic cost in both ``N`` and
``T`` — exactly the cost the paper contrasts with DyHSL's linear complexity
(Section IV-D), which makes it a useful scalability counterpoint in the
Table IV style measurements.
"""

from __future__ import annotations

import numpy as np

from ..graph.adjacency import chebyshev_polynomials
from ..nn import Linear, Module, Parameter
from ..tensor import Tensor, init, ops

__all__ = ["SpatialAttention", "TemporalAttention", "ASTGCN"]


class SpatialAttention(Module):
    """Spatial attention producing an ``(B, N, N)`` re-weighting matrix."""

    def __init__(self, num_nodes: int, in_channels: int, num_steps: int) -> None:
        super().__init__()
        self.time_reduce = Parameter(init.xavier_uniform((num_steps, 1)), name="time_reduce")
        self.feature_first = Parameter(init.xavier_uniform((in_channels, in_channels)), name="feature_first")
        self.feature_second = Parameter(init.xavier_uniform((in_channels, 1)), name="feature_second")
        self.bias = Parameter(init.zeros((num_nodes, num_nodes)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        """Compute attention from input ``(B, T, N, C)``."""
        # Collapse time: (B, N, C)
        batch, steps, nodes, channels = x.shape
        collapsed = ops.tensordot_last(x.transpose(0, 2, 3, 1), self.time_reduce).squeeze(-1)  # (B, N, C)
        left = ops.tensordot_last(collapsed, self.feature_first)          # (B, N, C)
        right = ops.tensordot_last(collapsed, self.feature_second)        # (B, N, 1)
        scores = left.matmul(collapsed.swapaxes(-1, -2)) + right + self.bias  # (B, N, N)
        return scores.tanh().softmax(axis=-1)


class TemporalAttention(Module):
    """Temporal attention producing an ``(B, T, T)`` re-weighting matrix."""

    def __init__(self, num_nodes: int, in_channels: int, num_steps: int) -> None:
        super().__init__()
        self.node_reduce = Parameter(init.xavier_uniform((num_nodes, 1)), name="node_reduce")
        self.feature_first = Parameter(init.xavier_uniform((in_channels, in_channels)), name="feature_first")
        self.feature_second = Parameter(init.xavier_uniform((in_channels, 1)), name="feature_second")
        self.bias = Parameter(init.zeros((num_steps, num_steps)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        """Compute attention from input ``(B, T, N, C)``."""
        collapsed = ops.tensordot_last(x.transpose(0, 1, 3, 2), self.node_reduce).squeeze(-1)  # (B, T, C)
        left = ops.tensordot_last(collapsed, self.feature_first)
        right = ops.tensordot_last(collapsed, self.feature_second)         # (B, T, 1)
        scores = left.matmul(collapsed.swapaxes(-1, -2)) + right + self.bias
        return scores.tanh().softmax(axis=-1)


class ASTGCN(Module):
    """Compact ASTGCN(r) forecaster.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``(N, N)``.
    num_nodes:
        Number of sensors ``N``.
    input_dim / hidden_dim / horizon / input_length:
        Usual model dimensions.
    cheb_order:
        Order of the Chebyshev graph convolution.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        num_nodes: int,
        input_dim: int = 1,
        hidden_dim: int = 32,
        horizon: int = 12,
        input_length: int = 12,
        cheb_order: int = 2,
    ) -> None:
        super().__init__()
        self.spatial_attention = SpatialAttention(num_nodes, input_dim, input_length)
        self.temporal_attention = TemporalAttention(num_nodes, input_dim, input_length)
        polynomials = chebyshev_polynomials(adjacency, cheb_order)
        self._polynomials = [Tensor(p) for p in polynomials]
        self.cheb_weight = Parameter(
            init.xavier_uniform((len(polynomials) * input_dim, hidden_dim)), name="cheb_weight"
        )
        self.head = Linear(input_length * hidden_dim, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        """Forecast from ``(B, T, N, F)`` to ``(B, T', N)``."""
        batch, steps, nodes, channels = x.shape
        # Temporal attention re-weights the time axis.
        temporal = self.temporal_attention(x)                      # (B, T, T)
        flattened = x.reshape(batch, steps, nodes * channels)
        reweighted = temporal.matmul(flattened).reshape(batch, steps, nodes, channels)
        # Spatial attention modulates the Chebyshev supports.
        spatial = self.spatial_attention(reweighted)               # (B, N, N)
        supports = []
        for polynomial in self._polynomials:
            modulated = polynomial.unsqueeze(0) * spatial          # (B, N, N)
            supports.append(modulated.unsqueeze(1).matmul(reweighted))  # (B, T, N, C)
        stacked = ops.concatenate(supports, axis=-1)
        convolved = ops.tensordot_last(stacked, self.cheb_weight).relu()  # (B, T, N, H)
        merged = convolved.transpose(0, 2, 1, 3).reshape(batch, nodes, -1)
        return self.head(merged).swapaxes(-1, -2)
