"""AGCRN baseline (Bai et al., NeurIPS 2020).

Adaptive Graph Convolutional Recurrent Network: a GRU whose gate
transformations are *node-adaptive* graph convolutions.  The graph is not
taken from the road network at all — it is inferred from learnable node
embeddings ``E`` as ``softmax(relu(E Eᵀ))`` — and the convolution weights
are generated per node from the same embeddings (node-adaptive parameter
learning), which is the model's signature mechanism.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Linear, Module, Parameter
from ..tensor import Tensor, init, ops

__all__ = ["NodeAdaptiveGraphConv", "AGCRNCell", "AGCRN"]


class NodeAdaptiveGraphConv(Module):
    """Graph convolution with embedding-generated weights and adjacency.

    Parameters
    ----------
    num_nodes:
        Number of sensors ``N``.
    embedding_dim:
        Node embedding width used both for the adaptive adjacency and for
        generating per-node weights.
    in_channels / out_channels:
        Feature dimensions of the convolution.
    """

    def __init__(self, num_nodes: int, embedding_dim: int, in_channels: int, out_channels: int) -> None:
        super().__init__()
        self.node_embeddings = Parameter(init.normal((num_nodes, embedding_dim), std=0.1), name="node_embeddings")
        # Weight pool: per-embedding-dimension weights, combined per node.
        self.weight_pool = Parameter(
            init.xavier_uniform((embedding_dim, 2 * in_channels, out_channels)), name="weight_pool"
        )
        self.bias_pool = Parameter(init.zeros((embedding_dim, out_channels)), name="bias_pool")
        self.in_channels = in_channels
        self.out_channels = out_channels

    def adaptive_adjacency(self) -> Tensor:
        """Learned adjacency ``softmax(relu(E Eᵀ))``."""
        scores = self.node_embeddings.matmul(self.node_embeddings.transpose()).relu()
        return scores.softmax(axis=-1)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the convolution to ``(B, N, C)`` input."""
        adjacency = self.adaptive_adjacency()
        propagated = adjacency.matmul(x)  # (B, N, C)
        combined = ops.concatenate([x, propagated], axis=-1)  # (B, N, 2C)
        # Node-specific weights: W_i = sum_k E_ik * pool_k  -> (N, 2C, C_out)
        weights = ops.tensordot_last(
            self.node_embeddings, self.weight_pool.reshape(self.weight_pool.shape[0], -1)
        ).reshape(self.node_embeddings.shape[0], 2 * self.in_channels, self.out_channels)
        biases = self.node_embeddings.matmul(self.bias_pool)  # (N, C_out)
        # Einsum 'bnc,nco->bno' expressed with broadcasting matmul:
        output = combined.unsqueeze(-2).matmul(weights).squeeze(-2)
        return output + biases


class AGCRNCell(Module):
    """GRU cell whose transforms are node-adaptive graph convolutions."""

    def __init__(self, num_nodes: int, embedding_dim: int, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gate_conv = NodeAdaptiveGraphConv(num_nodes, embedding_dim, input_dim + hidden_dim, 2 * hidden_dim)
        self.candidate_conv = NodeAdaptiveGraphConv(num_nodes, embedding_dim, input_dim + hidden_dim, hidden_dim)

    def forward(self, x: Tensor, hidden: Optional[Tensor] = None) -> Tensor:
        """Update the hidden state for input ``(B, N, F)``."""
        if hidden is None:
            hidden = Tensor(np.zeros(x.shape[:-1] + (self.hidden_dim,)))
        combined = ops.concatenate([x, hidden], axis=-1)
        gates = self.gate_conv(combined).sigmoid()
        reset, update = gates[..., : self.hidden_dim], gates[..., self.hidden_dim:]
        candidate = self.candidate_conv(ops.concatenate([x, reset * hidden], axis=-1)).tanh()
        return update * hidden + (1.0 - update) * candidate


class AGCRN(Module):
    """Adaptive Graph Convolutional Recurrent Network forecaster.

    Parameters
    ----------
    num_nodes:
        Number of sensors ``N``.
    input_dim:
        Raw feature dimension ``F``.
    hidden_dim:
        Recurrent hidden width.
    embedding_dim:
        Node embedding width.
    horizon:
        Forecast horizon ``T'``.
    """

    def __init__(
        self,
        num_nodes: int,
        input_dim: int = 1,
        hidden_dim: int = 32,
        embedding_dim: int = 8,
        horizon: int = 12,
    ) -> None:
        super().__init__()
        self.cell = AGCRNCell(num_nodes, embedding_dim, input_dim, hidden_dim)
        self.head = Linear(hidden_dim, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        """Forecast from ``(B, T, N, F)`` to ``(B, T', N)``."""
        steps = x.shape[1]
        hidden = None
        for step in range(steps):
            hidden = self.cell(x[:, step], hidden)
        return self.head(hidden).swapaxes(-1, -2)
