"""DCRNN baseline (Li et al., ICLR 2018).

Diffusion Convolutional Recurrent Neural Network: a GRU whose gate
transformations are replaced by diffusion convolutions over the road graph
(random-walk transition matrices in both directions, up to ``K`` hops).
The original model is a sequence-to-sequence architecture with scheduled
sampling; this reproduction keeps the diffusion-convolutional encoder and
replaces the autoregressive decoder with a direct multi-horizon projection,
which preserves the model's characteristic spatial operator while keeping
CPU training tractable (the substitution is recorded in DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph.adjacency import validate_adjacency
from ..nn import Linear, Module, Parameter
from ..tensor import Tensor, init, ops

__all__ = ["DiffusionConv", "DCGRUCell", "DCRNN"]


def _random_walk_matrices(adjacency: np.ndarray) -> List[np.ndarray]:
    """Forward and backward random-walk transition matrices."""
    adjacency = validate_adjacency(adjacency)
    out_degree = adjacency.sum(axis=1)
    in_degree = adjacency.sum(axis=0)
    forward = np.divide(adjacency, np.maximum(out_degree, 1e-8)[:, None])
    backward = np.divide(adjacency.T, np.maximum(in_degree, 1e-8)[:, None])
    return [forward, backward]


class DiffusionConv(Module):
    """Bidirectional K-hop diffusion convolution.

    Computes ``sum_{direction} sum_{k=0..K} P_direction^k X W_{direction,k}``
    for input ``(..., N, C)``.
    """

    def __init__(self, adjacency: np.ndarray, in_channels: int, out_channels: int, max_diffusion_step: int = 2) -> None:
        super().__init__()
        if max_diffusion_step < 1:
            raise ValueError("max_diffusion_step must be at least 1")
        self.max_diffusion_step = max_diffusion_step
        supports: List[np.ndarray] = [np.eye(adjacency.shape[0])]
        for transition in _random_walk_matrices(adjacency):
            power = np.eye(adjacency.shape[0])
            for _ in range(max_diffusion_step):
                power = power @ transition
                supports.append(power.copy())
        self._supports = [Tensor(support) for support in supports]
        self.weight = Parameter(
            init.xavier_uniform((len(supports) * in_channels, out_channels)), name="diffusion_weight"
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="diffusion_bias")

    def forward(self, x: Tensor) -> Tensor:
        propagated = [support.matmul(x) for support in self._supports]
        stacked = ops.concatenate(propagated, axis=-1)
        return ops.tensordot_last(stacked, self.weight) + self.bias


class DCGRUCell(Module):
    """GRU cell whose gates use diffusion convolution instead of dense maps."""

    def __init__(self, adjacency: np.ndarray, input_dim: int, hidden_dim: int, max_diffusion_step: int = 2) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.gate_conv = DiffusionConv(adjacency, input_dim + hidden_dim, 2 * hidden_dim, max_diffusion_step)
        self.candidate_conv = DiffusionConv(adjacency, input_dim + hidden_dim, hidden_dim, max_diffusion_step)

    def forward(self, x: Tensor, hidden: Optional[Tensor] = None) -> Tensor:
        """Update the hidden state for input ``(B, N, F)`` and state ``(B, N, H)``."""
        if hidden is None:
            hidden = Tensor(np.zeros(x.shape[:-1] + (self.hidden_dim,)))
        combined = ops.concatenate([x, hidden], axis=-1)
        gates = self.gate_conv(combined).sigmoid()
        reset, update = gates[..., : self.hidden_dim], gates[..., self.hidden_dim:]
        candidate_input = ops.concatenate([x, reset * hidden], axis=-1)
        candidate = self.candidate_conv(candidate_input).tanh()
        return update * hidden + (1.0 - update) * candidate


class DCRNN(Module):
    """Diffusion-convolutional recurrent forecaster.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``(N, N)``.
    input_dim:
        Raw feature dimension ``F``.
    hidden_dim:
        Hidden width of the DCGRU.
    horizon:
        Forecast horizon ``T'``.
    max_diffusion_step:
        Number of diffusion hops ``K``.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        input_dim: int = 1,
        hidden_dim: int = 32,
        horizon: int = 12,
        max_diffusion_step: int = 2,
    ) -> None:
        super().__init__()
        self.cell = DCGRUCell(adjacency, input_dim, hidden_dim, max_diffusion_step)
        self.head = Linear(hidden_dim, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        """Forecast from ``(B, T, N, F)`` to ``(B, T', N)``."""
        steps = x.shape[1]
        hidden = None
        for step in range(steps):
            hidden = self.cell(x[:, step], hidden)
        return self.head(hidden).swapaxes(-1, -2)
