"""Classical statistical baselines: HA, ARIMA, VAR and SVR.

These implement the "traditional statistic-based methods" block of the
paper's Table III.  Each model keeps the per-window interface of
:class:`repro.baselines.base.StatisticalForecaster`: they are fitted on the
raw training signal and then forecast the next ``T'`` steps of every test
window independently.

Implementation notes
--------------------
* **ARIMA** is implemented as a per-node AR(p) model on the differenced
  series (i.e. ARIMA(p, d, 0)) fitted by ridge-regularised least squares —
  the moving-average terms of a full ARIMA require iterative maximum
  likelihood and add little on top of the AR terms for 5-minute traffic
  data.
* **SVR** is a linear support vector regressor on lagged features trained
  with sub-gradient descent on the ε-insensitive loss, shared across nodes.
  The original baseline uses an RBF kernel SVM; the linear version keeps the
  characteristic sparse-support behaviour while staying dependency-free.

Both substitutions are documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor.random import fork_rng
from .base import StatisticalForecaster, build_lag_matrix

__all__ = ["HistoricalAverage", "ARIMAForecaster", "VARForecaster", "SVRForecaster"]


class HistoricalAverage(StatisticalForecaster):
    """Historical Average (HA).

    Predicts every future step as the average of the observed input window
    of the same node — the weighted-average formulation in the paper reduces
    to this when the only available history is the input window.
    """

    def _fit(self, signal: np.ndarray) -> None:
        # HA needs no global statistics; kept for interface symmetry.
        self._global_mean = float(signal.mean())

    def _forecast(self, windows: np.ndarray) -> np.ndarray:
        window_mean = windows.mean(axis=1, keepdims=True)  # (samples, 1, N)
        return np.repeat(window_mean, self.horizon, axis=1)


class ARIMAForecaster(StatisticalForecaster):
    """Per-node AR-integrated model (ARIMA(p, d, 0)).

    Parameters
    ----------
    order:
        Number of autoregressive lags ``p``.
    difference:
        Differencing order ``d`` (0 or 1).
    ridge:
        Ridge regularisation strength of the least-squares fit.
    horizon:
        Forecast horizon ``T'``.
    """

    def __init__(self, order: int = 3, difference: int = 1, ridge: float = 1e-3, horizon: int = 12) -> None:
        super().__init__(horizon)
        if order <= 0:
            raise ValueError("order must be positive")
        if difference not in (0, 1):
            raise ValueError("difference must be 0 or 1")
        self.order = order
        self.difference = difference
        self.ridge = ridge
        self.coefficients: Optional[np.ndarray] = None  # (N, order)
        self.intercepts: Optional[np.ndarray] = None  # (N,)

    def _fit(self, signal: np.ndarray) -> None:
        series = np.diff(signal, axis=0) if self.difference else signal
        num_nodes = signal.shape[1]
        coefficients = np.zeros((num_nodes, self.order))
        intercepts = np.zeros(num_nodes)
        eye = np.eye(self.order + 1) * self.ridge
        eye[0, 0] = 0.0  # do not regularise the intercept
        for node in range(num_nodes):
            design, target = build_lag_matrix(series[:, node], self.order)
            design = np.column_stack([np.ones(design.shape[0]), design])
            gram = design.T @ design + eye
            solution = np.linalg.solve(gram, design.T @ target)
            intercepts[node] = solution[0]
            coefficients[node] = solution[1:]
        self.coefficients = coefficients
        self.intercepts = intercepts

    def _forecast(self, windows: np.ndarray) -> np.ndarray:
        samples, length, num_nodes = windows.shape
        if length <= self.order + self.difference:
            raise ValueError("input window shorter than the AR order")
        series = np.diff(windows, axis=1) if self.difference else windows.copy()
        history = series[:, -self.order:, :]  # (samples, order, N)
        last_level = windows[:, -1, :]
        predictions = np.zeros((samples, self.horizon, num_nodes))
        for step in range(self.horizon):
            # lag 1 is the most recent value: reverse the history block.
            lags = history[:, ::-1, :]
            increment = self.intercepts[None, :] + np.einsum("spn,np->sn", lags, self.coefficients)
            if self.difference:
                last_level = last_level + increment
                predictions[:, step] = last_level
            else:
                predictions[:, step] = increment
            history = np.concatenate([history[:, 1:, :], increment[:, None, :]], axis=1)
        return np.clip(predictions, 0.0, None)


class VARForecaster(StatisticalForecaster):
    """Vector auto-regression over all nodes jointly.

    Parameters
    ----------
    order:
        Number of lags ``p``.
    ridge:
        Ridge regularisation (essential: the design has ``p * N`` columns).
    horizon:
        Forecast horizon ``T'``.
    """

    def __init__(self, order: int = 3, ridge: float = 1.0, horizon: int = 12) -> None:
        super().__init__(horizon)
        if order <= 0:
            raise ValueError("order must be positive")
        self.order = order
        self.ridge = ridge
        self.coefficients: Optional[np.ndarray] = None  # (p * N + 1, N)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _fit(self, signal: np.ndarray) -> None:
        self._mean = signal.mean(axis=0)
        self._std = np.maximum(signal.std(axis=0), 1e-6)
        standardized = (signal - self._mean) / self._std
        design, target = build_lag_matrix(standardized, self.order)
        design = np.column_stack([np.ones(design.shape[0]), design])
        penalty = np.eye(design.shape[1]) * self.ridge
        penalty[0, 0] = 0.0
        gram = design.T @ design + penalty
        self.coefficients = np.linalg.solve(gram, design.T @ target)

    def _forecast(self, windows: np.ndarray) -> np.ndarray:
        samples, length, num_nodes = windows.shape
        if length < self.order:
            raise ValueError("input window shorter than the VAR order")
        standardized = (windows - self._mean[None, None, :]) / self._std[None, None, :]
        history = standardized[:, -self.order:, :]
        predictions = np.zeros((samples, self.horizon, num_nodes))
        for step in range(self.horizon):
            lags = history[:, ::-1, :].reshape(samples, -1)  # lag 1 first
            design = np.column_stack([np.ones(samples), lags])
            forecast = design @ self.coefficients
            predictions[:, step] = forecast
            history = np.concatenate([history[:, 1:, :], forecast[:, None, :]], axis=1)
        return np.clip(predictions * self._std[None, None, :] + self._mean[None, None, :], 0.0, None)


class SVRForecaster(StatisticalForecaster):
    """Linear ε-insensitive support vector regression on lagged features.

    A single regressor per forecast step is shared across nodes: the feature
    vector is the node's own lagged window (standardised), and the model is
    trained with stochastic sub-gradient descent on

    .. math::  \\frac{1}{2}\\lVert w \\rVert^2 + C \\sum_i \\max(0, |y_i - w^T x_i - b| - ε)

    Parameters
    ----------
    c:
        Soft-margin trade-off ``C``.
    epsilon:
        Width of the ε-insensitive tube.
    iterations:
        Number of sub-gradient epochs.
    max_samples:
        Training windows are subsampled to at most this many examples to
        keep the fit fast.
    """

    def __init__(
        self,
        c: float = 1.0,
        epsilon: float = 0.1,
        iterations: int = 80,
        learning_rate: float = 0.01,
        max_samples: int = 4000,
        order: int = 12,
        horizon: int = 12,
    ) -> None:
        super().__init__(horizon)
        self.c = c
        self.epsilon = epsilon
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.max_samples = max_samples
        self.order = order
        self.weights: Optional[np.ndarray] = None  # (horizon, order)
        self.biases: Optional[np.ndarray] = None  # (horizon,)
        self._mean = 0.0
        self._std = 1.0
        self._rng = fork_rng(offset=71)

    def _fit(self, signal: np.ndarray) -> None:
        self._mean = float(signal.mean())
        self._std = float(max(signal.std(), 1e-6))
        standardized = (signal - self._mean) / self._std
        steps, num_nodes = standardized.shape
        usable = steps - self.order - self.horizon + 1
        if usable <= 0:
            raise ValueError("training signal too short for the SVR lag order and horizon")
        # Build (window, future) pairs pooled over nodes, then subsample.
        starts = np.arange(usable)
        features = np.stack([standardized[s:s + self.order] for s in starts], axis=0)  # (u, order, N)
        futures = np.stack(
            [standardized[s + self.order:s + self.order + self.horizon] for s in starts], axis=0
        )  # (u, horizon, N)
        features = features.transpose(0, 2, 1).reshape(-1, self.order)
        futures = futures.transpose(0, 2, 1).reshape(-1, self.horizon)
        if features.shape[0] > self.max_samples:
            chosen = self._rng.choice(features.shape[0], size=self.max_samples, replace=False)
            features, futures = features[chosen], futures[chosen]

        num_examples = features.shape[0]
        weights = np.zeros((self.horizon, self.order))
        biases = np.zeros(self.horizon)
        for step in range(self.horizon):
            w = np.zeros(self.order)
            b = 0.0
            target = futures[:, step]
            for iteration in range(self.iterations):
                lr = self.learning_rate / (1.0 + 0.05 * iteration)
                residual = features @ w + b - target
                outside = np.abs(residual) > self.epsilon
                sign = np.sign(residual) * outside
                grad_w = w + self.c * (features * sign[:, None]).sum(axis=0) / num_examples
                grad_b = self.c * sign.sum() / num_examples
                w -= lr * grad_w
                b -= lr * grad_b
            weights[step] = w
            biases[step] = b
        self.weights = weights
        self.biases = biases

    def _forecast(self, windows: np.ndarray) -> np.ndarray:
        samples, length, num_nodes = windows.shape
        if length < self.order:
            raise ValueError("input window shorter than the SVR lag order")
        standardized = (windows - self._mean) / self._std
        features = standardized[:, -self.order:, :].transpose(0, 2, 1).reshape(-1, self.order)
        outputs = features @ self.weights.T + self.biases[None, :]  # (samples*N, horizon)
        outputs = outputs.reshape(samples, num_nodes, self.horizon).transpose(0, 2, 1)
        return np.clip(outputs * self._std + self._mean, 0.0, None)
