"""STSGCN baseline (Song et al., AAAI 2020).

Spatial-Temporal Synchronous Graph Convolutional Network.  The key idea is a
*localised spatio-temporal graph*: three consecutive time steps are stitched
into one ``3N``-node graph (spatial edges inside each step, temporal edges
connecting the same sensor across adjacent steps), and an ordinary graph
convolution over this localised graph captures spatial and short-range
temporal dependencies *synchronously*.  Sliding the 3-step window over the
input sequence and aggregating with max pooling yields the sequence
representation, which a per-horizon head turns into forecasts.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.adjacency import random_walk_normalize
from ..graph.temporal_graph import build_temporal_adjacency
from ..nn import Dropout, Linear, Module, ModuleList
from ..tensor import Tensor, ops

__all__ = ["SynchronousGraphConv", "STSGCN"]


class SynchronousGraphConv(Module):
    """Graph convolution over the localised 3-step spatio-temporal graph."""

    def __init__(self, adjacency: np.ndarray, in_channels: int, out_channels: int, window: int = 3) -> None:
        super().__init__()
        self.window = window
        localized = build_temporal_adjacency(adjacency, window)
        self._support = Tensor(random_walk_normalize(localized, add_loops=False))
        self.linear = Linear(in_channels, out_channels)

    def forward(self, x: Tensor) -> Tensor:
        """Convolve ``(B, window*N, C)`` over the localised graph."""
        propagated = self._support.matmul(x)
        return self.linear(propagated).relu()


class STSGCN(Module):
    """Compact STSGCN forecaster.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``(N, N)``.
    num_nodes:
        Number of sensors ``N``.
    input_dim:
        Raw feature dimension ``F``.
    hidden_dim:
        Channel width of the synchronous graph convolutions.
    num_layers:
        Number of stacked synchronous convolutions inside each local window.
    horizon:
        Forecast horizon ``T'``.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        num_nodes: int,
        input_dim: int = 1,
        hidden_dim: int = 32,
        num_layers: int = 2,
        horizon: int = 12,
        window: int = 3,
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        self.num_nodes = num_nodes
        self.window = window
        self.input_projection = Linear(input_dim, hidden_dim)
        layers: List[Module] = []
        for _ in range(num_layers):
            layers.append(SynchronousGraphConv(adjacency, hidden_dim, hidden_dim, window))
        self.layers = ModuleList(layers)
        self.dropout = Dropout(dropout)
        self.head = Linear(hidden_dim, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        """Forecast from ``(B, T, N, F)`` to ``(B, T', N)``."""
        batch, steps, nodes, _ = x.shape
        if steps < self.window:
            raise ValueError(f"input length {steps} shorter than the local window {self.window}")
        hidden = self.input_projection(x)  # (B, T, N, C)
        window_outputs: List[Tensor] = []
        for start in range(steps - self.window + 1):
            # Stitch `window` steps into one localised graph (time-major order).
            local = hidden[:, start:start + self.window]  # (B, w, N, C)
            local = local.reshape(batch, self.window * nodes, hidden.shape[-1])
            for layer in self.layers:
                local = layer(local)
                local = self.dropout(local)
            # Keep the representation of the centre time step.
            centre = self.window // 2
            local = local.reshape(batch, self.window, nodes, -1)[:, centre]
            window_outputs.append(local)
        # Max pooling over the sliding windows gives the sequence embedding.
        stacked = ops.stack(window_outputs, axis=1)  # (B, T - w + 1, N, C)
        pooled = stacked.max(axis=1)
        return self.head(pooled).swapaxes(-1, -2)
