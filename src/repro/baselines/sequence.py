"""Sequence-only neural baselines: FC-LSTM, TCN and GRU-ED.

These models ignore the road network entirely and treat every sensor as an
independent univariate series with weights shared across sensors — the
"neural network methods without the spatial graph" block of Table III.
All three follow the library-wide convention: normalised input
``(batch, T, N, F)``, normalised output ``(batch, T', N)``.
"""

from __future__ import annotations

from ..nn import GRU, LSTM, CausalConv1d, Dropout, Linear, Module, ModuleList
from ..tensor import Tensor, ops

__all__ = ["FCLSTM", "TCNForecaster", "GRUEncoderDecoder"]


def _merge_nodes(x: Tensor) -> Tensor:
    """Reshape ``(B, T, N, F)`` to ``(B * N, T, F)`` for shared-weight models."""
    batch, steps, nodes, features = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch * nodes, steps, features)


def _split_nodes(x: Tensor, batch: int, nodes: int) -> Tensor:
    """Reshape ``(B * N, T')`` back to ``(B, T', N)``."""
    horizon = x.shape[-1]
    return x.reshape(batch, nodes, horizon).transpose(0, 2, 1)


class FCLSTM(Module):
    """LSTM with fully-connected output head (FC-LSTM, Sutskever et al.).

    Parameters
    ----------
    input_dim:
        Raw feature dimension ``F``.
    hidden_dim:
        LSTM hidden width.
    horizon:
        Forecast horizon ``T'``.
    num_layers:
        Number of stacked LSTM layers.
    """

    def __init__(self, input_dim: int = 1, hidden_dim: int = 64, horizon: int = 12, num_layers: int = 2) -> None:
        super().__init__()
        self.lstm = LSTM(input_dim, hidden_dim, num_layers=num_layers)
        self.head = Linear(hidden_dim, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        batch, _, nodes, _ = x.shape
        merged = _merge_nodes(x)
        sequence, _ = self.lstm(merged)
        last_hidden = sequence[:, -1, :]
        return _split_nodes(self.head(last_hidden), batch, nodes)


class TCNForecaster(Module):
    """Temporal Convolution Network (Bai et al., 2018).

    A stack of dilated causal convolutions with exponentially growing
    dilation and residual connections, applied per sensor with shared
    weights, followed by a fully connected forecasting head.

    Parameters
    ----------
    input_dim:
        Raw feature dimension ``F``.
    channels:
        Hidden channel width of every convolution layer.
    kernel_size:
        Convolution kernel length.
    num_layers:
        Number of dilated layers (dilation ``2**layer``).
    horizon:
        Forecast horizon ``T'``.
    """

    def __init__(
        self,
        input_dim: int = 1,
        channels: int = 32,
        kernel_size: int = 3,
        num_layers: int = 3,
        horizon: int = 12,
        dropout: float = 0.1,
    ) -> None:
        super().__init__()
        layers = []
        in_channels = input_dim
        for layer in range(num_layers):
            layers.append(
                CausalConv1d(in_channels, channels, kernel_size=kernel_size, dilation=2 ** layer)
            )
            in_channels = channels
        self.convolutions = ModuleList(layers)
        self.dropout = Dropout(dropout)
        self.head = Linear(channels, horizon)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        batch, _, nodes, _ = x.shape
        merged = _merge_nodes(x).swapaxes(-1, -2)  # (B*N, F, T)
        hidden = merged
        for index, convolution in enumerate(self.convolutions):
            output = convolution(hidden).relu()
            output = self.dropout(output)
            # Residual connection once the channel counts match.
            hidden = output + hidden if index > 0 else output
        last_step = hidden[:, :, -1]
        return _split_nodes(self.head(last_step), batch, nodes)


class GRUEncoderDecoder(Module):
    """GRU encoder-decoder for multi-step forecasting (GRU-ED).

    The encoder consumes the input window; the decoder is unrolled for
    ``T'`` steps, feeding its previous prediction back as input.

    Parameters
    ----------
    input_dim:
        Raw feature dimension ``F``.
    hidden_dim:
        GRU hidden width.
    horizon:
        Forecast horizon ``T'``.
    """

    def __init__(self, input_dim: int = 1, hidden_dim: int = 64, horizon: int = 12) -> None:
        super().__init__()
        from ..nn import GRUCell

        self.encoder = GRU(input_dim, hidden_dim)
        self.decoder_cell = GRUCell(1, hidden_dim)
        self.projection = Linear(hidden_dim, 1)
        self.horizon = horizon

    def forward(self, x: Tensor) -> Tensor:
        batch, _, nodes, _ = x.shape
        merged = _merge_nodes(x)
        _, states = self.encoder(merged)
        hidden = states[-1]
        decoder_input = merged[:, -1, 0:1]  # last observed flow value
        outputs = []
        for _ in range(self.horizon):
            hidden = self.decoder_cell(decoder_input, hidden)
            decoder_input = self.projection(hidden)
            outputs.append(decoder_input[:, 0])
        stacked = ops.stack(outputs, axis=-1)  # (B*N, T')
        return _split_nodes(stacked, batch, nodes)
