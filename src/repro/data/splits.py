"""Chronological train / validation / test splitting.

The paper uses the standard 60% / 20% / 20% chronological split
(Section V-A2).  Splitting is done on the raw signal *before* windowing so
no sample straddles a split boundary and no future information leaks into
training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SplitRatios", "chronological_split", "split_indices"]


@dataclass(frozen=True)
class SplitRatios:
    """Fractions of the time axis assigned to each split."""

    train: float = 0.6
    validation: float = 0.2
    test: float = 0.2

    def __post_init__(self) -> None:
        total = self.train + self.validation + self.test
        if not np.isclose(total, 1.0):
            raise ValueError(f"split ratios must sum to 1; got {total}")
        if min(self.train, self.validation, self.test) <= 0:
            raise ValueError("every split ratio must be positive")


def split_indices(num_steps: int, ratios: SplitRatios = SplitRatios()) -> Tuple[slice, slice, slice]:
    """Return slices over the time axis for train / validation / test."""
    if num_steps < 3:
        raise ValueError("need at least 3 time steps to split")
    train_end = int(num_steps * ratios.train)
    validation_end = train_end + int(num_steps * ratios.validation)
    train_end = max(1, train_end)
    validation_end = max(train_end + 1, min(validation_end, num_steps - 1))
    return slice(0, train_end), slice(train_end, validation_end), slice(validation_end, num_steps)


def chronological_split(
    signal: np.ndarray,
    ratios: SplitRatios = SplitRatios(),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a ``(T, ...)`` array chronologically into three parts."""
    signal = np.asarray(signal)
    train_slice, validation_slice, test_slice = split_indices(signal.shape[0], ratios)
    return signal[train_slice], signal[validation_slice], signal[test_slice]
