"""PEMS dataset registry and synthetic dataset construction.

Table II of the paper summarises the four benchmark datasets.  The registry
below records exactly those statistics; :func:`load_dataset` then builds a
synthetic stand-in with the same node count, edge density and (optionally
scaled-down) length using the road-network generator and traffic simulator.

==========  =====  =====  ===========  =====================
Dataset     |V|    |E|    Time steps   Time range
==========  =====  =====  ===========  =====================
PEMS03      358    547    26,208       09/2018 – 11/2018
PEMS04      307    340    16,992       01/2018 – 02/2018
PEMS07      883    866    28,224       05/2017 – 08/2017
PEMS08      170    295    17,856       07/2016 – 08/2016
==========  =====  =====  ===========  =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..graph.road_network import RoadNetwork, corridor_road_network
from .synthetic import TrafficSimulator, TrafficSimulatorConfig

__all__ = ["DatasetSpec", "TrafficDataset", "PEMS_SPECS", "dataset_summary_table", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of a PEMS benchmark dataset (paper Table II)."""

    name: str
    num_nodes: int
    num_edges: int
    num_steps: int
    time_range: str
    features: int = 1

    @property
    def num_days(self) -> float:
        """Length of the recording in days (288 five-minute steps per day)."""
        return self.num_steps / 288.0


#: Registry of the four benchmark datasets used in the paper.
PEMS_SPECS: Dict[str, DatasetSpec] = {
    "PEMS03": DatasetSpec("PEMS03", num_nodes=358, num_edges=547, num_steps=26208, time_range="09/2018 - 11/2018"),
    "PEMS04": DatasetSpec("PEMS04", num_nodes=307, num_edges=340, num_steps=16992, time_range="01/2018 - 02/2018"),
    "PEMS07": DatasetSpec("PEMS07", num_nodes=883, num_edges=866, num_steps=28224, time_range="05/2017 - 08/2017"),
    "PEMS08": DatasetSpec("PEMS08", num_nodes=170, num_edges=295, num_steps=17856, time_range="07/2016 - 08/2016"),
}


def dataset_summary_table() -> list:
    """Rows of Table II: (name, |V|, |E|, time steps, time range)."""
    return [
        (spec.name, spec.num_nodes, spec.num_edges, spec.num_steps, spec.time_range)
        for spec in PEMS_SPECS.values()
    ]


@dataclass
class TrafficDataset:
    """A traffic dataset ready for model training.

    Attributes
    ----------
    spec:
        The published statistics this dataset mirrors (or a custom spec).
    road_network:
        The sensor graph.
    signal:
        Graph signal tensor of shape ``(T, N, F)``.
    time_of_day:
        Per-step fraction of the day, shape ``(T,)``.
    day_of_week:
        Per-step day index (0 = Monday), shape ``(T,)``.
    node_scale / step_scale:
        Down-scaling factors applied relative to the published dataset (1.0
        means full size); recorded so experiments can report them.
    """

    spec: DatasetSpec
    road_network: RoadNetwork
    signal: np.ndarray
    time_of_day: np.ndarray
    day_of_week: np.ndarray
    node_scale: float = 1.0
    step_scale: float = 1.0

    @property
    def num_nodes(self) -> int:
        """Number of sensors in this (possibly scaled) dataset."""
        return self.signal.shape[1]

    @property
    def num_steps(self) -> int:
        """Number of time steps in this (possibly scaled) dataset."""
        return self.signal.shape[0]

    @property
    def adjacency(self) -> np.ndarray:
        """Road-network adjacency matrix."""
        return self.road_network.adjacency

    def describe(self) -> Dict[str, float]:
        """Summary statistics of the traffic signal (useful for sanity checks)."""
        flow = self.signal[..., 0]
        nonzero = flow[flow > 0]
        return {
            "num_nodes": float(self.num_nodes),
            "num_steps": float(self.num_steps),
            "mean_flow": float(nonzero.mean()) if nonzero.size else 0.0,
            "std_flow": float(nonzero.std()) if nonzero.size else 0.0,
            "max_flow": float(flow.max()) if flow.size else 0.0,
            "missing_fraction": float((flow == 0).mean()) if flow.size else 0.0,
        }


def load_dataset(
    name: str,
    node_scale: float = 1.0,
    step_scale: float = 1.0,
    seed: Optional[int] = 0,
    simulator_config: Optional[TrafficSimulatorConfig] = None,
) -> TrafficDataset:
    """Build a synthetic stand-in for a PEMS dataset.

    Parameters
    ----------
    name:
        One of ``PEMS03``, ``PEMS04``, ``PEMS07``, ``PEMS08`` (case
        insensitive).
    node_scale:
        Fraction of the published node count to simulate (CPU-scale
        experiments use e.g. 0.1).  The edge density of the road network is
        preserved.
    step_scale:
        Fraction of the published number of time steps to simulate.
    seed:
        Seed for both the road-network geometry and the traffic simulation.
    simulator_config:
        Override the simulator configuration entirely (its ``num_steps`` is
        still replaced by the scaled step count).

    Returns
    -------
    TrafficDataset
    """
    key = name.upper()
    if key not in PEMS_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(PEMS_SPECS)}")
    spec = PEMS_SPECS[key]
    if not 0 < node_scale <= 1.0 or not 0 < step_scale <= 1.0:
        raise ValueError("node_scale and step_scale must be in (0, 1]")

    num_nodes = max(8, int(round(spec.num_nodes * node_scale)))
    num_steps = max(288, int(round(spec.num_steps * step_scale)))
    # Preserve the edge-per-node density of the original graph through the
    # number of interchange cross links.
    edge_density = spec.num_edges / spec.num_nodes
    cross_links = max(1, int(round((edge_density - 1.0) * num_nodes)) )

    network = corridor_road_network(
        num_nodes,
        num_corridors=max(2, num_nodes // 40 + 2),
        cross_links=cross_links,
        seed=seed,
        name=f"{spec.name}-synthetic",
    )
    config = simulator_config or TrafficSimulatorConfig()
    config = TrafficSimulatorConfig(
        **{**config.__dict__, "num_steps": num_steps, "seed": seed if seed is not None else config.seed}
    )
    simulator = TrafficSimulator(network, config)
    signal, metadata = simulator.generate()
    return TrafficDataset(
        spec=spec,
        road_network=network,
        signal=signal,
        time_of_day=metadata["time_of_day"],
        day_of_week=metadata["day_of_week"],
        node_scale=node_scale,
        step_scale=step_scale,
    )
