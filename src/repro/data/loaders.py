"""Batching data loader and the end-to-end forecasting data pipeline.

:class:`DataLoader` iterates over (input, target) window arrays in shuffled
mini-batches.  :class:`ForecastingData` wires the whole preprocessing chain
together — chronological split, scaler fitted on the training portion,
window slicing for each split — so models and benchmarks can set up an
experiment in a single call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..tensor.random import fork_rng
from .datasets import TrafficDataset
from .scalers import StandardScaler
from .splits import SplitRatios, chronological_split
from .windows import WindowConfig, sliding_windows

__all__ = ["DataLoader", "ForecastingSplit", "ForecastingData"]


class DataLoader:
    """Iterate over windowed samples in mini-batches.

    Parameters
    ----------
    inputs:
        Array of shape ``(num_samples, input_length, N, F)``.
    targets:
        Array of shape ``(num_samples, output_length, N)``.
    batch_size:
        Number of samples per batch.
    shuffle:
        Shuffle the sample order every epoch (training only).
    drop_last:
        Drop the final incomplete batch.
    """

    def __init__(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        inputs = np.asarray(inputs, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if inputs.shape[0] != targets.shape[0]:
            raise ValueError("inputs and targets must contain the same number of samples")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.inputs = inputs
        self.targets = targets
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng or fork_rng(offset=67)

    @property
    def num_samples(self) -> int:
        """Total number of samples."""
        return self.inputs.shape[0]

    def __len__(self) -> int:
        full, rem = divmod(self.num_samples, self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(self.num_samples)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, self.num_samples, self.batch_size):
            batch = order[start:start + self.batch_size]
            if self.drop_last and batch.size < self.batch_size:
                break
            yield self.inputs[batch], self.targets[batch]


@dataclass
class ForecastingSplit:
    """Windowed samples for one split plus its loader factory."""

    inputs: np.ndarray
    targets: np.ndarray

    @property
    def num_samples(self) -> int:
        """Number of windows in this split."""
        return self.inputs.shape[0]

    def loader(self, batch_size: int = 32, shuffle: bool = False) -> DataLoader:
        """Create a :class:`DataLoader` over this split."""
        return DataLoader(self.inputs, self.targets, batch_size=batch_size, shuffle=shuffle)


class ForecastingData:
    """End-to-end preprocessing pipeline for a traffic forecasting experiment.

    The pipeline follows the protocol used by the paper (and the STSGCN data
    release it builds on):

    1. split the raw signal chronologically into 60/20/20;
    2. fit a :class:`StandardScaler` on the training portion only;
    3. normalise the model *inputs* with that scaler while keeping the
       prediction *targets* on the original scale (metrics are reported in
       vehicles / 5 minutes);
    4. slice each split into 12-in / 12-out windows.

    Parameters
    ----------
    dataset:
        The (synthetic) traffic dataset.
    window:
        Input/output horizon configuration.
    ratios:
        Chronological split ratios.

    Example
    -------
    >>> dataset = load_dataset("PEMS08", node_scale=0.1, step_scale=0.05)
    >>> data = ForecastingData(dataset)
    >>> train_loader = data.train.loader(batch_size=16, shuffle=True)
    """

    def __init__(
        self,
        dataset: TrafficDataset,
        window: Optional[WindowConfig] = None,
        ratios: SplitRatios = SplitRatios(),
    ) -> None:
        self.dataset = dataset
        self.window = window or WindowConfig()
        self.ratios = ratios

        train_signal, validation_signal, test_signal = chronological_split(dataset.signal, ratios)
        self.scaler = StandardScaler().fit(train_signal[..., 0])

        self.train = self._build_split(train_signal)
        self.validation = self._build_split(validation_signal)
        self.test = self._build_split(test_signal)

    def _build_split(self, signal: np.ndarray) -> ForecastingSplit:
        inputs, targets = sliding_windows(signal, self.window)
        scaled_inputs = inputs.copy()
        scaled_inputs[..., 0] = self.scaler.transform(inputs[..., 0])
        return ForecastingSplit(inputs=scaled_inputs, targets=targets)

    @property
    def adjacency(self) -> np.ndarray:
        """Road-network adjacency of the underlying dataset."""
        return self.dataset.adjacency

    @property
    def num_nodes(self) -> int:
        """Number of sensors."""
        return self.dataset.num_nodes

    def inverse_transform(self, predictions: np.ndarray) -> np.ndarray:
        """Map normalised model outputs back to the original flow scale."""
        return self.scaler.inverse_transform(predictions)
