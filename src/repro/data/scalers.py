"""Feature scaling.

Traffic models are trained on z-score normalised flow and evaluated on the
original scale, so scalers must support an exact inverse transform.  The
scaler is always fitted on the *training* portion only to avoid leaking
statistics from the evaluation period — the standard protocol of the
STSGCN/ASTGCN data pipeline the paper follows.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler", "scaler_from_dict"]


class StandardScaler:
    """Z-score normalisation ``(x - mean) / std``.

    Parameters
    ----------
    epsilon:
        Lower bound on the standard deviation to avoid division by zero for
        constant signals.
    """

    def __init__(self, epsilon: float = 1e-8) -> None:
        self.epsilon = epsilon
        self.mean: Optional[float] = None
        self.std: Optional[float] = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """Estimate mean and standard deviation from ``data``."""
        data = np.asarray(data, dtype=float)
        if data.size == 0:
            raise ValueError("cannot fit a scaler on empty data")
        self.mean = float(data.mean())
        self.std = float(max(data.std(), self.epsilon))
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Normalise ``data`` using the fitted statistics."""
        self._check_fitted()
        return (np.asarray(data, dtype=float) - self.mean) / self.std

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its normalised version."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map normalised values back to the original scale."""
        self._check_fitted()
        return np.asarray(data, dtype=float) * self.std + self.mean

    def _check_fitted(self) -> None:
        if self.mean is None or self.std is None:
            raise RuntimeError("scaler must be fitted before use")

    def to_dict(self) -> Dict[str, float]:
        """Serialisable state (for checkpoints / the serving layer)."""
        self._check_fitted()
        return {"kind": "standard", "mean": self.mean, "std": self.std, "epsilon": self.epsilon}

    @classmethod
    def from_dict(cls, state: Dict[str, float]) -> "StandardScaler":
        """Rebuild a fitted scaler from :meth:`to_dict` output."""
        scaler = cls(epsilon=float(state.get("epsilon", 1e-8)))
        scaler.mean = float(state["mean"])
        scaler.std = float(state["std"])
        return scaler

    def __repr__(self) -> str:
        if self.mean is None:
            return "StandardScaler(unfitted)"
        return f"StandardScaler(mean={self.mean:.4f}, std={self.std:.4f})"


class MinMaxScaler:
    """Scale data linearly into ``[feature_min, feature_max]``."""

    def __init__(self, feature_min: float = 0.0, feature_max: float = 1.0, epsilon: float = 1e-8) -> None:
        if feature_max <= feature_min:
            raise ValueError("feature_max must exceed feature_min")
        self.feature_min = feature_min
        self.feature_max = feature_max
        self.epsilon = epsilon
        self.data_min: Optional[float] = None
        self.data_max: Optional[float] = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        """Record the data minimum and maximum."""
        data = np.asarray(data, dtype=float)
        if data.size == 0:
            raise ValueError("cannot fit a scaler on empty data")
        self.data_min = float(data.min())
        self.data_max = float(data.max())
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Scale ``data`` into the target range."""
        self._check_fitted()
        span = max(self.data_max - self.data_min, self.epsilon)
        unit = (np.asarray(data, dtype=float) - self.data_min) / span
        return unit * (self.feature_max - self.feature_min) + self.feature_min

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its scaled version."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original range."""
        self._check_fitted()
        span = max(self.data_max - self.data_min, self.epsilon)
        unit = (np.asarray(data, dtype=float) - self.feature_min) / (self.feature_max - self.feature_min)
        return unit * span + self.data_min

    def _check_fitted(self) -> None:
        if self.data_min is None or self.data_max is None:
            raise RuntimeError("scaler must be fitted before use")

    def to_dict(self) -> Dict[str, float]:
        """Serialisable state (for checkpoints / the serving layer)."""
        self._check_fitted()
        return {
            "kind": "minmax",
            "data_min": self.data_min,
            "data_max": self.data_max,
            "feature_min": self.feature_min,
            "feature_max": self.feature_max,
            "epsilon": self.epsilon,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, float]) -> "MinMaxScaler":
        """Rebuild a fitted scaler from :meth:`to_dict` output."""
        scaler = cls(
            feature_min=float(state.get("feature_min", 0.0)),
            feature_max=float(state.get("feature_max", 1.0)),
            epsilon=float(state.get("epsilon", 1e-8)),
        )
        scaler.data_min = float(state["data_min"])
        scaler.data_max = float(state["data_max"])
        return scaler

    def __repr__(self) -> str:
        if self.data_min is None:
            return "MinMaxScaler(unfitted)"
        return f"MinMaxScaler(data_min={self.data_min:.4f}, data_max={self.data_max:.4f})"


def scaler_from_dict(state: Dict[str, float]):
    """Dispatch :meth:`to_dict` payloads back to the right scaler class."""
    kind = state.get("kind")
    if kind == "standard":
        return StandardScaler.from_dict(state)
    if kind == "minmax":
        return MinMaxScaler.from_dict(state)
    raise ValueError(f"unknown scaler kind {kind!r}")
