"""Sliding-window sample construction.

The forecasting task maps 12 historical steps to the next 12 steps
(Section V-A2 of the paper: 60 minutes in, 60 minutes out at 5-minute
resolution).  This module slices a ``(T, N, F)`` signal tensor into
overlapping (input, target) windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["WindowConfig", "sliding_windows", "count_windows"]


@dataclass(frozen=True)
class WindowConfig:
    """Input / output horizon configuration.

    Attributes
    ----------
    input_length:
        Number of historical steps fed to the model (``T`` in the paper).
    output_length:
        Number of future steps to predict (``T'`` in the paper).
    stride:
        Offset between the starts of consecutive windows.
    """

    input_length: int = 12
    output_length: int = 12
    stride: int = 1

    def __post_init__(self) -> None:
        if self.input_length <= 0 or self.output_length <= 0 or self.stride <= 0:
            raise ValueError("window lengths and stride must be positive")


def count_windows(num_steps: int, config: WindowConfig) -> int:
    """Number of windows a signal of ``num_steps`` steps yields."""
    usable = num_steps - config.input_length - config.output_length + 1
    if usable <= 0:
        return 0
    return (usable + config.stride - 1) // config.stride


def sliding_windows(
    signal: np.ndarray,
    config: Optional[WindowConfig] = None,
    target_feature: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice a signal tensor into model-ready windows.

    Parameters
    ----------
    signal:
        Array of shape ``(T, N, F)``.
    config:
        Window configuration (defaults to 12-in / 12-out, stride 1).
    target_feature:
        Which feature channel to predict (flow = 0).

    Returns
    -------
    inputs:
        Array of shape ``(num_windows, input_length, N, F)``.
    targets:
        Array of shape ``(num_windows, output_length, N)`` containing the
        selected target feature.
    """
    config = config or WindowConfig()
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 3:
        raise ValueError(f"signal must have shape (T, N, F); got {signal.shape}")
    num_steps = signal.shape[0]
    total = count_windows(num_steps, config)
    if total == 0:
        raise ValueError(
            f"signal with {num_steps} steps is too short for input_length={config.input_length}, "
            f"output_length={config.output_length}"
        )
    if not 0 <= target_feature < signal.shape[2]:
        raise IndexError("target_feature out of range")

    inputs = np.empty((total, config.input_length) + signal.shape[1:], dtype=float)
    targets = np.empty((total, config.output_length, signal.shape[1]), dtype=float)
    for window_index in range(total):
        start = window_index * config.stride
        mid = start + config.input_length
        end = mid + config.output_length
        inputs[window_index] = signal[start:mid]
        targets[window_index] = signal[mid:end, :, target_feature]
    return inputs, targets
