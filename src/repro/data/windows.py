"""Sliding-window sample construction.

The forecasting task maps 12 historical steps to the next 12 steps
(Section V-A2 of the paper: 60 minutes in, 60 minutes out at 5-minute
resolution).  This module slices a ``(T, N, F)`` signal tensor into
overlapping (input, target) windows, and provides the incremental
:class:`StreamingWindows` counterpart used by the serving layer: instead of
re-slicing a growing array for every request, observations are pushed one
step at a time and the latest model-ready window is always available as a
contiguous O(1) view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["WindowConfig", "sliding_windows", "count_windows", "StreamingWindows"]


@dataclass(frozen=True)
class WindowConfig:
    """Input / output horizon configuration.

    Attributes
    ----------
    input_length:
        Number of historical steps fed to the model (``T`` in the paper).
    output_length:
        Number of future steps to predict (``T'`` in the paper).
    stride:
        Offset between the starts of consecutive windows.
    """

    input_length: int = 12
    output_length: int = 12
    stride: int = 1

    def __post_init__(self) -> None:
        if self.input_length <= 0 or self.output_length <= 0 or self.stride <= 0:
            raise ValueError("window lengths and stride must be positive")


def count_windows(num_steps: int, config: WindowConfig) -> int:
    """Number of windows a signal of ``num_steps`` steps yields."""
    usable = num_steps - config.input_length - config.output_length + 1
    if usable <= 0:
        return 0
    return (usable + config.stride - 1) // config.stride


def sliding_windows(
    signal: np.ndarray,
    config: Optional[WindowConfig] = None,
    target_feature: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice a signal tensor into model-ready windows.

    Parameters
    ----------
    signal:
        Array of shape ``(T, N, F)``.
    config:
        Window configuration (defaults to 12-in / 12-out, stride 1).
    target_feature:
        Which feature channel to predict (flow = 0).

    Returns
    -------
    inputs:
        Array of shape ``(num_windows, input_length, N, F)``.
    targets:
        Array of shape ``(num_windows, output_length, N)`` containing the
        selected target feature.
    """
    config = config or WindowConfig()
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 3:
        raise ValueError(f"signal must have shape (T, N, F); got {signal.shape}")
    num_steps = signal.shape[0]
    total = count_windows(num_steps, config)
    if total == 0:
        raise ValueError(
            f"signal with {num_steps} steps is too short for input_length={config.input_length}, "
            f"output_length={config.output_length}"
        )
    if not 0 <= target_feature < signal.shape[2]:
        raise IndexError("target_feature out of range")

    inputs = np.empty((total, config.input_length) + signal.shape[1:], dtype=float)
    targets = np.empty((total, config.output_length, signal.shape[1]), dtype=float)
    for window_index in range(total):
        start = window_index * config.stride
        mid = start + config.input_length
        end = mid + config.output_length
        inputs[window_index] = signal[start:mid]
        targets[window_index] = signal[mid:end, :, target_feature]
    return inputs, targets


class StreamingWindows:
    """Incremental window materialisation over a live observation stream.

    The classic serving problem with :func:`sliding_windows` is that every
    new observation would require re-slicing the full history.  This class
    keeps a double-written ring buffer of the last ``input_length`` steps:
    each step is stored at two mirrored positions of a ``(2 * T, N, F)``
    array, so the latest window is always the contiguous slice
    ``store[cursor : cursor + T]`` — no copying, no re-slicing, O(1) per
    request.

    Parameters
    ----------
    input_length:
        Window length ``T`` fed to the model.
    num_nodes / num_features:
        Spatial and feature dimensions of one observation step.
    dtype:
        Element type of the ring (default float64).  A float32 serving
        deployment (see the runtime's precision policy) can keep its
        streaming ring at single precision so materialised windows enter
        the compiled plan without an upcast-then-downcast round trip.

    Example
    -------
    >>> stream = StreamingWindows(input_length=12, num_nodes=10, num_features=1)
    >>> for step in signal:          # step has shape (10, 1)
    ...     stream.push(step)
    >>> window = stream.latest()     # (12, 10, 1) view, no copy
    """

    def __init__(self, input_length: int, num_nodes: int, num_features: int,
                 dtype=float) -> None:
        if input_length <= 0 or num_nodes <= 0 or num_features <= 0:
            raise ValueError("input_length, num_nodes and num_features must be positive")
        self.input_length = input_length
        self.num_nodes = num_nodes
        self.num_features = num_features
        self._store = np.zeros((2 * input_length, num_nodes, num_features), dtype=dtype)
        self._count = 0

    @property
    def dtype(self) -> np.dtype:
        """Element type of the ring (and therefore of every window)."""
        return self._store.dtype

    @property
    def steps_ingested(self) -> int:
        """Total number of observation steps pushed so far."""
        return self._count

    @property
    def ready(self) -> bool:
        """Whether enough steps have arrived to materialise a full window."""
        return self._count >= self.input_length

    def push(self, step: np.ndarray) -> None:
        """Ingest one observation step of shape ``(N, F)`` (or ``(N,)`` when F=1)."""
        step = np.asarray(step, dtype=self._store.dtype)
        if step.ndim == 1 and self.num_features == 1:
            step = step[:, None]
        if step.shape != (self.num_nodes, self.num_features):
            raise ValueError(
                f"step shape {step.shape} does not match (num_nodes={self.num_nodes}, "
                f"num_features={self.num_features})"
            )
        if np.issubdtype(self._store.dtype, np.inexact) and not np.isfinite(step).all():
            # A single NaN poisons every window (and every cached forecast)
            # it appears in for the next T steps; the ring refuses it at the
            # door.  Streams with genuinely broken detectors go through the
            # serving quality layer, which imputes before pushing.
            bad = np.flatnonzero(~np.isfinite(step).all(axis=-1))
            raise ValueError(
                f"step contains non-finite readings at node(s) {bad.tolist()[:8]}; "
                "route the stream through a SensorHealthMonitor "
                "(repro.serving.quality) to impute broken sensors"
            )
        slot = self._count % self.input_length
        # Double write: the same step lands at ``slot`` and ``slot + T`` so a
        # window is always contiguous regardless of where the cursor sits.
        self._store[slot] = step
        self._store[slot + self.input_length] = step
        self._count += 1

    def update_node(self, node: int, values: np.ndarray) -> None:
        """Overwrite the most recent step of one node (late-arriving sensor)."""
        if self._count == 0:
            raise RuntimeError("no step has been pushed yet")
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        values = np.asarray(values, dtype=self._store.dtype).reshape(self.num_features)
        if np.issubdtype(self._store.dtype, np.inexact) and not np.isfinite(values).all():
            raise ValueError(
                f"correction for node {node} contains non-finite values; "
                "late corrections must carry real readings"
            )
        slot = (self._count - 1) % self.input_length
        self._store[slot, node] = values
        self._store[slot + self.input_length, node] = values

    def latest(self) -> np.ndarray:
        """Latest window ``(T, N, F)`` as a read-only contiguous view."""
        if not self.ready:
            raise RuntimeError(
                f"only {self._count} of {self.input_length} steps ingested; window not ready"
            )
        cursor = self._count % self.input_length
        view = self._store[cursor : cursor + self.input_length]
        view = view.view()
        view.flags.writeable = False
        return view

    def reset(self) -> None:
        """Forget all ingested observations."""
        self._store.fill(0.0)
        self._count = 0

    # ------------------------------------------------------------------
    # State persistence (warm-start serving)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the ring contents and cursor (arrays are copied)."""
        return {"store": self._store.copy(), "count": int(self._count)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot taken from an identically
        shaped — and identically typed — stream; the next :meth:`latest`
        call sees the saved window.

        Dtype and shape must match the live ring exactly: silently casting
        a float64 snapshot into a float32 ring (or vice versa) would change
        the serving precision behind the deployment's back, and a ring from
        a different node count would broadcast garbage into every window.
        """
        store = np.asarray(state["store"])
        if store.dtype != self._store.dtype:
            raise ValueError(
                f"stored ring dtype {store.dtype} does not match this stream's "
                f"{self._store.dtype}; rebuild the stream with dtype={store.dtype} "
                "or save a snapshot at the serving precision"
            )
        if store.shape != self._store.shape:
            raise ValueError(
                f"stored ring shape {store.shape} does not match this stream's {self._store.shape}"
            )
        count = int(state["count"])
        if count < 0:
            raise ValueError(f"step count must be non-negative; got {count}")
        self._store[...] = store
        self._count = count
