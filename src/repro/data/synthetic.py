"""Synthetic PEMS-like traffic flow simulator.

The paper evaluates on four CalTrans PEMS datasets (5-minute aggregated
detector flow).  Those files cannot be downloaded in this offline
environment, so this simulator produces graph signal tensors with the same
statistical character the evaluation relies on:

* **daily periodicity** — morning and evening rush-hour peaks, low overnight
  flow (288 steps per day at 5-minute resolution);
* **weekly periodicity** — weekend profiles differ from weekday profiles
  (flatter, later peak), the effect visible in the paper's Fig. 6 case study;
* **spatial correlation** — each sensor's demand mixes a few regional
  signals ("business area", "residential area" in the paper's Fig. 1), and a
  diffusion pass over the road graph makes neighbouring sensors move
  together;
* **congestion dynamics** — flow propagates downstream with a lag, so
  temporal edges carry information;
* **incidents** — localised multi-sensor drops in flow with spatial decay,
  the "car accident" events the dynamic hypergraph is meant to capture;
* **noise and missing data** — heteroscedastic sensor noise plus a small
  fraction of readings zeroed out, matching how PEMS encodes gaps.

The output is a ``(T, N, F)`` float array (F=1: flow) plus the per-step
time-of-day / day-of-week indices models may use as auxiliary features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..graph.adjacency import random_walk_normalize
from ..graph.road_network import RoadNetwork
from ..tensor.random import fork_rng

__all__ = ["TrafficSimulatorConfig", "TrafficIncident", "TrafficSimulator", "STEPS_PER_DAY"]

#: 5-minute aggregation gives 288 steps per day, as in the PEMS datasets.
STEPS_PER_DAY = 288


@dataclass
class TrafficIncident:
    """A localised traffic incident injected into the simulation.

    Attributes
    ----------
    start_step:
        Time step at which the incident begins.
    duration:
        Number of time steps the incident lasts.
    epicentre:
        Sensor index where the incident happens.
    severity:
        Fractional flow reduction at the epicentre (0.6 = 60% drop).
    radius:
        Spatial decay radius (in hop distance) of the impact.
    """

    start_step: int
    duration: int
    epicentre: int
    severity: float
    radius: float


@dataclass
class TrafficSimulatorConfig:
    """Configuration of the synthetic traffic generator.

    The defaults produce signals whose scale (flow in vehicles / 5 min,
    roughly 0–500) and variability resemble the PEMS benchmark data.
    """

    num_steps: int = 2016  # one week at 5-minute resolution
    base_flow: float = 180.0
    peak_flow: float = 260.0
    num_regions: int = 4
    diffusion_steps: int = 2
    diffusion_strength: float = 0.5
    downstream_lag_steps: int = 1
    downstream_strength: float = 0.25
    noise_std: float = 12.0
    missing_rate: float = 0.005
    incident_rate_per_day: float = 1.5
    incident_min_duration: int = 6
    incident_max_duration: int = 36
    incident_max_severity: float = 0.7
    weekend_scale: float = 0.72
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if not 0.0 <= self.missing_rate < 1.0:
            raise ValueError("missing_rate must be in [0, 1)")
        if self.incident_max_severity < 0 or self.incident_max_severity >= 1:
            raise ValueError("incident_max_severity must be in [0, 1)")
        if self.diffusion_steps < 0:
            raise ValueError("diffusion_steps must be non-negative")


class TrafficSimulator:
    """Generate spatially- and temporally-correlated traffic flow.

    Parameters
    ----------
    road_network:
        The sensor graph whose adjacency drives spatial correlation.
    config:
        Simulation parameters; defaults give PEMS-like weekly data.

    Example
    -------
    >>> network = corridor_road_network(20, seed=0)
    >>> simulator = TrafficSimulator(network, TrafficSimulatorConfig(num_steps=576, seed=0))
    >>> flow, metadata = simulator.generate()
    >>> flow.shape
    (576, 20, 1)
    """

    def __init__(self, road_network: RoadNetwork, config: Optional[TrafficSimulatorConfig] = None) -> None:
        self.road_network = road_network
        self.config = config or TrafficSimulatorConfig()
        seed = self.config.seed
        self._rng = np.random.default_rng(seed) if seed is not None else fork_rng(offset=53)
        self._transition = random_walk_normalize(road_network.adjacency, add_loops=True)

    # ------------------------------------------------------------------
    # Temporal building blocks
    # ------------------------------------------------------------------
    def daily_profile(self, steps: np.ndarray, weekend: np.ndarray) -> np.ndarray:
        """Smooth two-peak daily demand profile in ``[0, 1]``.

        Weekday profiles have a morning (≈8:00) and evening (≈17:30) peak;
        weekend profiles are flatter with a single midday bulge.
        """
        day_fraction = (steps % STEPS_PER_DAY) / STEPS_PER_DAY
        morning = np.exp(-0.5 * ((day_fraction - 8.0 / 24.0) / 0.055) ** 2)
        evening = np.exp(-0.5 * ((day_fraction - 17.5 / 24.0) / 0.065) ** 2)
        midday = np.exp(-0.5 * ((day_fraction - 13.0 / 24.0) / 0.13) ** 2)
        night_floor = 0.08 + 0.05 * np.sin(2 * np.pi * day_fraction)
        weekday_profile = 0.55 * morning + 0.65 * evening + 0.25 * midday + night_floor
        weekend_profile = 0.70 * midday + 0.25 * evening + night_floor
        profile = np.where(weekend, weekend_profile, weekday_profile)
        return np.clip(profile, 0.0, None)

    def _regional_mixture(self, num_nodes: int) -> np.ndarray:
        """Assign each sensor a soft membership over latent demand regions."""
        coordinates = self.road_network.coordinates
        centres_idx = self._rng.choice(num_nodes, size=min(self.config.num_regions, num_nodes), replace=False)
        centres = coordinates[centres_idx]
        distances = np.linalg.norm(coordinates[:, None, :] - centres[None, :, :], axis=-1)
        scale = distances.std() + 1e-8
        weights = np.exp(-distances / scale)
        return weights / weights.sum(axis=1, keepdims=True)

    def _incident_schedule(self, num_nodes: int) -> List[TrafficIncident]:
        """Randomly place incidents across the simulated horizon."""
        num_days = self.config.num_steps / STEPS_PER_DAY
        expected = self.config.incident_rate_per_day * num_days
        count = int(self._rng.poisson(max(expected, 0.0)))
        incidents = []
        for _ in range(count):
            duration = int(self._rng.integers(self.config.incident_min_duration, self.config.incident_max_duration + 1))
            start = int(self._rng.integers(0, max(self.config.num_steps - duration, 1)))
            incidents.append(
                TrafficIncident(
                    start_step=start,
                    duration=duration,
                    epicentre=int(self._rng.integers(0, num_nodes)),
                    severity=float(self._rng.uniform(0.25, self.config.incident_max_severity)),
                    radius=float(self._rng.uniform(1.0, 3.0)),
                )
            )
        return incidents

    def _hop_distances(self, source: int) -> np.ndarray:
        """Breadth-first hop distance from ``source`` to every sensor."""
        adjacency = self.road_network.adjacency > 0
        n = adjacency.shape[0]
        distances = np.full(n, np.inf)
        distances[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                for neighbour in np.nonzero(adjacency[node])[0]:
                    if distances[neighbour] == np.inf:
                        distances[neighbour] = depth
                        next_frontier.append(int(neighbour))
            frontier = next_frontier
        return distances

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def generate(self) -> Tuple[np.ndarray, dict]:
        """Simulate the traffic signal tensor.

        Returns
        -------
        flow:
            Array of shape ``(num_steps, num_nodes, 1)``.
        metadata:
            Dictionary with ``time_of_day`` (fraction of day per step),
            ``day_of_week`` (0=Monday), the incident list and the regional
            mixture matrix — useful for models that consume calendar
            features and for analysis scripts.
        """
        config = self.config
        num_nodes = self.road_network.num_nodes
        steps = np.arange(config.num_steps)
        day_index = steps // STEPS_PER_DAY
        day_of_week = day_index % 7
        weekend = day_of_week >= 5

        profile = self.daily_profile(steps, weekend)  # (T,)
        profile = np.where(weekend, profile * config.weekend_scale, profile)

        # Latent regional demand: each region modulates the shared daily
        # profile with its own slowly-varying random factor.
        mixture = self._regional_mixture(num_nodes)  # (N, R)
        num_regions = mixture.shape[1]
        region_phase = self._rng.uniform(-0.05, 0.05, size=num_regions)
        region_scale = self._rng.uniform(0.75, 1.25, size=num_regions)
        slow_noise = self._rng.normal(0.0, 0.08, size=(config.num_steps // STEPS_PER_DAY + 1, num_regions))

        regional_demand = np.zeros((config.num_steps, num_regions))
        for region in range(num_regions):
            shifted_steps = steps + int(region_phase[region] * STEPS_PER_DAY)
            regional_profile = self.daily_profile(shifted_steps, weekend)
            regional_profile = np.where(weekend, regional_profile * config.weekend_scale, regional_profile)
            daily_factor = 1.0 + slow_noise[day_index, region]
            regional_demand[:, region] = region_scale[region] * regional_profile * daily_factor

        # Per-sensor capacity heterogeneity.
        sensor_capacity = self._rng.uniform(0.7, 1.3, size=num_nodes)
        demand = regional_demand @ mixture.T  # (T, N)
        flow = config.base_flow * 0.15 + config.peak_flow * demand * sensor_capacity[None, :]

        # Spatial smoothing: diffuse along the road graph so neighbours correlate.
        for _ in range(config.diffusion_steps):
            flow = (1.0 - config.diffusion_strength) * flow + config.diffusion_strength * flow @ self._transition.T

        # Downstream propagation: traffic observed upstream appears downstream
        # with a small lag, giving the temporal edges predictive value.
        if config.downstream_lag_steps > 0 and config.downstream_strength > 0:
            lag = config.downstream_lag_steps
            lagged = np.vstack([flow[:lag], flow[:-lag]])
            flow = (1.0 - config.downstream_strength) * flow + config.downstream_strength * (lagged @ self._transition.T)

        # Incidents: localised multiplicative drops with spatial decay.
        incidents = self._incident_schedule(num_nodes)
        for incident in incidents:
            hops = self._hop_distances(incident.epicentre)
            decay = np.exp(-hops / incident.radius)
            decay[~np.isfinite(decay)] = 0.0
            window = slice(incident.start_step, incident.start_step + incident.duration)
            ramp = np.ones(incident.duration)
            ramp_len = max(1, incident.duration // 4)
            ramp[:ramp_len] = np.linspace(0.3, 1.0, ramp_len)
            ramp[-ramp_len:] = np.linspace(1.0, 0.3, ramp_len)
            reduction = 1.0 - incident.severity * ramp[:, None] * decay[None, :]
            flow[window] *= reduction[: flow[window].shape[0]]

        # Sensor noise and missing readings.
        noise = self._rng.normal(0.0, config.noise_std, size=flow.shape)
        flow = np.clip(flow + noise, 0.0, None)
        if config.missing_rate > 0:
            missing = self._rng.random(flow.shape) < config.missing_rate
            flow[missing] = 0.0

        metadata = {
            "time_of_day": (steps % STEPS_PER_DAY) / STEPS_PER_DAY,
            "day_of_week": day_of_week,
            "incidents": incidents,
            "regional_mixture": mixture,
        }
        return flow[..., None], metadata
