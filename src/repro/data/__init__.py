"""Data substrate: synthetic PEMS-like traffic data, windows, scalers, loaders."""

from .datasets import (
    PEMS_SPECS,
    DatasetSpec,
    TrafficDataset,
    dataset_summary_table,
    load_dataset,
)
from .loaders import DataLoader, ForecastingData, ForecastingSplit
from .scalers import MinMaxScaler, StandardScaler, scaler_from_dict
from .splits import SplitRatios, chronological_split, split_indices
from .synthetic import STEPS_PER_DAY, TrafficIncident, TrafficSimulator, TrafficSimulatorConfig
from .windows import StreamingWindows, WindowConfig, count_windows, sliding_windows

__all__ = [
    "DatasetSpec",
    "TrafficDataset",
    "PEMS_SPECS",
    "dataset_summary_table",
    "load_dataset",
    "TrafficSimulator",
    "TrafficSimulatorConfig",
    "TrafficIncident",
    "STEPS_PER_DAY",
    "StandardScaler",
    "MinMaxScaler",
    "scaler_from_dict",
    "WindowConfig",
    "sliding_windows",
    "count_windows",
    "StreamingWindows",
    "SplitRatios",
    "chronological_split",
    "split_indices",
    "DataLoader",
    "ForecastingData",
    "ForecastingSplit",
]
