"""Optimizer base class and gradient utilities.

Optimizers operate on the flat list of :class:`repro.nn.Parameter` objects
returned by ``model.parameters()``.  The interface mirrors PyTorch:
``zero_grad()`` before the backward pass, ``step()`` after it.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm", "clip_grad_value"]


class Optimizer:
    """Base class holding the parameter list and common bookkeeping.

    Parameters
    ----------
    parameters:
        Iterable of :class:`Parameter` objects to optimise.
    lr:
        Learning rate; concrete optimisers may adapt it per step.
    weight_decay:
        L2 penalty coefficient applied as a gradient addition (decoupled
        weight decay is not needed for this reproduction).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay
        self._step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def _gradient(self, parameter: Parameter) -> np.ndarray:
        """Return the parameter gradient, including weight decay."""
        grad = parameter.grad
        if grad is None:
            grad = np.zeros_like(parameter.data)
        if self.weight_decay:
            grad = grad + self.weight_decay * parameter.data
        return grad

    def step(self) -> None:
        """Apply one optimisation step.  Implemented by subclasses."""
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        """Number of ``step()`` calls performed so far.

        Doubles as the parameter-version token of the managed parameters:
        combined with :attr:`repro.nn.Module.weights_version` it lets
        consumers that bake weights into derived state (compiled-plan
        caches) detect updates in O(1) instead of hashing the weights.
        """
        return self._step_count


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip the global L2 norm of all gradients to ``max_norm``.

    Returns the pre-clipping norm so callers can log it.  Parameters without
    gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad = parameter.grad * scale
    return total


def clip_grad_value(parameters: Sequence[Parameter], clip_value: float) -> None:
    """Clamp every gradient element into ``[-clip_value, clip_value]``."""
    if clip_value <= 0:
        raise ValueError("clip_value must be positive")
    for parameter in parameters:
        if parameter.grad is not None:
            np.clip(parameter.grad, -clip_value, clip_value, out=parameter.grad)
