"""Learning-rate schedulers.

Lightweight schedulers that mutate the learning rate of an
:class:`repro.optim.Optimizer` in place.  ``step()`` is called once per
epoch by the trainer.
"""

from __future__ import annotations

import math
from typing import List

from .optimizer import Optimizer

__all__ = ["LRScheduler", "StepLR", "ExponentialLR", "CosineAnnealingLR", "ReduceLROnPlateau"]


class LRScheduler:
    """Base class that tracks the initial learning rate and epoch counter."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:
        """Return the learning rate for the current epoch."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.last_epoch += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        return new_lr


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.last_epoch // self.step_size))


class ExponentialLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** self.last_epoch)


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))


class ReduceLROnPlateau:
    """Halve the learning rate when a monitored metric stops improving.

    Unlike the epoch-indexed schedulers this one is driven by a metric value
    (typically the validation MAE), so ``step(metric)`` must be called with
    the latest measurement.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 5,
        min_lr: float = 1e-6,
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.best = math.inf
        self.bad_epochs = 0
        self.history: List[float] = []

    def step(self, metric: float) -> float:
        """Record ``metric`` and reduce the learning rate if it plateaued."""
        self.history.append(float(metric))
        if metric < self.best - 1e-12:
            self.best = float(metric)
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.bad_epochs = 0
        return self.optimizer.lr
