"""Adam optimizer (Kingma & Ba, 2014), the optimiser used by the paper."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adaptive moment estimation.

    The paper trains DyHSL with Adam, learning rate ``1e-3`` and batch size
    32 for 100 epochs (Section V-A4); those are also this class's defaults.

    Parameters
    ----------
    parameters:
        Parameters to optimise.
    lr:
        Learning rate.
    betas:
        Exponential decay rates of the first and second moment estimates.
    eps:
        Numerical stabiliser added to the denominator.
    weight_decay:
        L2 penalty coefficient.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Update every parameter with bias-corrected moment estimates."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, moment1, moment2 in zip(
            self.parameters, self._first_moment, self._second_moment
        ):
            grad = self._gradient(parameter)
            moment1 *= self.beta1
            moment1 += (1.0 - self.beta1) * grad
            moment2 *= self.beta2
            moment2 += (1.0 - self.beta2) * grad * grad
            corrected1 = moment1 / bias1
            corrected2 = moment2 / bias2
            parameter.data -= self.lr * corrected1 / (np.sqrt(corrected2) + self.eps)
