"""Optimizers and learning-rate schedulers."""

from .adam import Adam
from .lr_scheduler import (
    CosineAnnealingLR,
    ExponentialLR,
    LRScheduler,
    ReduceLROnPlateau,
    StepLR,
)
from .optimizer import Optimizer, clip_grad_norm, clip_grad_value
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "clip_grad_value",
    "LRScheduler",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
]
