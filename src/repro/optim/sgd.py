"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Plain SGD, optionally with (Nesterov) momentum.

    Parameters
    ----------
    parameters:
        Parameters to optimise.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient; 0 disables the velocity buffer.
    nesterov:
        Use Nesterov's accelerated update instead of classical momentum.
    weight_decay:
        L2 penalty coefficient.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Update every parameter in-place from its accumulated gradient."""
        self._step_count += 1
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = self._gradient(parameter)
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            parameter.data -= self.lr * grad
