"""Reverse-mode automatic differentiation on top of NumPy.

This module provides the :class:`Tensor` class, the foundation of the
``repro`` neural-network substrate.  The original DyHSL implementation is
built on PyTorch; this environment has no PyTorch, so the library ships its
own small but complete autograd engine.  A ``Tensor`` wraps a
``numpy.ndarray`` and records the operations applied to it so that
:meth:`Tensor.backward` can propagate gradients back to every leaf tensor
that has ``requires_grad=True``.

The engine supports broadcasting (gradients are automatically reduced back to
the operand's shape), slicing, matrix multiplication with batched operands,
reductions with ``axis``/``keepdims``, and the element-wise functions needed
by DyHSL and the baseline models.

Example
-------
>>> from repro.tensor import Tensor
>>> x = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad
array([[2., 4.],
       [6., 8.]])
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import kernels as K

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Scalars and anything numpy can coerce are accepted wherever a Tensor is
# expected in arithmetic.
ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

#: Op record attached to every ``Tensor._make`` call: the kernel name in
#: :data:`repro.tensor.kernels.KERNELS` plus the constant (non-tensor)
#: keyword arguments of the call.  The inference runtime's tracer consumes
#: these records to rebuild the forward pass as a flat kernel plan.
OpSpec = Tuple[str, Dict[str, Any]]

_DEFAULT_DTYPE = np.float64

# Autograd switch, toggled by the ``no_grad`` context manager.  The state
# is **thread-local**: concurrent serving threads (shard workers, linger
# flushers, micro-batcher callers) each run their own no_grad blocks, and
# with a process-global flag two interleaved blocks can restore each
# other's saved state — leaving gradients disabled (or enabled) for every
# thread long after both blocks exited.  Each thread starts with gradients
# enabled (the class attribute default).
class _GradMode(threading.local):
    enabled = True


_GRAD_MODE = _GradMode()

# Trace hooks installed by the runtime compiler, keyed by thread id so a
# compilation only records ops executed by its own thread — tensor work on
# other threads (training, autograd serving) must never leak into a plan.
# Signature: hook(op, parents, out) -> None.  The dict is empty outside
# compilation, which keeps the per-op check in ``_make`` one falsy test.
_TRACE_HOOKS: Dict[int, Callable[[Optional[OpSpec], Tuple["Tensor", ...], "Tensor"], None]] = {}


def _set_trace_hook(hook: Optional[Callable]) -> Optional[Callable]:
    """Install a trace hook for the calling thread (runtime-internal).

    Returns the thread's previous hook; pass it back to restore.
    """
    ident = threading.get_ident()
    previous = _TRACE_HOOKS.get(ident)
    if hook is None:
        _TRACE_HOOKS.pop(ident, None)
    else:
        _TRACE_HOOKS[ident] = hook
    return previous


class no_grad:
    """Context manager that disables gradient tracking.

    Mirrors ``torch.no_grad``: operations executed inside the block do not
    build a computation graph, which makes inference cheaper and prevents
    training-time state from leaking into evaluation code.

    Example
    -------
    >>> with no_grad():
    ...     y = model(x)
    """

    def __enter__(self) -> "no_grad":
        self._previous = _GRAD_MODE.enabled
        _GRAD_MODE.enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _GRAD_MODE.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return ``True`` when operations on this thread record gradients."""
    return _GRAD_MODE.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    NumPy broadcasting expands operands during the forward pass; the gradient
    of a broadcast operand is the sum of the output gradient over the
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    """Coerce ``value`` into a NumPy array of the engine's default dtype."""
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value, dtype=dtype)
    return array


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts (nested lists, scalars, arrays or
        another :class:`Tensor`, whose buffer is then shared).
    requires_grad:
        When ``True`` the tensor participates in the autograd graph and
        accumulates gradients into :attr:`grad` when :meth:`backward` is
        called on a downstream scalar.
    name:
        Optional human-readable label used in error messages and parameter
        listings.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_grad_fns", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            self.data = data.data
        else:
            self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._grad_fns: Tuple[Callable[[np.ndarray], np.ndarray], ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of zeros with the given shape."""
        return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a tensor of ones with the given shape."""
        return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def full(shape: Sequence[int], fill_value: float, requires_grad: bool = False) -> "Tensor":
        """Return a tensor filled with ``fill_value``."""
        return Tensor(np.full(shape, fill_value, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def eye(n: int, requires_grad: bool = False) -> "Tensor":
        """Return the ``n`` x ``n`` identity matrix."""
        return Tensor(np.eye(n, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        """Wrap an existing NumPy array (copying to the default dtype)."""
        return Tensor(array, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Data type of the underlying array."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor (alias of :meth:`transpose`)."""
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing the same data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a new tensor with copied data, detached from the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Autograd plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        grad_fns: Sequence[Callable[[np.ndarray], np.ndarray]],
        op: Optional[OpSpec] = None,
    ) -> "Tensor":
        """Create an output tensor wired to its parents.

        ``grad_fns[i]`` maps the gradient of the output to the gradient
        contribution of ``parents[i]``.  Parents that do not require
        gradients are dropped so the graph stays minimal.

        ``op`` identifies the kernel that produced ``data`` (name plus
        constant kwargs).  It is ignored during normal execution; when the
        runtime compiler has installed a trace hook, every op is reported to
        it so the forward pass can be replayed without the autograd layer.
        """
        out = Tensor._finish(data, parents, grad_fns)
        if _TRACE_HOOKS:
            hook = _TRACE_HOOKS.get(threading.get_ident())
            if hook is not None:
                hook(op, tuple(parents), out)
        return out

    @staticmethod
    def _finish(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        grad_fns: Sequence[Callable[[np.ndarray], np.ndarray]],
    ) -> "Tensor":
        requires_grad = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad)
        if requires_grad:
            kept_parents: List[Tensor] = []
            kept_fns: List[Callable[[np.ndarray], np.ndarray]] = []
            for parent, fn in zip(parents, grad_fns):
                if parent.requires_grad:
                    kept_parents.append(parent)
                    kept_fns.append(fn)
            out._parents = tuple(kept_parents)
            out._grad_fns = tuple(kept_fns)
        return out

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor to all graph leaves.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to ``1`` which is only valid for scalar tensors (the
            usual case: a loss value).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only supported "
                    f"for scalar tensors; got shape {self.shape}"
                )
            grad_array = np.ones_like(self.data)
        else:
            grad_array = _as_array(grad)
            if grad_array.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad_array.shape} does not match tensor shape {self.shape}"
                )

        # Topologically order the graph so every node's gradient is complete
        # before it is propagated to its parents.
        topo_order: List[Tensor] = []
        visited: set = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo_order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict = {id(self): grad_array}
        for node in reversed(topo_order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._parents:
                for parent, grad_fn in zip(node._parents, node._grad_fns):
                    contribution = grad_fn(node_grad)
                    if contribution is None:
                        continue
                    existing = grads.get(id(parent))
                    if existing is None:
                        grads[id(parent)] = contribution
                    else:
                        grads[id(parent)] = existing + contribution
            else:
                # Leaf tensor: accumulate into .grad like PyTorch does.
                if node.grad is None:
                    node.grad = np.array(node_grad, dtype=_DEFAULT_DTYPE, copy=True)
                else:
                    node.grad = node.grad + node_grad
        # The root may itself be a leaf (e.g. loss = parameter.sum() on a leaf).
        if not self._parents and self.grad is None:
            self.grad = grad_array

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = K.add(self.data, other.data)
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: _unbroadcast(g, self.shape),
                lambda g: _unbroadcast(g, other.shape),
            ),
            op=("add", {}),
        )

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = K.sub(self.data, other.data)
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: _unbroadcast(g, self.shape),
                lambda g: _unbroadcast(-g, other.shape),
            ),
            op=("sub", {}),
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = K.mul(self.data, other.data)
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: _unbroadcast(g * other.data, self.shape),
                lambda g: _unbroadcast(g * self.data, other.shape),
            ),
            op=("mul", {}),
        )

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = K.div(self.data, other.data)
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: _unbroadcast(g / other.data, self.shape),
                lambda g: _unbroadcast(-g * self.data / (other.data ** 2), other.shape),
            ),
            op=("div", {}),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(K.neg(self.data), (self,), (lambda g: -g,), op=("neg", {}))

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log instead")
        exponent = float(exponent)
        data = K.pow_scalar(self.data, exponent=exponent)
        base = self.data

        def grad_fn(g: np.ndarray) -> np.ndarray:
            return g * exponent * np.power(base, exponent - 1)

        return Tensor._make(data, (self,), (grad_fn,), op=("pow", {"exponent": exponent}))

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).matmul(self)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting 1-D, 2-D and batched operands."""
        other = self._coerce(other)
        a, b = self.data, other.data
        data = K.matmul(a, b)

        def grad_a(g: np.ndarray) -> np.ndarray:
            if b.ndim == 1 and a.ndim == 1:
                return g * b
            if b.ndim == 1:
                grad = np.expand_dims(g, -1) * b
            elif a.ndim == 1:
                grad = (g[..., None, :] * b).sum(axis=-1)
            else:
                grad = g @ np.swapaxes(b, -1, -2)
            return _unbroadcast(grad, a.shape)

        def grad_b(g: np.ndarray) -> np.ndarray:
            if a.ndim == 1 and b.ndim == 1:
                return g * a
            if a.ndim == 1:
                grad = np.expand_dims(a, -1) * np.expand_dims(g, -2)
                return _unbroadcast(grad, b.shape)
            if b.ndim == 1:
                grad = (np.swapaxes(a, -1, -2) @ np.expand_dims(g, -1))[..., 0]
                return _unbroadcast(grad, b.shape)
            grad = np.swapaxes(a, -1, -2) @ g
            return _unbroadcast(grad, b.shape)

        return Tensor._make(data, (self, other), (grad_a, grad_b), op=("matmul", {}))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        """Return a tensor with the same data and a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        data = K.reshape(self.data, shape=shape)
        return Tensor._make(
            data, (self,), (lambda g: g.reshape(original_shape),), op=("reshape", {"shape": shape})
        )

    def transpose(self, *axes: int) -> "Tensor":
        """Permute the axes of the tensor.

        Without arguments this reverses the axes (matrix transpose for 2-D
        tensors).  With arguments it behaves like ``numpy.transpose``.
        """
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = K.transpose(self.data, axes=axes)
        return Tensor._make(
            data, (self,), (lambda g: g.transpose(inverse),), op=("transpose", {"axes": axes})
        )

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Swap two axes of the tensor."""
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        """Remove axes of length one."""
        original_shape = self.shape
        data = K.squeeze(self.data, axis=axis)
        return Tensor._make(
            data, (self,), (lambda g: g.reshape(original_shape),), op=("squeeze", {"axis": axis})
        )

    def unsqueeze(self, axis: int) -> "Tensor":
        """Insert a new axis of length one at ``axis``."""
        original_shape = self.shape
        data = K.unsqueeze(self.data, axis=axis)
        return Tensor._make(
            data, (self,), (lambda g: g.reshape(original_shape),), op=("unsqueeze", {"axis": axis})
        )

    def expand(self, *shape: int) -> "Tensor":
        """Broadcast the tensor to ``shape`` (read-only expansion)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        data = K.broadcast(self.data, shape=shape)
        return Tensor._make(
            data,
            (self,),
            (lambda g: _unbroadcast(g, original_shape),),
            op=("broadcast", {"shape": shape}),
        )

    def __getitem__(self, index) -> "Tensor":
        data = K.getitem(self.data, index=index)
        original_shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            full = np.zeros(original_shape, dtype=_DEFAULT_DTYPE)
            np.add.at(full, index, g)
            return full

        return Tensor._make(data, (self,), (grad_fn,), op=("getitem", {"index": index}))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum of elements over the given axis (or all elements)."""
        data = K.reduce_sum(self.data, axis=axis, keepdims=keepdims)
        original_shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, original_shape).copy() if not keepdims else np.broadcast_to(g, original_shape).copy()
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, original_shape).copy()

        return Tensor._make(
            data, (self,), (grad_fn,), op=("sum", {"axis": axis, "keepdims": keepdims})
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axis (or all elements)."""
        data = K.reduce_mean(self.data, axis=axis, keepdims=keepdims)
        original_shape = self.shape
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= original_shape[ax]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g / count, original_shape).copy()
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded / count, original_shape).copy()

        return Tensor._make(
            data, (self,), (grad_fn,), op=("mean", {"axis": axis, "keepdims": keepdims})
        )

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased variance over the given axis (population variance)."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        squared = centered * centered
        return squared.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axis; gradients flow to the arg-max entries."""
        data = K.reduce_max(self.data, axis=axis, keepdims=keepdims)
        original = self.data

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                mask = (original == original.max()).astype(_DEFAULT_DTYPE)
                mask /= mask.sum()
                return mask * g
            expanded_max = original.max(axis=axis, keepdims=True)
            mask = (original == expanded_max).astype(_DEFAULT_DTYPE)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return mask * g_expanded

        return Tensor._make(
            data, (self,), (grad_fn,), op=("max", {"axis": axis, "keepdims": keepdims})
        )

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum over the given axis; gradients flow to the arg-min entries."""
        return (-(-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Element-wise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        data = K.exp(self.data)
        return Tensor._make(data, (self,), (lambda g: g * data,), op=("exp", {}))

    def log(self) -> "Tensor":
        """Element-wise natural logarithm."""
        data = K.log(self.data)
        source = self.data
        return Tensor._make(data, (self,), (lambda g: g / source,), op=("log", {}))

    def sqrt(self) -> "Tensor":
        """Element-wise square root."""
        data = K.sqrt(self.data)
        return Tensor._make(data, (self,), (lambda g: g * 0.5 / data,), op=("sqrt", {}))

    def abs(self) -> "Tensor":
        """Element-wise absolute value (sub-gradient 0 at zero)."""
        data = K.absolute(self.data)
        sign = np.sign(self.data)
        return Tensor._make(data, (self,), (lambda g: g * sign,), op=("abs", {}))

    def tanh(self) -> "Tensor":
        """Element-wise hyperbolic tangent."""
        data = K.tanh(self.data)
        return Tensor._make(
            data, (self,), (lambda g: K.tanh_backward(g, data),), op=("tanh", {})
        )

    def sigmoid(self) -> "Tensor":
        """Element-wise logistic sigmoid."""
        data = K.sigmoid(self.data)
        return Tensor._make(
            data, (self,), (lambda g: K.sigmoid_backward(g, data),), op=("sigmoid", {})
        )

    def relu(self) -> "Tensor":
        """Element-wise rectified linear unit."""
        mask = (self.data > 0).astype(_DEFAULT_DTYPE)
        data = self.data * mask
        return Tensor._make(data, (self,), (lambda g: g * mask,), op=("relu", {}))

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        """Element-wise leaky ReLU."""
        mask = np.where(self.data > 0, 1.0, negative_slope)
        data = self.data * mask
        return Tensor._make(
            data,
            (self,),
            (lambda g: g * mask,),
            op=("leaky_relu", {"negative_slope": negative_slope}),
        )

    def clip(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> "Tensor":
        """Clamp values into ``[minimum, maximum]``; gradient is zero outside."""
        data = K.clip(self.data, minimum=minimum, maximum=maximum)
        lower = -np.inf if minimum is None else minimum
        upper = np.inf if maximum is None else maximum
        mask = ((self.data >= lower) & (self.data <= upper)).astype(_DEFAULT_DTYPE)
        return Tensor._make(
            data,
            (self,),
            (lambda g: g * mask,),
            op=("clip", {"minimum": minimum, "maximum": maximum}),
        )

    def maximum(self, other: ArrayLike) -> "Tensor":
        """Element-wise maximum with ties splitting the gradient equally."""
        other = self._coerce(other)
        data = K.maximum(self.data, other.data)
        self_mask = (self.data > other.data).astype(_DEFAULT_DTYPE)
        tie_mask = (self.data == other.data).astype(_DEFAULT_DTYPE) * 0.5
        other_mask = (other.data > self.data).astype(_DEFAULT_DTYPE)
        return Tensor._make(
            data,
            (self, other),
            (
                lambda g: _unbroadcast(g * (self_mask + tie_mask), self.shape),
                lambda g: _unbroadcast(g * (other_mask + tie_mask), other.shape),
            ),
            op=("maximum", {}),
        )

    def minimum(self, other: ArrayLike) -> "Tensor":
        """Element-wise minimum with ties splitting the gradient equally."""
        other = self._coerce(other)
        return -((-self).maximum(-other))

    # ------------------------------------------------------------------
    # Softmax-style primitives used throughout the models
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``.

        A primitive op (not composed from exp/sum) so the max-shift does not
        bake an input-dependent constant into runtime traces; the gradient is
        the classic ``y * (g - sum(g * y))``.
        """
        data = K.softmax(self.data, axis=axis)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            return K.softmax_backward(g, data, axis=axis)

        return Tensor._make(data, (self,), (grad_fn,), op=("softmax", {"axis": axis}))

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Logarithm of the softmax along ``axis`` (primitive, see softmax)."""
        data = K.log_softmax(self.data, axis=axis)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            return K.log_softmax_backward(g, data, axis=axis)

        return Tensor._make(data, (self,), (grad_fn,), op=("log_softmax", {"axis": axis}))


def _ensure_tensor(value: ArrayLike) -> Tensor:
    """Module-level coercion helper shared with :mod:`repro.tensor.ops`."""
    return value if isinstance(value, Tensor) else Tensor(value)
