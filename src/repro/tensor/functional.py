"""Functional interface to common neural-network operations.

Thin wrappers around :class:`repro.tensor.Tensor` methods plus a handful of
stateless operations (dropout, GLU, Huber) that the module classes in
:mod:`repro.nn` are built from.  Keeping them here lets models mix the
object-oriented and functional styles just like PyTorch code does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "elu",
    "gelu",
    "softplus",
    "dropout",
    "glu",
    "mae",
    "mse",
    "huber",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit ``max(x, 0)``."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky rectified linear unit."""
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    return x.log_softmax(axis=axis)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    positive = x.relu()
    negative = ((-x).relu() * -1.0).exp() - 1.0
    mask = Tensor((x.data <= 0).astype(float))
    return positive + mask * negative * alpha


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = (x + (x * x * x) * 0.044715) * 0.7978845608028654
    return x * 0.5 * (inner.tanh() + 1.0)


def softplus(x: Tensor) -> Tensor:
    """Softplus ``log(1 + exp(x))`` computed in a numerically stable way."""
    return x.relu() + ((-x.abs()).exp() + 1.0).log()


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Randomly zero elements of ``x`` with probability ``p``.

    The surviving activations are rescaled by ``1 / (1 - p)`` so that the
    expected value is preserved (inverted dropout).  At evaluation time or
    with ``p == 0`` the input passes through unchanged.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1); got {p}")
    if not training or p == 0.0 or not is_grad_enabled():
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(float) / (1.0 - p)
    return x * Tensor(mask)


def glu(x: Tensor, axis: int = -1) -> Tensor:
    """Gated linear unit: split ``x`` in two along ``axis`` and gate.

    Used by the STGCN baseline's temporal convolution blocks.
    """
    size = x.shape[axis]
    if size % 2 != 0:
        raise ValueError("glu() requires an even dimension along the gating axis")
    half = size // 2
    slicer_a = [slice(None)] * x.ndim
    slicer_b = [slice(None)] * x.ndim
    slicer_a[axis] = slice(0, half)
    slicer_b[axis] = slice(half, size)
    return x[tuple(slicer_a)] * x[tuple(slicer_b)].sigmoid()


def mae(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return (prediction - target).abs().mean()


def mse(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def huber(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss, quadratic below ``delta`` and linear above."""
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = abs_diff.minimum(Tensor(np.array(delta)))
    linear = abs_diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()
