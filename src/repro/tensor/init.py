"""Weight initialisation schemes.

Provides the initialisers used by the DyHSL model and the baselines.  All
functions return plain NumPy arrays; the module layer wraps them into
parameters.  A module-level random generator (see :mod:`repro.tensor.random`)
keeps initialisation reproducible across runs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .random import get_rng

__all__ = [
    "zeros",
    "ones",
    "constant",
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
    "orthogonal",
]


def _fan_in_fan_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for a weight of the given shape.

    For linear weights ``(in, out)`` the fans are the two dimensions; for
    convolutional weights the receptive-field size multiplies both.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive_field = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def zeros(shape: Sequence[int]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Sequence[int]) -> np.ndarray:
    """All-one initialisation (normalisation scales)."""
    return np.ones(shape, dtype=np.float64)


def constant(shape: Sequence[int], value: float) -> np.ndarray:
    """Constant initialisation."""
    return np.full(shape, value, dtype=np.float64)


def uniform(shape: Sequence[int], low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    return get_rng().uniform(low, high, size=shape)


def normal(shape: Sequence[int], mean: float = 0.0, std: float = 0.01) -> np.ndarray:
    """Gaussian initialisation."""
    return get_rng().normal(mean, std, size=shape)


def xavier_uniform(shape: Sequence[int], gain: float = 1.0) -> np.ndarray:
    """Glorot / Xavier uniform initialisation.

    Keeps the variance of activations roughly constant across layers for
    tanh/sigmoid-style non-linearities, which DyHSL uses in its hypergraph
    and interactive convolutions.
    """
    fan_in, fan_out = _fan_in_fan_out(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return get_rng().uniform(-limit, limit, size=shape)


def xavier_normal(shape: Sequence[int], gain: float = 1.0) -> np.ndarray:
    """Glorot / Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return get_rng().normal(0.0, std, size=shape)


def kaiming_uniform(shape: Sequence[int]) -> np.ndarray:
    """He / Kaiming uniform initialisation for ReLU networks."""
    fan_in, _ = _fan_in_fan_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return get_rng().uniform(-limit, limit, size=shape)


def kaiming_normal(shape: Sequence[int]) -> np.ndarray:
    """He / Kaiming normal initialisation for ReLU networks."""
    fan_in, _ = _fan_in_fan_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return get_rng().normal(0.0, std, size=shape)


def orthogonal(shape: Sequence[int], gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation, recommended for recurrent weight matrices."""
    if len(shape) != 2:
        raise ValueError("orthogonal initialisation requires a 2-D shape")
    rows, cols = shape
    # QR of a tall matrix gives orthonormal columns; transpose afterwards if
    # the requested shape is wide.
    flat = get_rng().normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Make the decomposition unique so results are deterministic.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]
