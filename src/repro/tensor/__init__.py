"""NumPy-based autograd substrate used by every model in the library.

The subpackage replaces the PyTorch dependency of the original DyHSL
implementation with a small reverse-mode automatic-differentiation engine:

* :class:`repro.tensor.Tensor` — array wrapper with gradient tracking.
* :mod:`repro.tensor.kernels` — raw ndarray kernels shared by the autograd
  engine and the graph-free inference runtime (:mod:`repro.runtime`).
* :mod:`repro.tensor.ops` — structural operations (concatenate, stack, pad…).
* :mod:`repro.tensor.functional` — activations, dropout and loss primitives.
* :mod:`repro.tensor.init` — weight initialisers.
* :mod:`repro.tensor.random` — seed management for reproducible runs.
"""

from . import functional, init, kernels, ops, random
from .ops import concatenate, layer_norm, one_hot, pad, split, stack, unfold_windows, where
from .random import fork_rng, get_rng, seed
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "layer_norm",
    "kernels",
    "concatenate",
    "stack",
    "split",
    "pad",
    "where",
    "one_hot",
    "unfold_windows",
    "seed",
    "get_rng",
    "fork_rng",
    "functional",
    "ops",
    "init",
    "random",
]
