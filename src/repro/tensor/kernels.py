"""Shared ndarray kernels: the single numerical source of truth.

Every operation of the library exists in exactly one place — here — as a
plain function over ``numpy.ndarray`` operands.  Two execution modes consume
these kernels:

* the **autograd engine** (:class:`repro.tensor.Tensor`): each ``Tensor`` op
  calls the kernel for its forward payload and wraps the result with the
  gradient closures needed for training;
* the **graph-free inference runtime** (:mod:`repro.runtime`): a compiled
  plan replays the recorded kernel calls directly on raw arrays with
  preallocated output buffers, paying no ``Tensor`` construction, parent
  bookkeeping or closure allocation per op.

Because both modes run the *same* kernel code in the *same* order, the
compiled forward pass is bit-identical to the autograd forward pass (up to
BLAS non-determinism, in practice ``<= 1e-10``; see
``tests/runtime/test_parity.py``).

Conventions
-----------
* Kernels take their array operands positionally, then ``out`` (an optional
  preallocated result buffer), then constant keyword arguments.
* When ``out`` is ``None`` the kernel allocates; otherwise it writes into
  ``out`` and returns it.  View-producing kernels (``reshape``,
  ``transpose``, ``squeeze``, ``unsqueeze``, ``getitem``) ignore ``out`` and
  return a (possibly zero-copy) view of their input.
* The :data:`KERNELS` registry maps the op names recorded by the autograd
  layer (see ``Tensor._make``) to the kernel callables, which is what the
  runtime compiler resolves against.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "KERNELS",
    "VIEW_OPS",
    "FUSABLE_ELEMENTWISE",
    "add",
    "reshape_copy",
    "sub",
    "mul",
    "div",
    "neg",
    "pow_scalar",
    "matmul",
    "spmm",
    "reshape",
    "transpose",
    "squeeze",
    "unsqueeze",
    "broadcast",
    "getitem",
    "reduce_sum",
    "reduce_mean",
    "reduce_max",
    "exp",
    "log",
    "sqrt",
    "absolute",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "clip",
    "maximum",
    "where",
    "concat",
    "stack",
    "pad",
    "softmax",
    "log_softmax",
    "layer_norm",
    "layer_norm_stats",
    "fused_elementwise",
    "tanh_backward",
    "sigmoid_backward",
    "relu_backward",
    "leaky_relu_backward",
    "softmax_backward",
    "log_softmax_backward",
    "layer_norm_backward",
]


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def add(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise ``a + b`` with NumPy broadcasting."""
    return np.add(a, b, out=out)


def sub(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise ``a - b``."""
    return np.subtract(a, b, out=out)


def mul(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise ``a * b``."""
    return np.multiply(a, b, out=out)


def div(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise ``a / b``."""
    return np.divide(a, b, out=out)


def neg(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise negation."""
    return np.negative(a, out=out)


def pow_scalar(a: np.ndarray, out: Optional[np.ndarray] = None, *, exponent: float = 1.0) -> np.ndarray:
    """Element-wise power with a Python scalar exponent."""
    return np.power(a, exponent, out=out)


def matmul(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Matrix product supporting 1-D, 2-D and batched operands."""
    if out is None:
        return a @ b
    return np.matmul(a, b, out=out)


def _probe_csr_matvecs():
    """Resolve SciPy's raw CSR multi-vector product, verified by a self-test.

    ``csr_matvecs`` is the exact routine ``csr_matrix @ dense`` dispatches
    to, so calling it directly (accumulating into a preallocated, zeroed
    output) is bit-identical to the SciPy operator while skipping the
    wrapper's result allocation.  Returns ``None`` when unavailable.
    """
    try:
        from scipy import sparse as sp
        from scipy.sparse import _sparsetools

        probe = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        x = np.array([[1.0], [2.0]])
        y = np.zeros((2, 1))
        _sparsetools.csr_matvecs(2, 2, 1, probe.indptr, probe.indices, probe.data, x.ravel(), y.ravel())
        if np.array_equal(y, probe @ x):
            return _sparsetools.csr_matvecs
    except Exception:
        pass
    return None


_CSR_MATVECS = _probe_csr_matvecs()


def spmm(dense: np.ndarray, out: Optional[np.ndarray] = None, *, matrix=None) -> np.ndarray:
    """Constant-sparse times dense: ``matrix @ dense``.

    ``matrix`` is a :class:`repro.graph.sparse.SparseMatrix` captured as a
    plan constant.  With a contiguous ``out`` the product accumulates
    directly into the buffer through SciPy's ``csr_matvecs`` (the routine
    the ``@`` operator itself uses, so the numbers are unchanged); otherwise
    the SciPy product is computed and copied.

    Dtype-polymorphic: a non-float64 ``dense`` (a float32 precision-policy
    plan) multiplies against the matrix's cached same-dtype value array
    (:meth:`~repro.graph.sparse.SparseMatrix.with_dtype`) so the whole
    product — values, accumulator, result — runs at the plan's precision
    instead of silently upcasting the hot path.
    """
    if matrix.csr.dtype != dense.dtype:
        matrix = matrix.with_dtype(dense.dtype)
    if (
        out is not None
        and _CSR_MATVECS is not None
        and dense.ndim == 2
        and dense.flags.c_contiguous
        and out.flags.c_contiguous
        and out.dtype == dense.dtype
    ):
        csr = matrix.csr
        out.fill(0.0)
        _CSR_MATVECS(
            csr.shape[0], csr.shape[1], dense.shape[1],
            csr.indptr, csr.indices, csr.data,
            dense.ravel(), out.ravel(),
        )
        return out
    result = matrix.dot_array(dense)
    if out is None:
        return result
    np.copyto(out, result)
    return out


# ----------------------------------------------------------------------
# Views / structural reshaping (ignore ``out``; may return views)
# ----------------------------------------------------------------------
def reshape(a: np.ndarray, out: Optional[np.ndarray] = None, *, shape: Tuple[int, ...] = ()) -> np.ndarray:
    """Reshape to ``shape`` (zero-copy for contiguous input)."""
    return a.reshape(shape)


def reshape_copy(a: np.ndarray, out: Optional[np.ndarray] = None, *, shape: Tuple[int, ...] = ()) -> np.ndarray:
    """Reshape that must copy (non-contiguous source), buffer-friendly.

    The runtime compiler rewrites ``reshape`` steps whose traced result was
    a copy to this kernel so the copy lands in the reused workspace buffer
    instead of a fresh allocation per call.
    """
    if out is None:
        return a.reshape(shape)
    np.copyto(out.reshape(a.shape), a)
    return out


def transpose(a: np.ndarray, out: Optional[np.ndarray] = None, *, axes: Tuple[int, ...] = ()) -> np.ndarray:
    """Permute axes (always a view)."""
    return a.transpose(axes)


def squeeze(a: np.ndarray, out: Optional[np.ndarray] = None, *, axis=None) -> np.ndarray:
    """Drop length-one axes (a view)."""
    return a.squeeze() if axis is None else a.squeeze(axis)


def unsqueeze(a: np.ndarray, out: Optional[np.ndarray] = None, *, axis: int = 0) -> np.ndarray:
    """Insert a length-one axis (a view)."""
    return np.expand_dims(a, axis)


def broadcast(a: np.ndarray, out: Optional[np.ndarray] = None, *, shape: Tuple[int, ...] = ()) -> np.ndarray:
    """Materialised broadcast of ``a`` to ``shape``."""
    if out is None:
        return np.broadcast_to(a, shape).copy()
    np.copyto(out, a)
    return out


def getitem(a: np.ndarray, out: Optional[np.ndarray] = None, *, index=None) -> np.ndarray:
    """Basic or advanced indexing (a view for basic slices)."""
    return a[index]


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def reduce_sum(a: np.ndarray, out: Optional[np.ndarray] = None, *, axis=None, keepdims: bool = False) -> np.ndarray:
    """Sum over ``axis`` (or all elements)."""
    return np.sum(a, axis=axis, keepdims=keepdims, out=out)


def reduce_mean(a: np.ndarray, out: Optional[np.ndarray] = None, *, axis=None, keepdims: bool = False) -> np.ndarray:
    """Arithmetic mean over ``axis`` (or all elements)."""
    return np.mean(a, axis=axis, keepdims=keepdims, out=out)


def reduce_max(a: np.ndarray, out: Optional[np.ndarray] = None, *, axis=None, keepdims: bool = False) -> np.ndarray:
    """Maximum over ``axis`` (or all elements)."""
    return np.max(a, axis=axis, keepdims=keepdims, out=out)


# ----------------------------------------------------------------------
# Element-wise functions
# ----------------------------------------------------------------------
def exp(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise exponential."""
    return np.exp(a, out=out)


def log(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise natural logarithm."""
    return np.log(a, out=out)


def sqrt(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise square root."""
    return np.sqrt(a, out=out)


def absolute(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise absolute value."""
    return np.abs(a, out=out)


def tanh(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise hyperbolic tangent."""
    return np.tanh(a, out=out)


def sigmoid(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Logistic sigmoid ``1 / (1 + exp(-a))``.

    The op sequence (negate, exp, add 1, reciprocal-divide) mirrors the
    original autograd expression exactly so both modes agree bit-for-bit.
    """
    if out is None:
        return 1.0 / (1.0 + np.exp(-a))
    np.negative(a, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)
    return out


def relu(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Rectified linear unit as a mask multiply (matches the autograd op).

    The mask stays boolean: ``float * bool`` promotes each element to the
    identical 0.0/1.0 factor the autograd op uses, with an 8x smaller
    temporary.
    """
    return np.multiply(a, a > 0, out=out)


def leaky_relu(a: np.ndarray, out: Optional[np.ndarray] = None, *, negative_slope: float = 0.01) -> np.ndarray:
    """Leaky ReLU via the same slope-mask multiply the autograd op uses.

    The mask is built in ``a``'s dtype: ``np.where(a > 0, 1.0, slope)``
    would materialise a float64 mask for a float32 operand and upcast the
    multiply off the precision policy's bandwidth budget.
    """
    mask = np.where(a > 0, a.dtype.type(1.0), a.dtype.type(negative_slope))
    return np.multiply(a, mask, out=out)


def clip(a: np.ndarray, out: Optional[np.ndarray] = None, *, minimum=None, maximum=None) -> np.ndarray:
    """Clamp values into ``[minimum, maximum]``."""
    return np.clip(a, minimum, maximum, out=out)


def maximum(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Element-wise maximum."""
    return np.maximum(a, b, out=out)


def where(a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None, *, condition=None) -> np.ndarray:
    """Select ``a`` where ``condition`` holds, else ``b`` (condition constant)."""
    result = np.where(condition, a, b)
    if out is None:
        return result
    np.copyto(out, result)
    return out


# ----------------------------------------------------------------------
# Multi-operand structural ops
# ----------------------------------------------------------------------
def concat(*arrays: np.ndarray, out: Optional[np.ndarray] = None, axis: int = 0) -> np.ndarray:
    """Concatenate along an existing axis."""
    return np.concatenate(arrays, axis=axis, out=out)


def stack(*arrays: np.ndarray, out: Optional[np.ndarray] = None, axis: int = 0) -> np.ndarray:
    """Stack along a new axis."""
    return np.stack(arrays, axis=axis, out=out)


def pad(a: np.ndarray, out: Optional[np.ndarray] = None, *, pad_width=(), value: float = 0.0) -> np.ndarray:
    """Constant-pad ``a`` (NumPy ``pad_width`` convention)."""
    if out is None:
        return np.pad(a, pad_width, mode="constant", constant_values=value)
    out.fill(value)
    interior = tuple(
        slice(before, out.shape[axis] - after) for axis, (before, after) in enumerate(pad_width)
    )
    out[interior] = a
    return out


# ----------------------------------------------------------------------
# Fused elementwise chains
# ----------------------------------------------------------------------

#: Ops the runtime compiler may merge into one ``fused_elementwise`` step.
#: All of them are shape-preserving elementwise kernels whose ``out=`` form
#: may alias an input, which is what lets a chain run in a single buffer.
FUSABLE_ELEMENTWISE = frozenset(
    {
        "add", "sub", "mul", "div", "neg", "pow", "exp", "sqrt", "abs",
        "tanh", "sigmoid", "relu", "leaky_relu", "clip",
    }
)

#: Block size (elements) of the chain interpreter and the blocked
#: ``layer_norm``: 65536 float64 = 512 KiB, small enough to stay resident
#: in L2 across every instruction of a chain while amortising the
#: per-block ufunc dispatch (measured best on the benchmark box among
#: 4K-1M element blocks).
_BLOCK_ELEMENTS = 65536


def fused_elementwise(*arrays, out: Optional[np.ndarray] = None, chain=()) -> np.ndarray:
    """Run a pre-compiled chain of elementwise kernels in one buffer.

    ``chain`` is a tuple of ``(name, kernel, operand_refs, kwargs)``
    instructions produced by the runtime compiler's fusion pass.  An operand
    reference is an index into ``arrays`` (the chain's external inputs) or
    ``-1`` for the running value of the chain.  Every instruction writes
    into the same destination, so a chain of N ops allocates nothing and —
    on the blocked path — touches main memory like a single pass: the
    destination is processed in L2-sized row blocks, and all N instructions
    run on a block while it is cache-resident before moving on.

    Because every instruction executes the same kernel on the same operand
    values as the unfused plan (NumPy elementwise ufuncs are well-defined
    under output aliasing and independent across elements), fused results
    are bit-identical to the unfused — and therefore to the autograd —
    forward pass.

    The blocked path requires external operands that either match the
    output shape (sliced along axis 0 with the block) or broadcast without
    involving axis 0 (passed whole); anything else falls back to whole-array
    execution, which is numerically identical.
    """
    if out is None:
        _, kernel, refs, kwargs = chain[0]
        acc = kernel(*[arrays[ref] for ref in refs], **kwargs)
        for _, kernel, refs, kwargs in chain[1:]:
            kernel(*[acc if ref < 0 else arrays[ref] for ref in refs], out=acc, **kwargs)
        return acc

    rows = out.shape[0] if out.ndim else 0
    row_elements = out.size // rows if rows else 0
    blockable = (
        rows > 1
        and row_elements > 0
        and out.flags.c_contiguous
        and out.size > _BLOCK_ELEMENTS
    )
    sliced: Tuple[bool, ...] = ()
    if blockable:
        flags = []
        for array in arrays:
            if array.shape == out.shape:
                flags.append(True)
            elif array.ndim < out.ndim or array.ndim == 0 or array.shape[0] == 1:
                flags.append(False)  # broadcasts identically within any block
            else:
                blockable = False
                break
        sliced = tuple(flags)

    if not blockable:
        for _, kernel, refs, kwargs in chain:
            kernel(*[out if ref < 0 else arrays[ref] for ref in refs], out=out, **kwargs)
        return out

    step = max(1, _BLOCK_ELEMENTS // row_elements)
    for start in range(0, rows, step):
        window = slice(start, start + step)
        acc = out[window]
        for _, kernel, refs, kwargs in chain:
            kernel(
                *[
                    acc if ref < 0 else (arrays[ref][window] if sliced[ref] else arrays[ref])
                    for ref in refs
                ],
                out=acc,
                **kwargs,
            )
    return out


# ----------------------------------------------------------------------
# Fused neural-network kernels
# ----------------------------------------------------------------------

def _reduce_dtype(dtype) -> Optional[np.dtype]:
    """Accumulator dtype for numerically sensitive reductions.

    Float32 plans (the runtime's precision policy) keep every elementwise
    pass and matmul at single precision for bandwidth, but the *reductions*
    inside softmax / log-softmax / layer norm — exp-sums and variances over
    hundreds of elements — accumulate in float64 and cast the (small,
    keepdims-shaped) result back.  The extra cost is one double-width
    accumulator register per lane; the alternative is a relative error that
    grows with the reduction length.  Float64 inputs return ``None`` so the
    double-precision path stays byte-for-byte what it always was.
    """
    return np.float64 if dtype == np.float32 else None


def softmax(a: np.ndarray, out: Optional[np.ndarray] = None, *, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    The shift / exp / normalise sequence reproduces the historical composed
    implementation (``x - max``, ``exp``, ``/ sum``) operation for operation.
    Float32 operands accumulate the exp-sum in float64 (see
    :func:`_reduce_dtype`).
    """
    shift = np.max(a, axis=axis, keepdims=True)
    if out is None:
        out = np.subtract(a, shift)
    else:
        np.subtract(a, shift, out=out)
    np.exp(out, out=out)
    accumulator = _reduce_dtype(out.dtype)
    if accumulator is None:
        total = np.sum(out, axis=axis, keepdims=True)
    else:
        total = np.sum(out, axis=axis, keepdims=True, dtype=accumulator).astype(out.dtype)
    np.divide(out, total, out=out)
    return out


def log_softmax(a: np.ndarray, out: Optional[np.ndarray] = None, *, axis: int = -1) -> np.ndarray:
    """Logarithm of the softmax along ``axis`` (stable shifted form).

    Float32 operands accumulate the exp-sum in float64 (see
    :func:`_reduce_dtype`).
    """
    shift = np.max(a, axis=axis, keepdims=True)
    if out is None:
        out = np.subtract(a, shift)
    else:
        np.subtract(a, shift, out=out)
    accumulator = _reduce_dtype(out.dtype)
    if accumulator is None:
        total = np.sum(np.exp(out), axis=axis, keepdims=True)
        np.subtract(out, np.log(total), out=out)
    else:
        total = np.sum(np.exp(out), axis=axis, keepdims=True, dtype=accumulator)
        np.subtract(out, np.log(total).astype(out.dtype), out=out)
    return out


def layer_norm_stats(a: np.ndarray, axes: Tuple[int, ...], eps: float) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(x_hat, sigma)`` of layer normalisation over ``axes``.

    ``x_hat`` is the normalised input and ``sigma`` the (biased) standard
    deviation with ``keepdims`` shape — the two quantities both the forward
    pass and the analytic backward need.  The op sequence matches the
    historical composed implementation (mean, centred square mean, sqrt).
    """
    mean = np.mean(a, axis=axes, keepdims=True)
    centered = a - mean
    variance = np.mean(centered * centered, axis=axes, keepdims=True)
    sigma = np.sqrt(variance + eps)
    return centered / sigma, sigma


def layer_norm(
    a: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    out: Optional[np.ndarray] = None,
    *,
    axes: Tuple[int, ...] = (),
    eps: float = 1e-5,
) -> np.ndarray:
    """Fused layer normalisation ``x_hat * weight + bias`` over ``axes``.

    With ``out`` the centring, normalisation and affine steps run in place
    in the buffer (one full-size temporary instead of three); the op
    sequence is the same as :func:`layer_norm_stats`, so the results agree
    bit for bit.
    """
    axes = tuple(axes)
    if out is None:
        x_hat, _ = layer_norm_stats(a, axes, eps)
        out = np.multiply(x_hat, weight)
        np.add(out, bias, out=out)
        return out
    # Rows (leading axis entries) are normalised independently whenever the
    # reduction axes exclude axis 0, so the five passes below can run on
    # L2-sized row blocks: every pass over a block hits cache instead of
    # main memory, and the per-row reductions are untouched, keeping the
    # result bit-identical to the whole-array sequence.
    rows = a.shape[0] if a.ndim else 0
    row_elements = a.size // rows if rows else 0
    if (
        rows > 1
        and row_elements > 0
        and a.size > _BLOCK_ELEMENTS
        and all(axis > 0 for axis in axes)
    ):
        step = max(1, _BLOCK_ELEMENTS // row_elements)
        if step < rows:
            # One squared-values scratch reused by every block: the
            # centred-square pass would otherwise allocate a block-sized
            # temporary per block (tens of MB of allocator traffic per
            # forward at PEMS08 scale).
            square = np.empty((step,) + a.shape[1:], dtype=out.dtype)
            for start in range(0, rows, step):
                window = slice(start, start + step)
                block = out[window]
                _layer_norm_into(
                    a[window], weight, bias, block, axes, eps,
                    square=square[: block.shape[0]],
                )
            return out
    _layer_norm_into(a, weight, bias, out, axes, eps)
    return out


def _layer_norm_into(
    a: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    out: np.ndarray,
    axes: Tuple[int, ...],
    eps: float,
    square: Optional[np.ndarray] = None,
) -> None:
    """The in-buffer layer-norm pass sequence (centre, scale, affine).

    Float32 buffers accumulate the mean and variance in float64 (see
    :func:`_reduce_dtype`); the five full-size passes stay at the buffer's
    precision.
    """
    accumulator = _reduce_dtype(out.dtype)
    if accumulator is None:
        np.subtract(a, np.mean(a, axis=axes, keepdims=True), out=out)
        squared = np.multiply(out, out, out=square)
        variance = np.mean(squared, axis=axes, keepdims=True)
        np.divide(out, np.sqrt(variance + eps), out=out)
    else:
        mean = np.mean(a, axis=axes, keepdims=True, dtype=accumulator).astype(out.dtype)
        np.subtract(a, mean, out=out)
        squared = np.multiply(out, out, out=square)
        variance = np.mean(squared, axis=axes, keepdims=True, dtype=accumulator)
        np.divide(out, np.sqrt(variance + eps).astype(out.dtype), out=out)
    np.multiply(out, weight, out=out)
    np.add(out, bias, out=out)


# ----------------------------------------------------------------------
# Analytic backwards shared by the autograd engine and the recorded-tape
# training runtime.  Each maps the output gradient plus the saved forward
# values to the input gradient with the exact op sequence the historical
# autograd closures used, so both consumers produce the same numbers.
# ----------------------------------------------------------------------
def tanh_backward(grad: np.ndarray, output: np.ndarray) -> np.ndarray:
    """``d tanh``: ``g * (1 - y^2)`` from the saved output ``y``."""
    return grad * (1.0 - output ** 2)


def sigmoid_backward(grad: np.ndarray, output: np.ndarray) -> np.ndarray:
    """``d sigmoid``: ``g * y * (1 - y)`` from the saved output ``y``."""
    return grad * output * (1.0 - output)


def relu_backward(grad: np.ndarray, value: np.ndarray) -> np.ndarray:
    """``d relu``: gradient gated by the positive mask of the input."""
    return grad * (value > 0)


def leaky_relu_backward(
    grad: np.ndarray, value: np.ndarray, *, negative_slope: float = 0.01
) -> np.ndarray:
    """``d leaky_relu``: slope mask of the input applied to the gradient."""
    return grad * np.where(value > 0, 1.0, negative_slope)


def softmax_backward(grad: np.ndarray, output: np.ndarray, *, axis: int = -1) -> np.ndarray:
    """``d softmax``: the classic ``y * (g - sum(g * y))`` along ``axis``."""
    inner = (grad * output).sum(axis=axis, keepdims=True)
    return output * (grad - inner)


def log_softmax_backward(grad: np.ndarray, output: np.ndarray, *, axis: int = -1) -> np.ndarray:
    """``d log_softmax``: ``g - exp(y) * sum(g)`` along ``axis``."""
    return grad - np.exp(output) * grad.sum(axis=axis, keepdims=True)


def layer_norm_backward(
    grad: np.ndarray,
    x_hat: np.ndarray,
    sigma: np.ndarray,
    weight: np.ndarray,
    *,
    axes: Tuple[int, ...],
) -> np.ndarray:
    """Input gradient of the fused layer norm from its saved statistics."""
    g_w = grad * weight
    mean_g = g_w.mean(axis=axes, keepdims=True)
    mean_gx = (g_w * x_hat).mean(axis=axes, keepdims=True)
    return (g_w - mean_g - x_hat * mean_gx) / sigma


#: Op name (as recorded by the autograd layer) -> kernel callable.
KERNELS: Dict[str, object] = {
    "add": add,
    "sub": sub,
    "mul": mul,
    "div": div,
    "neg": neg,
    "pow": pow_scalar,
    "matmul": matmul,
    "spmm": spmm,
    "reshape": reshape,
    "reshape_copy": reshape_copy,
    "transpose": transpose,
    "squeeze": squeeze,
    "unsqueeze": unsqueeze,
    "broadcast": broadcast,
    "getitem": getitem,
    "sum": reduce_sum,
    "mean": reduce_mean,
    "max": reduce_max,
    "exp": exp,
    "log": log,
    "sqrt": sqrt,
    "abs": absolute,
    "tanh": tanh,
    "sigmoid": sigmoid,
    "relu": relu,
    "leaky_relu": leaky_relu,
    "clip": clip,
    "maximum": maximum,
    "where": where,
    "concat": concat,
    "stack": stack,
    "pad": pad,
    "softmax": softmax,
    "log_softmax": log_softmax,
    "layer_norm": layer_norm,
    "fused_elementwise": fused_elementwise,
}

#: Ops whose kernels return views of their input — the runtime allocates no
#: workspace buffer for them.
VIEW_OPS = frozenset({"reshape", "transpose", "squeeze", "unsqueeze", "getitem"})
