"""Random-number management for reproducible experiments.

All stochastic pieces of the library (weight initialisation, dropout, data
simulation, batching shuffles) draw from generators created here so that a
single :func:`seed` call makes an entire experiment repeatable — matching the
fixed-seed evaluation protocol used in the paper's experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["seed", "get_rng", "fork_rng"]

_GLOBAL_SEED: Optional[int] = None
_GLOBAL_RNG: np.random.Generator = np.random.default_rng(0)


def seed(value: int) -> None:
    """Seed the library-wide random generator.

    Subsequent calls to :func:`get_rng` return a generator derived from this
    seed.  Call it once at the start of an experiment.
    """
    global _GLOBAL_SEED, _GLOBAL_RNG
    _GLOBAL_SEED = int(value)
    _GLOBAL_RNG = np.random.default_rng(_GLOBAL_SEED)


def get_rng() -> np.random.Generator:
    """Return the library-wide random generator."""
    return _GLOBAL_RNG


def fork_rng(offset: int = 0) -> np.random.Generator:
    """Return an independent generator derived from the global seed.

    Useful when a component (e.g. the data simulator) needs its own stream
    that does not perturb the main generator's sequence.
    """
    base = _GLOBAL_SEED if _GLOBAL_SEED is not None else 0
    return np.random.default_rng(base + 1009 * (offset + 1))
