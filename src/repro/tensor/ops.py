"""Structural tensor operations used by the models.

These free functions complement the methods defined on
:class:`repro.tensor.Tensor` with operations that combine several tensors
(concatenation, stacking) or reshape data in ways that appear in the DyHSL
architecture and the baselines (padding for temporal convolutions, unfolding
for pooling windows, one-hot encodings for embeddings).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from . import kernels as K
from .tensor import Tensor, _unbroadcast

__all__ = [
    "concatenate",
    "stack",
    "split",
    "pad",
    "where",
    "outer",
    "unfold_windows",
    "one_hot",
    "dot",
    "matmul",
    "tensordot_last",
    "layer_norm",
]


def _coerce(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis.

    The gradient of the result is split back along ``axis`` and routed to
    each input tensor.
    """
    tensors = [_coerce(t) for t in tensors]
    if not tensors:
        raise ValueError("concatenate() requires at least one tensor")
    data = K.concat(*[t.data for t in tensors], axis=axis)

    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_grad_fn(index: int):
        start, stop = offsets[index], offsets[index + 1]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            return g[tuple(slicer)]

        return grad_fn

    grad_fns = tuple(make_grad_fn(i) for i in range(len(tensors)))
    return Tensor._make(data, tuple(tensors), grad_fns, op=("concat", {"axis": axis}))


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_coerce(t) for t in tensors]
    if not tensors:
        raise ValueError("stack() requires at least one tensor")
    data = K.stack(*[t.data for t in tensors], axis=axis)

    def make_grad_fn(index: int):
        def grad_fn(g: np.ndarray) -> np.ndarray:
            return np.take(g, index, axis=axis)

        return grad_fn

    grad_fns = tuple(make_grad_fn(i) for i in range(len(tensors)))
    return Tensor._make(data, tuple(tensors), grad_fns, op=("stack", {"axis": axis}))


def split(tensor: Tensor, sections: int, axis: int = 0) -> List[Tensor]:
    """Split a tensor into ``sections`` equal chunks along ``axis``."""
    tensor = _coerce(tensor)
    size = tensor.shape[axis]
    if size % sections != 0:
        raise ValueError(f"axis of size {size} cannot be split into {sections} equal sections")
    chunk = size // sections
    outputs = []
    for i in range(sections):
        slicer = [slice(None)] * tensor.ndim
        slicer[axis] = slice(i * chunk, (i + 1) * chunk)
        outputs.append(tensor[tuple(slicer)])
    return outputs


def pad(tensor: Tensor, pad_width: Sequence[Tuple[int, int]], value: float = 0.0) -> Tensor:
    """Pad a tensor with a constant value.

    ``pad_width`` follows the NumPy convention: one ``(before, after)`` pair
    per axis.
    """
    tensor = _coerce(tensor)
    pad_width = tuple(tuple(p) for p in pad_width)
    if len(pad_width) != tensor.ndim:
        raise ValueError(
            f"pad_width has {len(pad_width)} entries but the tensor has {tensor.ndim} dimensions"
        )
    data = K.pad(tensor.data, pad_width=pad_width, value=value)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        slicer = tuple(
            slice(before, g.shape[axis] - after) for axis, (before, after) in enumerate(pad_width)
        )
        return g[slicer]

    return Tensor._make(
        data, (tensor,), (grad_fn,), op=("pad", {"pad_width": pad_width, "value": value})
    )


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Element-wise selection: ``a`` where ``condition`` is true, else ``b``.

    ``condition`` is treated as a constant (no gradient flows through it).
    """
    a, b = _coerce(a), _coerce(b)
    condition = np.asarray(condition, dtype=bool)
    data = K.where(a.data, b.data, condition=condition)
    return Tensor._make(
        data,
        (a, b),
        (
            lambda g: _unbroadcast(g * condition, a.shape),
            lambda g: _unbroadcast(g * (~condition), b.shape),
        ),
        op=("where", {"condition": condition}),
    )


def outer(a: Tensor, b: Tensor) -> Tensor:
    """Outer product of two 1-D tensors."""
    a, b = _coerce(a), _coerce(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("outer() expects two 1-D tensors")
    return a.unsqueeze(1).matmul(b.unsqueeze(0))


def unfold_windows(tensor: Tensor, window: int, axis: int) -> Tensor:
    """Split ``axis`` into non-overlapping windows of length ``window``.

    The axis length must be divisible by ``window``; the result replaces the
    axis with two axes ``(length // window, window)``.  This is the primitive
    behind the temporal pooling of the multi-scale module (Section IV-D of
    the paper).
    """
    tensor = _coerce(tensor)
    axis = axis % tensor.ndim
    length = tensor.shape[axis]
    if length % window != 0:
        raise ValueError(
            f"axis length {length} is not divisible by the window size {window}"
        )
    new_shape = tensor.shape[:axis] + (length // window, window) + tensor.shape[axis + 1:]
    return tensor.reshape(*new_shape)


def one_hot(indices: np.ndarray, num_classes: int) -> Tensor:
    """Return a constant one-hot tensor for integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    flat = indices.reshape(-1)
    if flat.size and (flat.min() < 0 or flat.max() >= num_classes):
        raise ValueError("indices out of range for one_hot encoding")
    encoded = np.zeros((flat.size, num_classes))
    encoded[np.arange(flat.size), flat] = 1.0
    return Tensor(encoded.reshape(indices.shape + (num_classes,)))


def dot(a: Tensor, b: Tensor) -> Tensor:
    """Inner product of two 1-D tensors."""
    a, b = _coerce(a), _coerce(b)
    return (a * b).sum()


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Functional form of :meth:`Tensor.matmul`."""
    return _coerce(a).matmul(b)


def tensordot_last(a: Tensor, b: Tensor) -> Tensor:
    """Contract the last axis of ``a`` with the first axis of ``b``.

    Equivalent to ``numpy.tensordot(a, b, axes=1)`` and used where models mix
    features with a weight matrix while keeping arbitrary leading axes.
    """
    a, b = _coerce(a), _coerce(b)
    lead_shape = a.shape[:-1]
    flattened = a.reshape(-1, a.shape[-1])
    result = flattened.matmul(b)
    return result.reshape(*lead_shape, b.shape[-1])


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the trailing ``weight.ndim`` axes of ``x``.

    A fused primitive: the forward payload is a single
    :func:`repro.tensor.kernels.layer_norm` call (one plan step in the
    inference runtime instead of the ~10 primitive ops of the composed
    mean/var/sqrt formulation) with the analytic backward

    .. math::
        g_x = \\frac{1}{\\sigma}\\big(g_w - \\overline{g_w}
              - \\hat{x}\\, \\overline{g_w \\hat{x}}\\big), \\qquad
        g_w = g \\odot w

    where the overline denotes the mean over the normalised axes.  The
    forward op sequence matches the historical composed implementation
    bit for bit.
    """
    x, weight, bias = _coerce(x), _coerce(weight), _coerce(bias)
    if weight.shape != bias.shape:
        raise ValueError(f"weight shape {weight.shape} does not match bias shape {bias.shape}")
    if x.ndim < weight.ndim or x.shape[x.ndim - weight.ndim:] != weight.shape:
        raise ValueError(
            f"input trailing shape {x.shape} does not end with normalized shape {weight.shape}"
        )
    axes = tuple(range(x.ndim - weight.ndim, x.ndim))
    x_hat, sigma = K.layer_norm_stats(x.data, axes, eps)
    data = np.multiply(x_hat, weight.data)
    np.add(data, bias.data, out=data)
    weight_data = weight.data

    def grad_x(g: np.ndarray) -> np.ndarray:
        return K.layer_norm_backward(g, x_hat, sigma, weight_data, axes=axes)

    def grad_weight(g: np.ndarray) -> np.ndarray:
        return _unbroadcast(g * x_hat, weight.shape)

    def grad_bias(g: np.ndarray) -> np.ndarray:
        return _unbroadcast(g, bias.shape)

    return Tensor._make(
        data,
        (x, weight, bias),
        (grad_x, grad_weight, grad_bias),
        op=("layer_norm", {"axes": axes, "eps": eps}),
    )
