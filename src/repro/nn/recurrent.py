"""Recurrent layers: GRU and LSTM cells and multi-step wrappers.

The FC-LSTM, GRU-ED, DCRNN and AGCRN baselines all need recurrent state
updates.  Cells operate on ``(batch, features)`` tensors; the layer wrappers
iterate over the time axis of ``(batch, time, features)`` input.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, init, ops
from .module import Module, Parameter

__all__ = ["GRUCell", "LSTMCell", "GRU", "LSTM"]


class GRUCell(Module):
    """Gated recurrent unit cell.

    Implements the standard update

    .. math::
        z = \\sigma(x W_{xz} + h W_{hz} + b_z) \\qquad
        r = \\sigma(x W_{xr} + h W_{hr} + b_r)

        \\tilde h = \\tanh(x W_{xn} + (r \\odot h) W_{hn} + b_n) \\qquad
        h' = (1 - z) \\odot \\tilde h + z \\odot h
    """

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 3 * hidden_size)), name="weight_ih")
        self.weight_hh = Parameter(init.orthogonal((hidden_size, 3 * hidden_size)), name="weight_hh")
        self.bias = Parameter(init.zeros((3 * hidden_size,)), name="bias")

    def forward(self, x: Tensor, hidden: Optional[Tensor] = None) -> Tensor:
        if hidden is None:
            hidden = Tensor(np.zeros(x.shape[:-1] + (self.hidden_size,)))
        gates_x = ops.tensordot_last(x, self.weight_ih) + self.bias
        gates_h = ops.tensordot_last(hidden, self.weight_hh)
        h = self.hidden_size
        update = (gates_x[..., :h] + gates_h[..., :h]).sigmoid()
        reset = (gates_x[..., h:2 * h] + gates_h[..., h:2 * h]).sigmoid()
        candidate = (gates_x[..., 2 * h:] + reset * gates_h[..., 2 * h:]).tanh()
        return (1.0 - update) * candidate + update * hidden


class LSTMCell(Module):
    """Long short-term memory cell with input, forget, cell and output gates."""

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((input_size, 4 * hidden_size)), name="weight_ih")
        self.weight_hh = Parameter(init.orthogonal((hidden_size, 4 * hidden_size)), name="weight_hh")
        # Forget-gate bias initialised to 1 for stable early training.
        bias = init.zeros((4 * hidden_size,))
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias, name="bias")

    def forward(
        self,
        x: Tensor,
        state: Optional[Tuple[Tensor, Tensor]] = None,
    ) -> Tuple[Tensor, Tensor]:
        if state is None:
            shape = x.shape[:-1] + (self.hidden_size,)
            state = (Tensor(np.zeros(shape)), Tensor(np.zeros(shape)))
        hidden, cell = state
        gates = (
            ops.tensordot_last(x, self.weight_ih)
            + ops.tensordot_last(hidden, self.weight_hh)
            + self.bias
        )
        h = self.hidden_size
        input_gate = gates[..., :h].sigmoid()
        forget_gate = gates[..., h:2 * h].sigmoid()
        cell_candidate = gates[..., 2 * h:3 * h].tanh()
        output_gate = gates[..., 3 * h:].sigmoid()
        new_cell = forget_gate * cell + input_gate * cell_candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class GRU(Module):
    """Multi-step GRU over ``(batch, time, features)`` input.

    Returns the full hidden sequence and the final hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1) -> None:
        super().__init__()
        from .module import ModuleList

        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells = []
        for layer in range(num_layers):
            cells.append(GRUCell(input_size if layer == 0 else hidden_size, hidden_size))
        self.cells = ModuleList(cells)

    def forward(self, x: Tensor, hidden: Optional[List[Tensor]] = None) -> Tuple[Tensor, List[Tensor]]:
        steps = x.shape[-2]
        layer_input_steps = [x[..., t, :] for t in range(steps)]
        states = list(hidden) if hidden is not None else [None] * self.num_layers
        for layer, cell in enumerate(self.cells):
            outputs = []
            state = states[layer]
            for step_input in layer_input_steps:
                state = cell(step_input, state)
                outputs.append(state)
            states[layer] = state
            layer_input_steps = outputs
        sequence = ops.stack(layer_input_steps, axis=-2)
        return sequence, states


class LSTM(Module):
    """Multi-step LSTM over ``(batch, time, features)`` input."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1) -> None:
        super().__init__()
        from .module import ModuleList

        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells = []
        for layer in range(num_layers):
            cells.append(LSTMCell(input_size if layer == 0 else hidden_size, hidden_size))
        self.cells = ModuleList(cells)

    def forward(
        self,
        x: Tensor,
        state: Optional[List[Tuple[Tensor, Tensor]]] = None,
    ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        steps = x.shape[-2]
        layer_input_steps = [x[..., t, :] for t in range(steps)]
        states = list(state) if state is not None else [None] * self.num_layers
        for layer, cell in enumerate(self.cells):
            outputs = []
            current = states[layer]
            for step_input in layer_input_steps:
                hidden, cell_state = cell(step_input, current)
                current = (hidden, cell_state)
                outputs.append(hidden)
            states[layer] = current
            layer_input_steps = outputs
        sequence = ops.stack(layer_input_steps, axis=-2)
        return sequence, states
