"""Core feed-forward layers: Linear, Embedding, activations, Dropout, norms.

These are the building blocks shared by the DyHSL model and every neural
baseline.  All layers operate on the trailing feature dimension so they can
be applied to tensors with arbitrary leading (batch / node / time) axes, the
same convention PyTorch uses and the one the DyHSL equations assume.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..tensor import Tensor, functional as F, init, ops
from ..tensor.random import fork_rng
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "Identity",
    "MLP",
]


class Linear(Module):
    """Affine transformation ``y = x W + b`` applied to the last axis.

    Parameters
    ----------
    in_features:
        Size of the input feature dimension.
    out_features:
        Size of the output feature dimension.
    bias:
        Whether to add a learnable bias.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear requires positive feature dimensions")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features)), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected input with {self.in_features} features, got {x.shape[-1]}"
            )
        out = ops.tensordot_last(x, self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in_features={self.in_features}, out_features={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors.

    DyHSL uses embeddings for node (spatial) and time-of-window (temporal)
    identities that are added to the raw traffic features before the prior
    graph convolution.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding requires positive sizes")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=0.1), name="weight")

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[indices]

    def __repr__(self) -> str:
        return f"Embedding(num_embeddings={self.num_embeddings}, embedding_dim={self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout.  Active only in training mode."""

    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1); got {p}")
        self.p = p
        self._rng = fork_rng(offset=17)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class LayerNorm(Module):
    """Layer normalisation over the trailing feature dimension(s)."""

    def __init__(self, normalized_shape, eps: float = 1e-5) -> None:
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.weight = Parameter(init.ones(self.normalized_shape), name="weight")
        self.bias = Parameter(init.zeros(self.normalized_shape), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        # Fused primitive: one kernel call instead of the composed
        # mean/var/sqrt chain (same op sequence internally, so the numbers
        # are unchanged; the inference runtime replays it as a single step).
        return ops.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm(normalized_shape={self.normalized_shape}, eps={self.eps})"


class BatchNorm1d(Module):
    """Batch normalisation over the first axis for ``(batch, features)`` input.

    Running statistics are tracked as buffers so evaluation uses the training
    population estimates, matching the standard deep-learning recipe.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="weight")
        self.bias = Parameter(init.zeros((num_features,)), name="bias")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expected {self.num_features} features, got {x.shape[-1]}"
            )
        if self.training:
            axes = tuple(range(x.ndim - 1))
            batch_mean = x.data.mean(axis=axes)
            batch_var = x.data.var(axis=axes)
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"] + self.momentum * batch_mean
            )
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"] + self.momentum * batch_var
            )
            mean = x.mean(axis=axes, keepdims=True)
            variance = x.var(axis=axes, keepdims=True)
        else:
            mean = Tensor(self._buffers["running_mean"])
            variance = Tensor(self._buffers["running_var"])
        normalised = (x - mean) / (variance + self.eps).sqrt()
        return normalised * self.weight + self.bias


class ReLU(Module):
    """Module wrapper around :func:`repro.tensor.functional.relu`."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Module wrapper around the leaky ReLU activation."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sigmoid(Module):
    """Module wrapper around the sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Module wrapper around the tanh activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class GELU(Module):
    """Module wrapper around the GELU activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Identity(Module):
    """Pass the input through unchanged (useful for optional blocks)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and optional dropout.

    Parameters
    ----------
    dims:
        Sequence of layer widths, e.g. ``[64, 128, 12]`` builds two linear
        layers ``64 -> 128 -> 12`` with a ReLU in between.
    dropout:
        Dropout probability applied after each hidden activation.
    """

    def __init__(self, dims: Sequence[int], dropout: float = 0.0) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP requires at least an input and an output dimension")
        self.dims = tuple(dims)
        from .module import ModuleList

        self.layers = ModuleList([Linear(dims[i], dims[i + 1]) for i in range(len(dims) - 1)])
        self.dropout = Dropout(dropout) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        num_layers = len(self.layers)
        for index, layer in enumerate(self.layers):
            x = layer(x)
            if index < num_layers - 1:
                x = x.relu()
                if self.dropout is not None:
                    x = self.dropout(x)
        return x
