"""Regression losses for traffic forecasting.

The paper optimises the mean absolute error (Section IV-D).  PEMS data
contains missing readings recorded as zeros, so the de-facto standard in the
traffic-forecasting literature (and the STSGCN data release the paper uses)
is to *mask* those entries out of both the training loss and the evaluation
metrics.  The masked variants here follow that convention; the unmasked
variants are provided for completeness and for synthetic data without gaps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor
from .module import Module

__all__ = [
    "MAELoss",
    "MSELoss",
    "RMSELoss",
    "HuberLoss",
    "MaskedMAELoss",
    "MaskedMSELoss",
    "MaskedMAPELoss",
]


def _null_mask(target: Tensor, null_value: Optional[float]) -> np.ndarray:
    """Binary mask that is 0 where the target equals the null marker."""
    if null_value is None:
        return np.ones_like(target.data)
    if np.isnan(null_value):
        mask = ~np.isnan(target.data)
    else:
        mask = ~np.isclose(target.data, null_value)
    mask = mask.astype(float)
    total = mask.mean()
    if total == 0:
        # Degenerate batch where everything is missing: fall back to an
        # all-ones mask so the loss stays finite.
        return np.ones_like(target.data)
    return mask / total


class MAELoss(Module):
    """Mean absolute error, the training objective used by DyHSL."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return (prediction - target).abs().mean()


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        diff = prediction - target
        return (diff * diff).mean()


class RMSELoss(Module):
    """Root mean squared error (differentiable through the square root)."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        diff = prediction - target
        return ((diff * diff).mean() + 1e-12).sqrt()


class HuberLoss(Module):
    """Huber loss with threshold ``delta``."""

    def __init__(self, delta: float = 1.0) -> None:
        super().__init__()
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        diff = prediction - target
        abs_diff = diff.abs()
        quadratic = abs_diff.minimum(Tensor(np.array(self.delta)))
        linear = abs_diff - quadratic
        return (quadratic * quadratic * 0.5 + linear * self.delta).mean()


class MaskedMAELoss(Module):
    """MAE that ignores entries where the target equals ``null_value``.

    Parameters
    ----------
    null_value:
        Marker for missing observations (0.0 for PEMS flow data, ``nan`` for
        generic gaps, ``None`` to disable masking).
    """

    def __init__(self, null_value: Optional[float] = 0.0) -> None:
        super().__init__()
        self.null_value = null_value

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        mask = Tensor(_null_mask(target, self.null_value))
        return ((prediction - target).abs() * mask).mean()


class MaskedMSELoss(Module):
    """MSE that ignores entries where the target equals ``null_value``."""

    def __init__(self, null_value: Optional[float] = 0.0) -> None:
        super().__init__()
        self.null_value = null_value

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        mask = Tensor(_null_mask(target, self.null_value))
        diff = prediction - target
        return (diff * diff * mask).mean()


class MaskedMAPELoss(Module):
    """Mean absolute percentage error ignoring null targets.

    MAPE is undefined for zero targets; those entries are always removed in
    addition to the explicit null marker.
    """

    def __init__(self, null_value: Optional[float] = 0.0, epsilon: float = 1e-5) -> None:
        super().__init__()
        self.null_value = null_value
        self.epsilon = epsilon

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        mask = _null_mask(target, self.null_value)
        nonzero = (np.abs(target.data) > self.epsilon).astype(float)
        combined = mask * nonzero
        if combined.sum() == 0:
            combined = np.ones_like(combined)
        combined = combined / combined.mean()
        safe_target = Tensor(np.where(np.abs(target.data) > self.epsilon, target.data, 1.0))
        ratio = (prediction - target).abs() / safe_target.abs()
        return (ratio * Tensor(combined)).mean()
