"""Neural-network modules built on the :mod:`repro.tensor` autograd engine.

Provides the layers, recurrent cells, convolutions and losses used by the
DyHSL model (:mod:`repro.core`) and by every neural baseline
(:mod:`repro.baselines`).
"""

from .conv import CausalConv1d, Conv1d, TemporalConv
from .layers import (
    MLP,
    BatchNorm1d,
    Dropout,
    Embedding,
    GELU,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from .loss import (
    HuberLoss,
    MAELoss,
    MaskedMAELoss,
    MaskedMAPELoss,
    MaskedMSELoss,
    MSELoss,
    RMSELoss,
)
from .module import Module, ModuleList, Parameter, Sequential
from .recurrent import GRU, GRUCell, LSTM, LSTMCell

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "Identity",
    "MLP",
    "Conv1d",
    "CausalConv1d",
    "TemporalConv",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "MAELoss",
    "MSELoss",
    "RMSELoss",
    "HuberLoss",
    "MaskedMAELoss",
    "MaskedMSELoss",
    "MaskedMAPELoss",
]
