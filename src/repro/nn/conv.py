"""Temporal convolution layers.

The sequence baselines (TCN, STGCN, Graph WaveNet) rely on 1-D convolutions
along the time axis, optionally dilated and causal.  The implementation uses
an explicit gather of the input windows (an "im2col" style expansion), which
keeps the autograd graph simple and correct at the cost of some memory — an
acceptable trade-off for the CPU-scale experiments in this reproduction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ops
from ..tensor import init
from .module import Module, Parameter

__all__ = ["Conv1d", "CausalConv1d", "TemporalConv"]


class Conv1d(Module):
    """1-D convolution over the last axis of a ``(..., channels, length)`` tensor.

    Parameters
    ----------
    in_channels, out_channels:
        Number of input / output channels.
    kernel_size:
        Length of the convolution kernel.
    dilation:
        Spacing between kernel taps (dilated convolution).
    padding:
        Symmetric zero padding added to both ends of the sequence.
    bias:
        Whether to add a learnable bias per output channel.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or dilation <= 0:
            raise ValueError("kernel_size and dilation must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.padding = padding
        # Weight layout: (kernel_size * in_channels, out_channels) so the
        # forward pass is a single matrix multiplication of gathered windows.
        self.weight = Parameter(
            init.kaiming_uniform((kernel_size * in_channels, out_channels)), name="weight"
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def output_length(self, length: int) -> int:
        """Length of the output sequence for an input of ``length`` steps."""
        effective = (self.kernel_size - 1) * self.dilation + 1
        return length + 2 * self.padding - effective + 1

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-2] != self.in_channels:
            raise ValueError(
                f"Conv1d expected {self.in_channels} channels, got {x.shape[-2]}"
            )
        if self.padding > 0:
            pad_width = [(0, 0)] * (x.ndim - 1) + [(self.padding, self.padding)]
            x = ops.pad(x, pad_width)
        length = x.shape[-1]
        out_length = length - (self.kernel_size - 1) * self.dilation
        if out_length <= 0:
            raise ValueError(
                f"input length {length} too short for kernel_size={self.kernel_size}, dilation={self.dilation}"
            )
        # Gather the kernel taps: list of (..., channels, out_length) slices.
        taps = []
        for k in range(self.kernel_size):
            start = k * self.dilation
            slicer = [slice(None)] * x.ndim
            slicer[-1] = slice(start, start + out_length)
            taps.append(x[tuple(slicer)])
        # After stacking, axes are (..., K, C, L).  We want (..., L, K*C) with K
        # as the slowest-varying factor to match the weight layout.
        stacked = ops.stack(taps, axis=-3)
        lead = stacked.shape[:-3]
        k, c, length_out = stacked.shape[-3], stacked.shape[-2], stacked.shape[-1]
        windows = stacked.transpose(*range(len(lead)), len(lead) + 2, len(lead), len(lead) + 1)
        windows = windows.reshape(*lead, length_out, k * c)
        out = ops.tensordot_last(windows, self.weight)
        if self.bias is not None:
            out = out + self.bias
        # (..., out_length, out_channels) -> (..., out_channels, out_length)
        return out.swapaxes(-1, -2)

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"dilation={self.dilation}, padding={self.padding})"
        )


class CausalConv1d(Conv1d):
    """Causal 1-D convolution: output at time ``t`` depends only on inputs ≤ t.

    Implemented by left-padding the sequence by ``(kernel_size - 1) * dilation``
    and trimming nothing from the right, the standard TCN construction.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        bias: bool = True,
    ) -> None:
        super().__init__(
            in_channels,
            out_channels,
            kernel_size,
            dilation=dilation,
            padding=0,
            bias=bias,
        )
        self.left_padding = (kernel_size - 1) * dilation

    def forward(self, x: Tensor) -> Tensor:
        if self.left_padding > 0:
            pad_width = [(0, 0)] * (x.ndim - 1) + [(self.left_padding, 0)]
            x = ops.pad(x, pad_width)
        return super().forward(x)


class TemporalConv(Module):
    """Gated temporal convolution block (GLU over two parallel convolutions).

    Used by the STGCN baseline: ``(P ) * sigmoid(Q)`` where ``P`` and ``Q``
    are 1-D convolutions of the input sequence.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3) -> None:
        super().__init__()
        self.conv_p = Conv1d(in_channels, out_channels, kernel_size)
        self.conv_q = Conv1d(in_channels, out_channels, kernel_size)
        self.residual = (
            Conv1d(in_channels, out_channels, kernel_size=1) if in_channels != out_channels else None
        )
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        p = self.conv_p(x)
        q = self.conv_q(x)
        gated = p * q.sigmoid()
        # Align the residual branch with the shortened output sequence.
        residual_input = x if self.residual is None else self.residual(x)
        trim = residual_input.shape[-1] - gated.shape[-1]
        if trim > 0:
            slicer = [slice(None)] * residual_input.ndim
            slicer[-1] = slice(trim, None)
            residual_input = residual_input[tuple(slicer)]
        return (gated + residual_input).relu()
