"""Module and parameter system.

Mirrors the ``torch.nn.Module`` design: a :class:`Module` owns
:class:`Parameter` leaves and child modules, exposes recursive parameter
iteration, training/evaluation switching and a flat ``state_dict`` for
checkpointing.  Everything in :mod:`repro.core` and :mod:`repro.baselines`
derives from this class.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a learnable model parameter.

    Parameters always require gradients and are discovered automatically by
    :meth:`Module.parameters` when assigned as attributes of a module.
    """

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)

    def __repr__(self) -> str:
        label = f", name={self.name!r}" if self.name else ""
        return f"Parameter(shape={self.shape}{label})"


class Module:
    """Base class for all neural-network modules.

    Subclasses define parameters and child modules as attributes inside
    ``__init__`` and implement :meth:`forward`.  Calling the module invokes
    ``forward``.

    Example
    -------
    >>> class TwoLayer(Module):
    ...     def __init__(self):
    ...         super().__init__()
    ...         self.first = Linear(4, 8)
    ...         self.second = Linear(8, 1)
    ...     def forward(self, x):
    ...         return self.second(self.first(x).relu())
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True
        self._weights_version = 0

    @property
    def weights_version(self) -> int:
        """Counter bumped on every bulk weight load (``load_state_dict``).

        Aggregated recursively over child modules, so loading a state dict
        into any submodule changes the root's version too.  Together with
        an optimiser's ``step_count`` this forms a cheap parameter-version
        token: consumers that bake weights into derived state (the
        compiled-plan caches in :class:`repro.training.Trainer`) compare
        the token instead of hashing the weights.  Direct in-place writes
        to ``parameter.data`` bypass the counter.
        """
        version = getattr(self, "_weights_version", 0)
        for module in getattr(self, "_modules", {}).values():
            version += module.weights_version
        return version

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable array that should still be checkpointed."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        """Register a child module under an explicit name."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Parameter iteration
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its descendants."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs recursively, including self."""
        yield prefix.rstrip("."), self
        for module_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{module_name}.")

    def children(self) -> Iterator["Module"]:
        """Yield immediate child modules."""
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of learnable scalar parameters (Table IV metric)."""
        return sum(parameter.size for parameter in self.parameters())

    # ------------------------------------------------------------------
    # Mode switching and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set the module (and descendants) to training mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set the module (and descendants) to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter/buffer names to arrays."""
        state: Dict[str, np.ndarray] = {}
        for name, parameter in self.named_parameters():
            state[name] = parameter.data.copy()
        for module_name, module in self.named_modules():
            for buffer_name, buffer in module._buffers.items():
                key = f"{module_name}.{buffer_name}" if module_name else buffer_name
                state[key] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers from a :meth:`state_dict` mapping."""
        own_parameters = dict(self.named_parameters())
        own_buffers: Dict[str, Tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for buffer_name in module._buffers:
                key = f"{module_name}.{buffer_name}" if module_name else buffer_name
                own_buffers[key] = (module, buffer_name)

        missing = set(own_parameters) | set(own_buffers)
        for key, value in state.items():
            if key in own_parameters:
                parameter = own_parameters[key]
                value = np.asarray(value, dtype=parameter.data.dtype)
                if value.shape != parameter.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: checkpoint {value.shape} vs model {parameter.data.shape}"
                    )
                parameter.data[...] = value
                missing.discard(key)
            elif key in own_buffers:
                module, buffer_name = own_buffers[key]
                module.register_buffer(buffer_name, np.asarray(value))
                missing.discard(key)
            elif strict:
                raise KeyError(f"unexpected key in state_dict: {key!r}")
        if strict and missing:
            raise KeyError(f"missing keys in state_dict: {sorted(missing)}")
        self._weights_version = self.weights_version + 1

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module output.  Must be overridden by subclasses."""
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = []
        for name, module in self._modules.items():
            child_repr = repr(module).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {child_repr}")
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"


class Sequential(Module):
    """Chain modules and apply them in order.

    Example
    -------
    >>> mlp = Sequential(Linear(16, 32), ReLU(), Linear(32, 1))
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """Hold an ordered list of modules so their parameters are registered."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._length = 0
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        """Append a module to the list."""
        self.add_module(str(self._length), module)
        self._length += 1
        return self

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        if index < 0:
            index += self._length
        return self._modules[str(index)]

    def forward(self, *args, **kwargs):
        raise NotImplementedError("ModuleList is a container and cannot be called directly")
