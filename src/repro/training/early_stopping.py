"""Early stopping on a monitored validation metric."""

from __future__ import annotations

import math
from typing import List, Optional

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Stop training when the validation metric stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated before
        signalling a stop.
    min_delta:
        Minimum decrease of the metric that counts as an improvement.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best: float = math.inf
        self.best_epoch: Optional[int] = None
        self.bad_epochs = 0
        self.history: List[float] = []

    def update(self, metric: float) -> bool:
        """Record ``metric`` for the current epoch.

        Returns
        -------
        bool
            ``True`` when the metric improved (callers typically checkpoint
            the model weights on improvement).
        """
        self.history.append(float(metric))
        epoch = len(self.history)
        if metric < self.best - self.min_delta:
            self.best = float(metric)
            self.best_epoch = epoch
            self.bad_epochs = 0
            return True
        self.bad_epochs += 1
        return False

    @property
    def should_stop(self) -> bool:
        """Whether the patience budget has been exhausted."""
        return self.bad_epochs >= self.patience

    def __repr__(self) -> str:
        return (
            f"EarlyStopping(best={self.best:.4f}, bad_epochs={self.bad_epochs}, patience={self.patience})"
        )
