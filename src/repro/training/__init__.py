"""Training, evaluation and experiment orchestration."""

from .checkpoints import (
    InMemoryCheckpoint,
    LoadedCheckpoint,
    artifact_dir_for,
    load_checkpoint,
    load_model_checkpoint,
    save_checkpoint,
    save_model_checkpoint,
    save_plan_artifacts,
)
from .early_stopping import EarlyStopping
from .experiment import ExperimentResult, run_neural_experiment, run_statistical_experiment
from .metrics import (
    ForecastMetrics,
    evaluate_forecast,
    horizon_metrics,
    masked_mae,
    masked_mape,
    masked_rmse,
)
from .trainer import Trainer, TrainerConfig, TrainingHistory

__all__ = [
    "ForecastMetrics",
    "masked_mae",
    "masked_rmse",
    "masked_mape",
    "evaluate_forecast",
    "horizon_metrics",
    "EarlyStopping",
    "InMemoryCheckpoint",
    "LoadedCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "save_model_checkpoint",
    "load_model_checkpoint",
    "save_plan_artifacts",
    "artifact_dir_for",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "ExperimentResult",
    "run_neural_experiment",
    "run_statistical_experiment",
]
