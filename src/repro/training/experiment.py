"""Experiment orchestration used by the benchmark harness.

:func:`run_neural_experiment` wraps the full train → evaluate cycle for a
neural model and records everything the paper's tables report: the three
test metrics (Table III), the parameter count, the mean training time per
epoch and the test-time inference latency (Table IV).

:func:`run_statistical_experiment` does the same for the classical
baselines (HA, ARIMA, VAR, SVR), which implement a simple
``fit(signal) / forecast(windows)`` interface instead of gradient training.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..data.loaders import ForecastingData
from ..nn import Module
from .metrics import ForecastMetrics, evaluate_forecast
from .trainer import Trainer, TrainerConfig

__all__ = ["ExperimentResult", "run_neural_experiment", "run_statistical_experiment"]


@dataclass
class ExperimentResult:
    """Everything a benchmark needs to print one table row.

    Attributes
    ----------
    name:
        Model name as it appears in the paper's tables.
    metrics:
        Test-set MAE / RMSE / MAPE on the original scale.
    num_parameters:
        Learnable parameter count (0 for statistical baselines).
    train_seconds_per_epoch:
        Mean wall-clock training time per epoch (0 when not applicable).
    test_seconds:
        Wall-clock time of the full test-set prediction pass.
    epochs_trained:
        Number of epochs actually run (early stopping may cut training short).
    extra:
        Free-form auxiliary values (e.g. validation curve).
    """

    name: str
    metrics: ForecastMetrics
    num_parameters: int = 0
    train_seconds_per_epoch: float = 0.0
    test_seconds: float = 0.0
    epochs_trained: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, float]:
        """Flatten into a printable dictionary."""
        return {
            "model": self.name,
            "MAE": round(self.metrics.mae, 2),
            "RMSE": round(self.metrics.rmse, 2),
            "MAPE": round(self.metrics.mape, 2),
            "parameters": self.num_parameters,
            "train_s_per_epoch": round(self.train_seconds_per_epoch, 2),
            "test_s": round(self.test_seconds, 2),
        }


def run_neural_experiment(
    name: str,
    model: Module,
    data: ForecastingData,
    trainer_config: Optional[TrainerConfig] = None,
) -> ExperimentResult:
    """Train ``model`` on ``data`` and measure test metrics and costs."""
    trainer = Trainer(model, data, trainer_config)
    history = trainer.fit()

    started = time.perf_counter()
    predictions = trainer.predict(data.test.inputs)
    test_seconds = time.perf_counter() - started
    metrics = evaluate_forecast(predictions, data.test.targets, null_value=trainer.config.null_value)

    return ExperimentResult(
        name=name,
        metrics=metrics,
        num_parameters=model.num_parameters(),
        train_seconds_per_epoch=history.mean_epoch_seconds,
        test_seconds=test_seconds,
        epochs_trained=history.num_epochs,
        extra={"best_epoch": float(history.best_epoch or 0)},
    )


def run_statistical_experiment(
    name: str,
    model,
    data: ForecastingData,
    null_value: Optional[float] = 0.0,
) -> ExperimentResult:
    """Fit a statistical baseline and measure its test metrics and costs.

    ``model`` must implement ``fit(signal)`` over the raw training signal
    (shape ``(T, N)``) and ``forecast(windows)`` mapping raw input windows
    ``(samples, T, N)`` to predictions ``(samples, T', N)``.
    """
    train_signal = data.dataset.signal[..., 0]
    # Statistical baselines are fitted on the chronological training portion only.
    from ..data.splits import chronological_split

    train_part, _, _ = chronological_split(train_signal, data.ratios)

    started = time.perf_counter()
    model.fit(train_part)
    fit_seconds = time.perf_counter() - started

    raw_inputs = data.scaler.inverse_transform(data.test.inputs[..., 0])
    started = time.perf_counter()
    predictions = model.forecast(raw_inputs)
    test_seconds = time.perf_counter() - started
    metrics = evaluate_forecast(predictions, data.test.targets, null_value=null_value)

    return ExperimentResult(
        name=name,
        metrics=metrics,
        num_parameters=0,
        train_seconds_per_epoch=fit_seconds,
        test_seconds=test_seconds,
        epochs_trained=1,
    )
