"""Training loop for neural forecasting models.

The trainer reproduces the optimisation protocol of Section V-A4: Adam with
learning rate ``1e-3``, batch size 32, MAE loss on the (normalised) model
outputs, with early stopping on the validation MAE and restoration of the
best weights.  Epoch counts and batch sizes are configurable because the
CPU-scale benchmark harness trains far shorter runs than the paper's 100
GPU epochs.

Conventions
-----------
* models consume normalised inputs ``(batch, T, N, F)`` and produce
  normalised predictions ``(batch, T', N)``;
* targets handed to the trainer are on the **original** scale; the trainer
  normalises them with the pipeline's scaler for the loss and
  inverse-transforms predictions for metric reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.loaders import DataLoader, ForecastingData
from ..nn import MaskedMAELoss, Module
from ..optim import Adam, clip_grad_norm
from ..tensor import Tensor, no_grad
from .checkpoints import InMemoryCheckpoint
from .early_stopping import EarlyStopping
from .metrics import ForecastMetrics, evaluate_forecast

__all__ = ["TrainerConfig", "TrainingHistory", "Trainer"]


@dataclass
class TrainerConfig:
    """Optimisation hyperparameters.

    The defaults mirror the paper; ``max_epochs`` is deliberately small so
    CPU experiments stay tractable — increase it for full runs.
    """

    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    batch_size: int = 32
    max_epochs: int = 30
    gradient_clip: Optional[float] = 5.0
    patience: int = 10
    null_value: Optional[float] = 0.0
    shuffle: bool = True
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.max_epochs <= 0 or self.batch_size <= 0:
            raise ValueError("max_epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :meth:`Trainer.fit`."""

    train_loss: List[float] = field(default_factory=list)
    validation_mae: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    best_epoch: Optional[int] = None

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def mean_epoch_seconds(self) -> float:
        """Average wall-clock seconds per epoch (Table IV's training time)."""
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0


class Trainer:
    """Train and evaluate a neural forecasting model on a data pipeline.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` mapping ``(B, T, N, F)`` to ``(B, T', N)``.
    data:
        The preprocessed forecasting data pipeline.
    config:
        Optimisation settings.
    """

    def __init__(self, model: Module, data: ForecastingData, config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.data = data
        self.config = config or TrainerConfig()
        self.loss_fn = MaskedMAELoss(null_value=None)
        self.optimizer = Adam(
            model.parameters(), lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def _normalise_targets(self, targets: np.ndarray) -> np.ndarray:
        return self.data.scaler.transform(targets)

    def _train_epoch(self, loader: DataLoader) -> float:
        self.model.train()
        losses: List[float] = []
        for inputs, targets in loader:
            self.optimizer.zero_grad()
            predictions = self.model(Tensor(inputs))
            loss = self.loss_fn(predictions, Tensor(self._normalise_targets(targets)))
            loss.backward()
            if self.config.gradient_clip is not None:
                clip_grad_norm(self.optimizer.parameters, self.config.gradient_clip)
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def predict(
        self,
        inputs: np.ndarray,
        batch_size: Optional[int] = None,
        runtime: Optional[str] = None,
    ) -> np.ndarray:
        """Predict raw-scale flow for an array of input windows.

        Inference runs through the graph-free compiled runtime by default
        (``runtime="autograd"`` or ``REPRO_RUNTIME=autograd`` falls back to
        plain ``no_grad`` forwards; both agree within 1e-10).  Plans are
        compiled fresh per call so they always see the current weights;
        the one-time trace costs about one autograd forward and amortises
        over the remaining batches of the split.

        Parameters
        ----------
        inputs:
            Normalised windows of shape ``(samples, T, N, F)``.
        batch_size:
            Prediction batch size (defaults to the training batch size).
        runtime:
            ``"compiled"``, ``"autograd"`` or ``None`` (environment /
            compiled default) — see :func:`repro.runtime.resolve_runtime_mode`.

        Returns
        -------
        numpy.ndarray
            Predictions of shape ``(samples, T', N)`` on the original scale.
        """
        from ..runtime import compile_module, resolve_runtime_mode

        self.model.eval()
        batch_size = batch_size or self.config.batch_size
        compiled = (
            compile_module(self.model) if resolve_runtime_mode(runtime) == "compiled" else None
        )
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, inputs.shape[0], batch_size):
                batch = inputs[start:start + batch_size]
                if compiled is not None:
                    outputs.append(compiled(batch))
                else:
                    outputs.append(self.model(Tensor(batch)).data)
        stacked = np.concatenate(outputs, axis=0) if outputs else np.empty((0,))
        return self.data.inverse_transform(stacked)

    def evaluate(self, split: str = "test") -> ForecastMetrics:
        """Evaluate MAE / RMSE / MAPE on one split (original scale)."""
        split_data = getattr(self.data, split)
        predictions = self.predict(split_data.inputs)
        return evaluate_forecast(predictions, split_data.targets, null_value=self.config.null_value)

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        """Run the full training loop with early stopping.

        Returns the per-epoch history; the model is left holding the weights
        of its best validation epoch.
        """
        config = self.config
        train_loader = self.data.train.loader(batch_size=config.batch_size, shuffle=config.shuffle)
        stopper = EarlyStopping(patience=config.patience)
        checkpoint = InMemoryCheckpoint()

        for epoch in range(1, config.max_epochs + 1):
            started = time.perf_counter()
            train_loss = self._train_epoch(train_loader)
            validation = self.evaluate(split="validation")
            elapsed = time.perf_counter() - started

            self.history.train_loss.append(train_loss)
            self.history.validation_mae.append(validation.mae)
            self.history.epoch_seconds.append(elapsed)

            improved = stopper.update(validation.mae)
            if improved:
                checkpoint.save(self.model, epoch=epoch, validation_mae=validation.mae)
                self.history.best_epoch = epoch
            if config.verbose:
                print(
                    f"epoch {epoch:3d}  loss {train_loss:.4f}  val MAE {validation.mae:.3f}"
                    f"  ({elapsed:.1f}s){'  *' if improved else ''}"
                )
            if stopper.should_stop:
                break

        if checkpoint.has_snapshot:
            checkpoint.restore(self.model)
        return self.history
