"""Training loop for neural forecasting models.

The trainer reproduces the optimisation protocol of Section V-A4: Adam with
learning rate ``1e-3``, batch size 32, MAE loss on the (normalised) model
outputs, with early stopping on the validation MAE and restoration of the
best weights.  Epoch counts and batch sizes are configurable because the
CPU-scale benchmark harness trains far shorter runs than the paper's 100
GPU epochs.

Conventions
-----------
* models consume normalised inputs ``(batch, T, N, F)`` and produce
  normalised predictions ``(batch, T', N)``;
* targets handed to the trainer are on the **original** scale; the trainer
  normalises them with the pipeline's scaler for the loss and
  inverse-transforms predictions for metric reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.loaders import DataLoader, ForecastingData
from ..nn import MaskedMAELoss, Module
from ..optim import Adam, clip_grad_norm
from ..tensor import Tensor, no_grad
from .checkpoints import InMemoryCheckpoint
from .early_stopping import EarlyStopping
from .metrics import ForecastMetrics, evaluate_forecast

__all__ = ["TrainerConfig", "TrainingHistory", "Trainer"]


@dataclass
class TrainerConfig:
    """Optimisation hyperparameters.

    The defaults mirror the paper; ``max_epochs`` is deliberately small so
    CPU experiments stay tractable — increase it for full runs.
    """

    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    batch_size: int = 32
    max_epochs: int = 30
    gradient_clip: Optional[float] = 5.0
    patience: int = 10
    null_value: Optional[float] = 0.0
    shuffle: bool = True
    verbose: bool = False
    #: Replay the training forward through the compiled runtime when the
    #: model is eligible (no active dropout / batch norm — see
    #: :func:`repro.runtime.plan_trainable`); ineligible models fall back
    #: to plain autograd automatically.  ``REPRO_RUNTIME=autograd`` also
    #: disables it.
    compiled_training: bool = True
    #: Execution-precision policy of the *inference* plans behind
    #: :meth:`Trainer.predict` / :meth:`Trainer.evaluate` (``"float64"`` /
    #: ``"float32"``; ``None`` consults ``REPRO_RUNTIME_PRECISION``).
    #: Training forwards and gradients always run float64 — the optimiser's
    #: accumulation precision is not a serving knob.
    inference_precision: Optional[str] = None
    #: Island-parallel replay width of the inference plans (``None``
    #: consults ``REPRO_RUNTIME_THREADS``).
    inference_threads: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_epochs <= 0 or self.batch_size <= 0:
            raise ValueError("max_epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :meth:`Trainer.fit`."""

    train_loss: List[float] = field(default_factory=list)
    validation_mae: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    best_epoch: Optional[int] = None

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def mean_epoch_seconds(self) -> float:
        """Average wall-clock seconds per epoch (Table IV's training time)."""
        return float(np.mean(self.epoch_seconds)) if self.epoch_seconds else 0.0


class Trainer:
    """Train and evaluate a neural forecasting model on a data pipeline.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` mapping ``(B, T, N, F)`` to ``(B, T', N)``.
    data:
        The preprocessed forecasting data pipeline.
    config:
        Optimisation settings.
    """

    def __init__(self, model: Module, data: ForecastingData, config: Optional[TrainerConfig] = None) -> None:
        self.model = model
        self.data = data
        self.config = config or TrainerConfig()
        self.loss_fn = MaskedMAELoss(null_value=None)
        self.optimizer = Adam(
            model.parameters(), lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        self.history = TrainingHistory()
        # Compiled-plan caches.  Inference plans fold parameter-derived
        # constants, so they are keyed by a parameter-version token and
        # rebuilt after weight updates; the training runtime captures
        # parameters by reference (nothing folded) and never goes stale.
        self._inference_runtime = None
        self._inference_token = None
        self._training_runtime = None
        self._training_runtime_resolved = False

    # ------------------------------------------------------------------
    def _normalise_targets(self, targets: np.ndarray) -> np.ndarray:
        return self.data.scaler.transform(targets)

    def _train_epoch(self, loader: DataLoader) -> float:
        """One optimisation pass over the training split.

        When the model is eligible (see :attr:`TrainerConfig.compiled_training`)
        the forward replays the fused kernel plan of the compiled training
        runtime: autograd re-attaches only at the loss boundary (the
        predictions become a leaf tensor), and the plan's recorded-tape
        backward routes ``d loss / d predictions`` to the parameter
        gradients — after which clipping and the optimiser run unchanged.
        """
        self.model.train()
        runtime = self._training_forward_runtime()
        losses: List[float] = []
        for inputs, targets in loader:
            self.optimizer.zero_grad()
            step = None
            if runtime is not None:
                step = runtime.step(inputs)
                predictions = Tensor(step.predictions, requires_grad=True)
            else:
                predictions = self.model(Tensor(inputs))
            loss = self.loss_fn(predictions, Tensor(self._normalise_targets(targets)))
            loss.backward()
            if step is not None:
                step.backward(predictions.grad)
            if self.config.gradient_clip is not None:
                clip_grad_norm(self.optimizer.parameters, self.config.gradient_clip)
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def _training_forward_runtime(self):
        """The compiled training runtime, or ``None`` for plain autograd."""
        if not self.config.compiled_training:
            return None
        from ..runtime import resolve_runtime_mode

        if resolve_runtime_mode(None) != "compiled":
            return None
        if not self._training_runtime_resolved:
            self._training_runtime_resolved = True
            from ..runtime import compile_training_model, plan_trainable

            if plan_trainable(self.model)[0]:
                self._training_runtime = compile_training_model(self.model)
        return self._training_runtime

    def predict(
        self,
        inputs: np.ndarray,
        batch_size: Optional[int] = None,
        runtime: Optional[str] = None,
    ) -> np.ndarray:
        """Predict raw-scale flow for an array of input windows.

        Inference runs through the graph-free compiled runtime by default
        (``runtime="autograd"`` or ``REPRO_RUNTIME=autograd`` falls back to
        plain ``no_grad`` forwards; both agree within 1e-10).  The compiled
        model is cached against a parameter-version token
        ``(optimizer.step_count, model.weights_version)``: repeated
        ``predict`` / ``evaluate`` calls between weight updates reuse the
        same plans instead of re-tracing per call, and any ``step()`` or
        ``load_state_dict`` invalidates the cache (direct in-place edits of
        ``parameter.data`` bypass the token — mutate through the optimiser
        or a state dict, or construct a fresh trainer).

        Parameters
        ----------
        inputs:
            Normalised windows of shape ``(samples, T, N, F)``.
        batch_size:
            Prediction batch size (defaults to the training batch size).
        runtime:
            ``"compiled"``, ``"autograd"`` or ``None`` (environment /
            compiled default) — see :func:`repro.runtime.resolve_runtime_mode`.

        Returns
        -------
        numpy.ndarray
            Predictions of shape ``(samples, T', N)`` on the original scale.
        """
        from ..runtime import resolve_runtime_mode

        self.model.eval()
        batch_size = batch_size or self.config.batch_size
        compiled = (
            self._compiled_for_inference()
            if resolve_runtime_mode(runtime) == "compiled"
            else None
        )
        outputs: List[np.ndarray] = []
        with no_grad():
            for start in range(0, inputs.shape[0], batch_size):
                batch = inputs[start:start + batch_size]
                if compiled is not None:
                    outputs.append(compiled(batch))
                else:
                    outputs.append(self.model(Tensor(batch)).data)
        stacked = np.concatenate(outputs, axis=0) if outputs else np.empty((0,))
        return self.data.inverse_transform(stacked)

    def _compiled_for_inference(self):
        """Version-cached :class:`~repro.runtime.CompiledModel` of the model.

        Inference plans bake folded parameter values, so the cache key is
        the parameter-version token; a stale token drops every plan and
        recompiles lazily on the next forward.
        """
        from ..runtime import compile_module

        token = (self.optimizer.step_count, self.model.weights_version)
        if self._inference_runtime is None or self._inference_token != token:
            self._inference_runtime = compile_module(
                self.model,
                precision=self.config.inference_precision,
                threads=self.config.inference_threads,
            )
            self._inference_token = token
        return self._inference_runtime

    def evaluate(self, split: str = "test") -> ForecastMetrics:
        """Evaluate MAE / RMSE / MAPE on one split (original scale)."""
        split_data = getattr(self.data, split)
        predictions = self.predict(split_data.inputs)
        return evaluate_forecast(predictions, split_data.targets, null_value=self.config.null_value)

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        """Run the full training loop with early stopping.

        Returns the per-epoch history; the model is left holding the weights
        of its best validation epoch.
        """
        config = self.config
        train_loader = self.data.train.loader(batch_size=config.batch_size, shuffle=config.shuffle)
        stopper = EarlyStopping(patience=config.patience)
        checkpoint = InMemoryCheckpoint()

        for epoch in range(1, config.max_epochs + 1):
            started = time.perf_counter()
            train_loss = self._train_epoch(train_loader)
            validation = self.evaluate(split="validation")
            elapsed = time.perf_counter() - started

            self.history.train_loss.append(train_loss)
            self.history.validation_mae.append(validation.mae)
            self.history.epoch_seconds.append(elapsed)

            improved = stopper.update(validation.mae)
            if improved:
                checkpoint.save(self.model, epoch=epoch, validation_mae=validation.mae)
                self.history.best_epoch = epoch
            if config.verbose:
                print(
                    f"epoch {epoch:3d}  loss {train_loss:.4f}  val MAE {validation.mae:.3f}"
                    f"  ({elapsed:.1f}s){'  *' if improved else ''}"
                )
            if stopper.should_stop:
                break

        if checkpoint.has_snapshot:
            checkpoint.restore(self.model)
        return self.history
