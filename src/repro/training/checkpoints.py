"""Model checkpointing.

Checkpoints are saved as NumPy ``.npz`` archives containing the flat
``state_dict`` of a model plus a small JSON metadata blob (epoch, metric).
This keeps the format dependency-free and diffable with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..nn import Module

__all__ = ["save_checkpoint", "load_checkpoint", "InMemoryCheckpoint"]

_METADATA_KEY = "__checkpoint_metadata__"


def save_checkpoint(
    model: Module,
    path: Union[str, Path],
    metadata: Optional[Dict[str, float]] = None,
) -> Path:
    """Serialise ``model.state_dict()`` (plus metadata) to ``path``.

    Returns the resolved path with the ``.npz`` suffix ensured.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    payload = dict(state)
    payload[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path


def load_checkpoint(model: Module, path: Union[str, Path]) -> Dict[str, float]:
    """Load a checkpoint saved by :func:`save_checkpoint` into ``model``.

    Returns the metadata dictionary stored alongside the weights.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        state = {key: archive[key] for key in archive.files if key != _METADATA_KEY}
        metadata_bytes = archive[_METADATA_KEY].tobytes() if _METADATA_KEY in archive.files else b"{}"
    model.load_state_dict(state)
    return json.loads(metadata_bytes.decode("utf-8"))


class InMemoryCheckpoint:
    """Keep the best model weights in memory during training.

    Avoids disk traffic for the many short training runs executed by the
    benchmark harness while still letting the trainer restore the best
    validation weights at the end.
    """

    def __init__(self) -> None:
        self._state: Optional[Dict[str, np.ndarray]] = None
        self._metadata: Dict[str, float] = {}

    def save(self, model: Module, **metadata: float) -> None:
        """Snapshot the model's current weights."""
        self._state = {key: value.copy() for key, value in model.state_dict().items()}
        self._metadata = dict(metadata)

    def restore(self, model: Module) -> Dict[str, float]:
        """Restore the last snapshot into ``model`` (no-op when empty)."""
        if self._state is not None:
            model.load_state_dict(self._state)
        return dict(self._metadata)

    @property
    def has_snapshot(self) -> bool:
        """Whether a snapshot has been taken."""
        return self._state is not None
