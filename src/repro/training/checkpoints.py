"""Model checkpointing.

Checkpoints are saved as NumPy ``.npz`` archives containing the flat
``state_dict`` of a model plus a small JSON metadata blob (epoch, metric).
This keeps the format dependency-free and diffable with standard tools.

Two levels of checkpoint exist:

* :func:`save_checkpoint` / :func:`load_checkpoint` — weights only; the
  caller must construct a matching model first.
* :func:`save_model_checkpoint` / :func:`load_model_checkpoint` — a
  *self-describing* checkpoint that additionally stores the
  :class:`~repro.core.DyHSLConfig`, the road-network adjacency and the
  fitted data scaler, so a fresh :class:`~repro.core.DyHSL` can be rebuilt
  from the file alone.  This is the format the serving layer
  (:mod:`repro.serving`) consumes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..nn import Module

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_model_checkpoint",
    "load_model_checkpoint",
    "save_plan_artifacts",
    "artifact_dir_for",
    "LoadedCheckpoint",
    "InMemoryCheckpoint",
]

_METADATA_KEY = "__checkpoint_metadata__"
_CONFIG_KEY = "__checkpoint_config__"
_ADJACENCY_KEY = "__checkpoint_adjacency__"
_SCALER_KEY = "__checkpoint_scaler__"
#: Keys in the archive that are not part of the model ``state_dict``.
_RESERVED_KEYS = (_METADATA_KEY, _CONFIG_KEY, _ADJACENCY_KEY, _SCALER_KEY)


def _encode_json(payload: Dict[str, Any]) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8)


def _decode_json(blob: np.ndarray) -> Dict[str, Any]:
    return json.loads(blob.tobytes().decode("utf-8"))


def save_checkpoint(
    model: Module,
    path: Union[str, Path],
    metadata: Optional[Dict[str, float]] = None,
) -> Path:
    """Serialise ``model.state_dict()`` (plus metadata) to ``path``.

    Returns the resolved path with the ``.npz`` suffix ensured.
    """
    return _write_archive(model, path, metadata or {})


def _write_archive(
    model: Module,
    path: Union[str, Path],
    metadata: Dict[str, float],
    extras: Optional[Dict[str, np.ndarray]] = None,
) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(model.state_dict())
    payload[_METADATA_KEY] = _encode_json(metadata)
    payload.update(extras or {})
    np.savez(path, **payload)
    return path


def load_checkpoint(model: Module, path: Union[str, Path]) -> Dict[str, float]:
    """Load a checkpoint saved by :func:`save_checkpoint` into ``model``.

    Returns the metadata dictionary stored alongside the weights.  Also
    accepts the richer :func:`save_model_checkpoint` archives — the
    self-description blobs are simply ignored.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        state = {key: archive[key] for key in archive.files if key not in _RESERVED_KEYS}
        metadata_bytes = archive[_METADATA_KEY].tobytes() if _METADATA_KEY in archive.files else b"{}"
    model.load_state_dict(state)
    return json.loads(metadata_bytes.decode("utf-8"))


def save_model_checkpoint(
    model: Module,
    path: Union[str, Path],
    adjacency: np.ndarray,
    scaler: Optional[Any] = None,
    metadata: Optional[Dict[str, float]] = None,
) -> Path:
    """Save a self-describing DyHSL checkpoint.

    Besides the weights, the archive records the model's
    :class:`~repro.core.DyHSLConfig`, the road-network ``adjacency`` and
    (optionally) the fitted data scaler, so :func:`load_model_checkpoint`
    can rebuild the complete inference stack without any other inputs.

    Parameters
    ----------
    model:
        A :class:`~repro.core.DyHSL` instance (anything exposing a
        dataclass ``config`` attribute works).
    adjacency:
        Road-network adjacency ``(N, N)`` the model was built with.
    scaler:
        A fitted scaler exposing ``to_dict()`` (see
        :mod:`repro.data.scalers`), or ``None``.
    metadata:
        Free-form JSON-serialisable run information (epoch, metrics, ...).
    """
    config = getattr(model, "config", None)
    if config is None:
        raise ValueError("model does not expose a config attribute; use save_checkpoint instead")
    extras: Dict[str, np.ndarray] = {
        _CONFIG_KEY: _encode_json(asdict(config)),
        _ADJACENCY_KEY: np.asarray(adjacency, dtype=float),
    }
    if scaler is not None:
        extras[_SCALER_KEY] = _encode_json(scaler.to_dict())
    return _write_archive(model, path, metadata or {}, extras=extras)


def artifact_dir_for(checkpoint_path: Union[str, Path]) -> Path:
    """The conventional plan-artifact directory of one checkpoint.

    ``dyhsl.npz`` → ``dyhsl.artifacts`` — the sidecar a serving process
    passes as ``artifact_dir=`` to warm-start without retracing.
    """
    path = Path(checkpoint_path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    return path.with_suffix(".artifacts")


def save_plan_artifacts(
    model: Module,
    checkpoint_path: Union[str, Path],
    examples,
    precisions=("float64",),
    threads: Optional[int] = None,
    bucket_batches=None,
    artifact_dir: Optional[Union[str, Path]] = None,
    node_shards: Optional[int] = None,
) -> Path:
    """Compile serving plans ahead of time and persist them beside a checkpoint.

    The AOT half of "compile at train time": after
    :func:`save_model_checkpoint`, call this with the batch shapes the
    deployment will serve — each ``(example, precision)`` pair is traced,
    compiled and written as a durable plan artifact (see
    :mod:`repro.runtime.artifacts`) into ``artifact_dir`` (default: the
    :func:`artifact_dir_for` sidecar of ``checkpoint_path``).  A service
    restarted with ``from_checkpoint(path, artifact_dir=...)`` then binds
    its plans from disk and serves its first request with zero retraces.

    Examples are bucketed and precision-cast exactly like live requests,
    and ``threads`` defaults to the same ``REPRO_RUNTIME_THREADS``
    resolution a service applies — the trace key covers the parallel
    binding, so AOT compilation must mirror the serving configuration for
    its artifacts to be found.  For the same reason a node-sharded
    deployment needs its *sliced-output* plans pre-compiled (the output
    slice is part of the trace key): pass ``node_shards=K`` to also write
    one plan ladder per shard of the
    ``ShardedForecastService(num_shards=K, mode="nodes")`` partition.
    Replica fleets and single-worker services use the full-output plans,
    no extra flag needed.  Returns the artifact directory.
    """
    from ..runtime import ArtifactStore, CompiledModel

    directory = Path(artifact_dir) if artifact_dir is not None else artifact_dir_for(checkpoint_path)
    store = ArtifactStore(directory)
    slices: List[Optional[tuple]] = [None]
    if node_shards is not None:
        from ..serving.sharding import partition_nodes

        slices.extend(partition_nodes(model.config.num_nodes, node_shards))
    for precision in precisions:
        for output_slice in slices:
            compiled = CompiledModel(
                model,
                precision=precision,
                threads=threads,
                bucket_batches=bucket_batches,
                output_slice=output_slice,
                artifact_dir=store,
            )
            for example in examples:
                compiled.compile_for(example)
    return directory


@dataclass
class LoadedCheckpoint:
    """Everything :func:`load_model_checkpoint` recovers from an archive."""

    model: Module
    config: Any
    adjacency: np.ndarray
    scaler: Optional[Any]
    metadata: Dict[str, float]


def load_model_checkpoint(path: Union[str, Path]) -> LoadedCheckpoint:
    """Rebuild a fresh :class:`~repro.core.DyHSL` from a self-describing checkpoint.

    The returned model carries the checkpointed weights and is left in
    evaluation mode, ready for inference.
    """
    # Imported lazily: ``repro.core`` must not be a hard import of the
    # training subpackage at module load time.
    from ..core import DyHSL, DyHSLConfig
    from ..data.scalers import scaler_from_dict

    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        files = set(archive.files)
        if _CONFIG_KEY not in files or _ADJACENCY_KEY not in files:
            raise ValueError(
                f"checkpoint {path} is not self-describing; save it with save_model_checkpoint"
            )
        config = DyHSLConfig(**_decode_json(archive[_CONFIG_KEY]))
        adjacency = np.asarray(archive[_ADJACENCY_KEY], dtype=float)
        scaler = scaler_from_dict(_decode_json(archive[_SCALER_KEY])) if _SCALER_KEY in files else None
        metadata = _decode_json(archive[_METADATA_KEY]) if _METADATA_KEY in files else {}
        state = {key: archive[key] for key in files if key not in _RESERVED_KEYS}
    model = DyHSL(config, adjacency)
    model.load_state_dict(state)
    model.eval()
    return LoadedCheckpoint(
        model=model, config=config, adjacency=adjacency, scaler=scaler, metadata=metadata
    )


class InMemoryCheckpoint:
    """Keep the best model weights in memory during training.

    Avoids disk traffic for the many short training runs executed by the
    benchmark harness while still letting the trainer restore the best
    validation weights at the end.
    """

    def __init__(self) -> None:
        self._state: Optional[Dict[str, np.ndarray]] = None
        self._metadata: Dict[str, float] = {}

    def save(self, model: Module, **metadata: float) -> None:
        """Snapshot the model's current weights."""
        self._state = {key: value.copy() for key, value in model.state_dict().items()}
        self._metadata = dict(metadata)

    def restore(self, model: Module) -> Dict[str, float]:
        """Restore the last snapshot into ``model`` (no-op when empty)."""
        if self._state is not None:
            model.load_state_dict(self._state)
        return dict(self._metadata)

    @property
    def has_snapshot(self) -> bool:
        """Whether a snapshot has been taken."""
        return self._state is not None
