"""Evaluation metrics: MAE, RMSE and MAPE with null-value masking.

The paper evaluates with Mean Absolute Error, Root Mean Squared Error and
Mean Absolute Percentage Error (Section V-A2).  Following the standard
protocol of the STSGCN data release, entries whose ground truth equals the
null marker (0 for PEMS flow) are excluded from every metric, and MAPE
additionally excludes near-zero targets to stay well defined.

All functions operate on plain NumPy arrays on the *original* (vehicles per
5 minutes) scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["ForecastMetrics", "masked_mae", "masked_rmse", "masked_mape", "evaluate_forecast", "horizon_metrics"]


def _mask(target: np.ndarray, null_value: Optional[float]) -> np.ndarray:
    """Boolean mask of entries that participate in the metric."""
    if null_value is None:
        return np.ones_like(target, dtype=bool)
    if np.isnan(null_value):
        return ~np.isnan(target)
    return ~np.isclose(target, null_value)


def masked_mae(prediction: np.ndarray, target: np.ndarray, null_value: Optional[float] = 0.0) -> float:
    """Mean absolute error over non-null target entries."""
    prediction = np.asarray(prediction, dtype=float)
    target = np.asarray(target, dtype=float)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: prediction {prediction.shape} vs target {target.shape}")
    mask = _mask(target, null_value)
    if not mask.any():
        return 0.0
    return float(np.abs(prediction[mask] - target[mask]).mean())


def masked_rmse(prediction: np.ndarray, target: np.ndarray, null_value: Optional[float] = 0.0) -> float:
    """Root mean squared error over non-null target entries."""
    prediction = np.asarray(prediction, dtype=float)
    target = np.asarray(target, dtype=float)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: prediction {prediction.shape} vs target {target.shape}")
    mask = _mask(target, null_value)
    if not mask.any():
        return 0.0
    return float(np.sqrt(np.square(prediction[mask] - target[mask]).mean()))


def masked_mape(
    prediction: np.ndarray,
    target: np.ndarray,
    null_value: Optional[float] = 0.0,
    epsilon: float = 1e-5,
) -> float:
    """Mean absolute percentage error (in %) over non-null, non-zero targets."""
    prediction = np.asarray(prediction, dtype=float)
    target = np.asarray(target, dtype=float)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: prediction {prediction.shape} vs target {target.shape}")
    mask = _mask(target, null_value) & (np.abs(target) > epsilon)
    if not mask.any():
        return 0.0
    ratio = np.abs(prediction[mask] - target[mask]) / np.abs(target[mask])
    return float(ratio.mean() * 100.0)


@dataclass(frozen=True)
class ForecastMetrics:
    """Bundle of the three headline metrics used throughout the paper."""

    mae: float
    rmse: float
    mape: float

    def as_dict(self) -> Dict[str, float]:
        """Return the metrics as a plain dictionary."""
        return {"MAE": self.mae, "RMSE": self.rmse, "MAPE": self.mape}

    def __str__(self) -> str:
        return f"MAE={self.mae:.2f}  RMSE={self.rmse:.2f}  MAPE={self.mape:.2f}%"


def evaluate_forecast(
    prediction: np.ndarray,
    target: np.ndarray,
    null_value: Optional[float] = 0.0,
) -> ForecastMetrics:
    """Compute MAE, RMSE and MAPE in one call."""
    return ForecastMetrics(
        mae=masked_mae(prediction, target, null_value),
        rmse=masked_rmse(prediction, target, null_value),
        mape=masked_mape(prediction, target, null_value),
    )


def horizon_metrics(
    prediction: np.ndarray,
    target: np.ndarray,
    null_value: Optional[float] = 0.0,
) -> Dict[int, ForecastMetrics]:
    """Per-horizon metrics for ``(samples, horizon, nodes)`` arrays.

    Returns a mapping ``{horizon_step (1-based): ForecastMetrics}`` so the
    15/30/60-minute breakdown common in the literature can be reported.
    """
    prediction = np.asarray(prediction, dtype=float)
    target = np.asarray(target, dtype=float)
    if prediction.ndim != 3 or prediction.shape != target.shape:
        raise ValueError("horizon_metrics expects matching (samples, horizon, nodes) arrays")
    return {
        step + 1: evaluate_forecast(prediction[:, step], target[:, step], null_value)
        for step in range(prediction.shape[1])
    }
