"""Reproduction of DyHSL (Dynamic Hypergraph Structure Learning, ICDE 2023).

The package is organised in layered subpackages:

* ``repro.tensor`` / ``repro.nn`` / ``repro.optim`` - NumPy autograd substrate;
* ``repro.graph`` / ``repro.data`` - graph and traffic-data substrates;
* ``repro.core`` - the DyHSL model (the paper's contribution);
* ``repro.baselines`` - comparison models from the paper's Table III;
* ``repro.training`` / ``repro.analysis`` - training, metrics and the
  analyses behind the paper's tables and figures.
"""

from . import analysis, baselines, core, data, graph, nn, optim, tensor, training
from .core import DyHSL, DyHSLConfig

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "optim",
    "graph",
    "data",
    "core",
    "baselines",
    "training",
    "analysis",
    "DyHSL",
    "DyHSLConfig",
    "__version__",
]
