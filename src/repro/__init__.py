"""Reproduction of DyHSL (Dynamic Hypergraph Structure Learning, ICDE 2023).

The package is organised in layered subpackages:

* ``repro.tensor`` / ``repro.nn`` / ``repro.optim`` - NumPy autograd substrate;
* ``repro.graph`` / ``repro.data`` - graph and traffic-data substrates;
* ``repro.core`` - the DyHSL model (the paper's contribution);
* ``repro.baselines`` - comparison models from the paper's Table III;
* ``repro.training`` / ``repro.analysis`` - training, metrics and the
  analyses behind the paper's tables and figures;
* ``repro.runtime`` - graph-free compiled inference: shared ndarray
  kernels replayed as flat plans with reused workspace buffers;
* ``repro.serving`` - production inference: micro-batched, cached,
  streaming forecast serving on top of trained checkpoints.
"""

from . import analysis, baselines, core, data, graph, nn, optim, runtime, serving, tensor, training
from .core import DyHSL, DyHSLConfig
from .runtime import CompiledModel, compile_module
from .serving import ForecastService

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "optim",
    "runtime",
    "CompiledModel",
    "compile_module",
    "graph",
    "data",
    "core",
    "baselines",
    "training",
    "analysis",
    "serving",
    "DyHSL",
    "DyHSLConfig",
    "ForecastService",
    "__version__",
]
