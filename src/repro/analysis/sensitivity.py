"""Hyperparameter sensitivity sweeps (paper Fig. 5).

Fig. 5 of the paper varies three hyperparameters of DyHSL — the number of
hidden layers ``Ls`` in the multi-scale module, the number of hyperedges
``I`` and the hidden dimension ``d`` — one at a time while keeping the
others at their defaults, and reports MAE / RMSE / MAPE for each value.
:func:`sensitivity_sweep` reproduces that protocol on the synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core import DyHSL, DyHSLConfig
from ..data.loaders import ForecastingData
from ..training.experiment import run_neural_experiment
from ..training.metrics import ForecastMetrics
from ..training.trainer import TrainerConfig

__all__ = ["SweepPoint", "SweepResult", "sensitivity_sweep", "PAPER_SWEEPS"]

#: The hyperparameter grids studied in Fig. 5 of the paper.
PAPER_SWEEPS: Dict[str, Sequence] = {
    "mhce_layers": (1, 2, 3, 4),
    "num_hyperedges": (8, 16, 32, 64),
    "hidden_dim": (16, 32, 64, 128),
}


@dataclass(frozen=True)
class SweepPoint:
    """Result of training one configuration in a sweep."""

    parameter: str
    value: float
    metrics: ForecastMetrics
    num_parameters: int

    def row(self) -> Dict[str, float]:
        """Flatten into a printable dictionary."""
        return {
            "parameter": self.parameter,
            "value": self.value,
            "MAE": round(self.metrics.mae, 2),
            "RMSE": round(self.metrics.rmse, 2),
            "MAPE": round(self.metrics.mape, 2),
            "parameters": self.num_parameters,
        }


@dataclass
class SweepResult:
    """All points of one hyperparameter sweep."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def best(self) -> SweepPoint:
        """Point with the lowest MAE."""
        if not self.points:
            raise ValueError("sweep contains no points")
        return min(self.points, key=lambda point: point.metrics.mae)

    def spread(self) -> float:
        """Max minus min MAE across the sweep (the paper argues this is small)."""
        if not self.points:
            return 0.0
        maes = [point.metrics.mae for point in self.points]
        return max(maes) - min(maes)


def sensitivity_sweep(
    parameter: str,
    values: Iterable,
    data: ForecastingData,
    base_config: DyHSLConfig,
    trainer_config: Optional[TrainerConfig] = None,
) -> SweepResult:
    """Train DyHSL once per value of ``parameter`` and collect test metrics.

    Parameters
    ----------
    parameter:
        Name of a :class:`DyHSLConfig` field (e.g. ``"num_hyperedges"``).
    values:
        Values to sweep over.
    data:
        Preprocessed forecasting data.
    base_config:
        Configuration providing every other hyperparameter.
    trainer_config:
        Optimisation settings shared across the sweep.
    """
    if not hasattr(base_config, parameter):
        raise AttributeError(f"DyHSLConfig has no field named {parameter!r}")
    result = SweepResult(parameter=parameter)
    for value in values:
        config = base_config.replace(**{parameter: value})
        model = DyHSL(config, data.adjacency)
        experiment = run_neural_experiment(f"DyHSL[{parameter}={value}]", model, data, trainer_config)
        result.points.append(
            SweepPoint(
                parameter=parameter,
                value=float(value),
                metrics=experiment.metrics,
                num_parameters=experiment.num_parameters,
            )
        )
    return result
