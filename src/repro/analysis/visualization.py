"""Prediction case-study extraction and text-based visualisation (Fig. 6).

Fig. 6 of the paper plots predicted versus ground-truth flow for four PEMS08
sensors over several days, illustrating four behaviours: regular daily
patterns, adaptation to a weekend pattern change, robustness to noise and an
anomalous sensor.  Without a plotting backend in this environment, this
module extracts the same per-sensor prediction/truth traces as arrays and
renders compact ASCII sparkline plots so the case study can still be
inspected from a terminal or a text report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..training.metrics import ForecastMetrics, evaluate_forecast

__all__ = ["SensorTrace", "extract_sensor_traces", "ascii_sparkline", "render_case_study"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass
class SensorTrace:
    """Prediction-versus-truth trace of a single sensor."""

    sensor: int
    truth: np.ndarray
    prediction: np.ndarray
    metrics: ForecastMetrics

    @property
    def length(self) -> int:
        """Number of time steps in the trace."""
        return int(self.truth.shape[0])


def extract_sensor_traces(
    predictions: np.ndarray,
    targets: np.ndarray,
    sensors: Sequence[int],
    horizon_step: int = 0,
) -> List[SensorTrace]:
    """Build continuous traces from windowed predictions.

    Consecutive test windows advance one step at a time, so taking a fixed
    ``horizon_step`` from every window yields a continuous trace aligned
    with the ground truth — the same construction behind the paper's Fig. 6.

    Parameters
    ----------
    predictions / targets:
        Arrays of shape ``(samples, horizon, N)`` on the original scale.
    sensors:
        Sensor indices to extract.
    horizon_step:
        Which forecast step of each window to plot (0 = 5 minutes ahead).
    """
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape or predictions.ndim != 3:
        raise ValueError("predictions and targets must both have shape (samples, horizon, N)")
    if not 0 <= horizon_step < predictions.shape[1]:
        raise IndexError("horizon_step out of range")
    traces = []
    for sensor in sensors:
        if not 0 <= sensor < predictions.shape[2]:
            raise IndexError(f"sensor {sensor} out of range")
        truth = targets[:, horizon_step, sensor]
        prediction = predictions[:, horizon_step, sensor]
        traces.append(
            SensorTrace(
                sensor=int(sensor),
                truth=truth,
                prediction=prediction,
                metrics=evaluate_forecast(prediction, truth),
            )
        )
    return traces


def ascii_sparkline(values: np.ndarray, width: int = 72) -> str:
    """Render a series as a single-line unicode sparkline."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if values.size > width:
        # Average-pool down to the requested width.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([values[edges[i]:edges[i + 1]].mean() for i in range(width)])
    low, high = float(values.min()), float(values.max())
    span = max(high - low, 1e-9)
    indices = ((values - low) / span * (len(_SPARK_LEVELS) - 1)).round().astype(int)
    return "".join(_SPARK_LEVELS[i] for i in indices)


def render_case_study(traces: Sequence[SensorTrace], width: int = 72) -> str:
    """Render the Fig. 6 style case study as a text report."""
    lines: List[str] = []
    for trace in traces:
        lines.append(f"Sensor {trace.sensor}  ({trace.metrics})")
        lines.append(f"  truth      {ascii_sparkline(trace.truth, width)}")
        lines.append(f"  prediction {ascii_sparkline(trace.prediction, width)}")
        lines.append("")
    return "\n".join(lines).rstrip()
