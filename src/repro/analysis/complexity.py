"""Model complexity and runtime accounting (paper Table IV).

Table IV compares the number of parameters and the per-epoch training /
test wall-clock time of DyHSL against two representative baselines.  This
module measures the same three quantities for any model built on the
library's substrate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..data.loaders import ForecastingData
from ..nn import Module
from ..tensor import Tensor, no_grad
from ..training.trainer import Trainer, TrainerConfig

__all__ = ["ComplexityReport", "count_parameters", "measure_complexity", "parameter_breakdown"]


@dataclass(frozen=True)
class ComplexityReport:
    """One row of the scalability table.

    Attributes
    ----------
    name:
        Model name.
    num_parameters:
        Learnable parameter count.
    train_seconds_per_epoch:
        Wall-clock seconds of one training epoch.
    test_seconds:
        Wall-clock seconds of one full test-set prediction pass.
    """

    name: str
    num_parameters: int
    train_seconds_per_epoch: float
    test_seconds: float

    def row(self) -> Dict[str, float]:
        """Flatten into a printable dictionary."""
        return {
            "model": self.name,
            "parameters": self.num_parameters,
            "train_s_per_epoch": round(self.train_seconds_per_epoch, 2),
            "test_s": round(self.test_seconds, 2),
        }


def count_parameters(model: Module) -> int:
    """Number of learnable scalar parameters of a model."""
    return model.num_parameters()


def parameter_breakdown(model: Module) -> Dict[str, int]:
    """Parameter count per top-level child module (useful for reports)."""
    breakdown: Dict[str, int] = {}
    for name, parameter in model.named_parameters():
        top_level = name.split(".")[0]
        breakdown[top_level] = breakdown.get(top_level, 0) + parameter.size
    return breakdown


def measure_complexity(
    name: str,
    model: Module,
    data: ForecastingData,
    trainer_config: Optional[TrainerConfig] = None,
) -> ComplexityReport:
    """Measure parameters plus one-epoch training and test-pass times.

    The model is trained for exactly one epoch (regardless of the supplied
    configuration) because Table IV reports *per-epoch* cost, not converged
    accuracy.
    """
    config = trainer_config or TrainerConfig()
    config = TrainerConfig(
        learning_rate=config.learning_rate,
        weight_decay=config.weight_decay,
        batch_size=config.batch_size,
        max_epochs=1,
        gradient_clip=config.gradient_clip,
        patience=1,
        null_value=config.null_value,
        shuffle=config.shuffle,
        verbose=False,
    )
    trainer = Trainer(model, data, config)

    started = time.perf_counter()
    trainer._train_epoch(data.train.loader(batch_size=config.batch_size, shuffle=False))
    train_seconds = time.perf_counter() - started

    started = time.perf_counter()
    model.eval()
    with no_grad():
        for start in range(0, data.test.inputs.shape[0], config.batch_size):
            model(Tensor(data.test.inputs[start:start + config.batch_size]))
    test_seconds = time.perf_counter() - started

    return ComplexityReport(
        name=name,
        num_parameters=count_parameters(model),
        train_seconds_per_epoch=train_seconds,
        test_seconds=test_seconds,
    )
