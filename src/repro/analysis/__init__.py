"""Analysis utilities backing the paper's scalability, sensitivity and case-study sections."""

from .complexity import ComplexityReport, count_parameters, measure_complexity, parameter_breakdown
from .incidence import IncidenceAnalysis, IncidenceSnapshot, analyze_incidence, render_incidence_matrix
from .sensitivity import PAPER_SWEEPS, SweepPoint, SweepResult, sensitivity_sweep
from .visualization import SensorTrace, ascii_sparkline, extract_sensor_traces, render_case_study

__all__ = [
    "ComplexityReport",
    "count_parameters",
    "parameter_breakdown",
    "measure_complexity",
    "SweepPoint",
    "SweepResult",
    "sensitivity_sweep",
    "PAPER_SWEEPS",
    "SensorTrace",
    "extract_sensor_traces",
    "ascii_sparkline",
    "render_case_study",
    "IncidenceAnalysis",
    "IncidenceSnapshot",
    "analyze_incidence",
    "render_incidence_matrix",
]
