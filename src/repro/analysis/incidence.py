"""Analysis of the learned hypergraph incidence matrix (paper Fig. 7).

Fig. 7 visualises sub-matrices of the learned incidence matrix ``Λ`` at
three time steps of a PEMS08 window and discusses two observations:

* different nodes attach to different hyperedges (the structure is not
  degenerate), and
* a node's closest hyperedge *changes over time*, i.e. the learned
  structure is genuinely dynamic.

This module extracts the same sub-matrices from a trained DyHSL model and
computes quantitative summaries of both observations so they can be checked
without a plotting backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import DyHSL
from ..tensor import Tensor

__all__ = ["IncidenceSnapshot", "IncidenceAnalysis", "analyze_incidence", "render_incidence_matrix"]


@dataclass
class IncidenceSnapshot:
    """Incidence sub-matrix of one time step."""

    time_step: int
    matrix: np.ndarray  # (num_nodes_shown, num_hyperedges)

    def closest_hyperedges(self) -> np.ndarray:
        """Index of the hyperedge each node is most strongly attached to."""
        return np.argmax(self.matrix, axis=1)


@dataclass
class IncidenceAnalysis:
    """Quantitative summary of the learned hypergraph structure."""

    snapshots: List[IncidenceSnapshot]
    node_hyperedge_entropy: float
    temporal_shift_fraction: float
    hyperedge_usage: np.ndarray

    def summary(self) -> Dict[str, float]:
        """Headline numbers of the Fig. 7 discussion."""
        return {
            "node_hyperedge_entropy": round(self.node_hyperedge_entropy, 4),
            "temporal_shift_fraction": round(self.temporal_shift_fraction, 4),
            "active_hyperedges": int((self.hyperedge_usage > 1e-6).sum()),
        }


def analyze_incidence(
    model: DyHSL,
    inputs: np.ndarray,
    time_steps: Sequence[int] = (0, 5, 11),
    max_nodes: int = 8,
    window: int = 1,
) -> IncidenceAnalysis:
    """Extract and summarise the learned incidence matrices of one window.

    Parameters
    ----------
    model:
        A (trained) DyHSL model with the hypergraph branch enabled.
    inputs:
        A single normalised input window of shape ``(1, T, N, F)`` or a
        batch whose first sample is analysed.
    time_steps:
        Time steps whose sub-matrices to extract (the paper shows 1, 6, 12,
        i.e. indices 0, 5, 11).
    max_nodes:
        Number of nodes shown per snapshot (the paper shows a sub-matrix).
    window:
        Pooling scale whose hypergraph to inspect (1 keeps per-step
        resolution).
    """
    inputs = np.asarray(inputs, dtype=float)
    if inputs.ndim != 4:
        raise ValueError("inputs must have shape (batch, T, N, F)")
    incidence = model.incidence_matrices(Tensor(inputs[:1]), window=window)  # (1, T/w, N, I)
    incidence = incidence[0]
    pooled_steps, num_nodes, num_hyperedges = incidence.shape
    shown_nodes = min(max_nodes, num_nodes)

    snapshots = []
    for step in time_steps:
        pooled_index = min(step // window, pooled_steps - 1)
        snapshots.append(
            IncidenceSnapshot(time_step=int(step), matrix=incidence[pooled_index, :shown_nodes].copy())
        )

    # Diversity of attachments: entropy of the distribution of "closest
    # hyperedge" assignments over all observations.
    flattened = incidence.reshape(-1, num_hyperedges)
    closest = np.argmax(flattened, axis=1)
    counts = np.bincount(closest, minlength=num_hyperedges).astype(float)
    probabilities = counts / counts.sum()
    nonzero = probabilities[probabilities > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())

    # Dynamics: fraction of nodes whose closest hyperedge changes between the
    # first and last pooled time step.
    first_assignment = np.argmax(incidence[0], axis=1)
    last_assignment = np.argmax(incidence[-1], axis=1)
    shift_fraction = float((first_assignment != last_assignment).mean())

    usage = np.abs(flattened).mean(axis=0)
    return IncidenceAnalysis(
        snapshots=snapshots,
        node_hyperedge_entropy=entropy,
        temporal_shift_fraction=shift_fraction,
        hyperedge_usage=usage,
    )


def render_incidence_matrix(snapshot: IncidenceSnapshot, precision: int = 2) -> str:
    """Render one incidence sub-matrix as an aligned text table."""
    matrix = snapshot.matrix
    header = "node \\ edge " + " ".join(f"{edge:>7d}" for edge in range(matrix.shape[1]))
    lines = [f"time step {snapshot.time_step}", header]
    for node in range(matrix.shape[0]):
        row = " ".join(f"{value:7.{precision}f}" for value in matrix[node])
        lines.append(f"{node:>11d} {row}")
    return "\n".join(lines)
