"""Module compiler: trace a forward pass, emit a flat kernel plan.

Compilation runs the module's forward once on an example input with a trace
hook installed in the autograd layer.  Every primitive op reports
``(kernel name, constant kwargs, parent tensors, output tensor)`` through
``Tensor._make``; because hooks fire in execution order, the recorded list
is already a topological order of the dataflow and can be replayed linearly.

Three passes turn the raw trace into a :class:`~repro.runtime.engine.Plan`:

1. **slot assignment** — every tensor becomes a slot: the input placeholder,
   a captured constant (parameters, buffers, literals created inside
   ``forward``) or a step output;
2. **constant folding** — steps whose inputs are all constants (embedding
   lookups of fixed indices, learned adjacencies like
   ``softmax(relu(E Eᵀ))``, scale-fusion weights) already computed their
   value during tracing; the value is promoted to a constant and the step
   dropped;
3. **dead-step pruning + workspace allocation** — steps that do not reach
   the output are removed, and every surviving non-view step gets a
   preallocated output buffer reused across calls.

Tracing requirements (all satisfied by the models in this library):

* the module must be in **evaluation mode** — training-time behaviour
  (dropout masks, batch-norm statistics updates) would bake per-trace
  randomness into the plan;
* the forward must be a fixed dataflow for a fixed input *shape* — Python
  loops over time steps are fine (they unroll), but branching on input
  *values* would freeze the traced branch;
* every op must go through the kernel layer (``Tensor._make`` with an op
  spec) — raw ``numpy`` detours on ``.data`` would bake input-dependent
  constants, and the tracer rejects spec-less ops loudly.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, no_grad
from ..tensor import kernels as K
from ..tensor.tensor import _set_trace_hook

from .engine import Plan, PlanStats

__all__ = ["CompileError", "compile_plan", "trace_module"]

#: Serialises compilations.  Trace hooks are keyed by thread, so tensor ops
#: on other threads can never leak into a plan; the lock additionally keeps
#: concurrent compilations from interleaving their (GIL-shared) module
#: state, e.g. running the same module's forward twice at once.
_COMPILE_LOCK = threading.Lock()


class CompileError(RuntimeError):
    """The module's forward pass cannot be captured as a kernel plan."""


class _Tracer:
    """Records every primitive op executed while installed as trace hook."""

    def __init__(self) -> None:
        # (name, kwargs, parents, out); holding the tensors also pins their
        # ids so slot assignment by id() cannot collide after a GC cycle.
        self.records: List[Tuple[str, Dict[str, Any], Tuple[Tensor, ...], Tensor]] = []

    def __call__(self, op, parents: Tuple[Tensor, ...], out: Tensor) -> None:
        if op is None:
            raise CompileError(
                "encountered an autograd op without a kernel spec; every "
                "primitive consumed by the runtime must pass op=(name, kwargs) "
                "to Tensor._make"
            )
        name, kwargs = op
        if name not in K.KERNELS:
            raise CompileError(f"op {name!r} has no kernel in repro.tensor.kernels.KERNELS")
        self.records.append((name, kwargs, parents, out))


def trace_module(module, example: np.ndarray):
    """Run ``module`` once on ``example`` and capture its op trace.

    Returns ``(records, placeholder, output)`` where ``placeholder`` is the
    input leaf tensor and ``output`` the traced forward result.
    """
    if getattr(module, "training", False):
        raise CompileError(
            "cannot compile a module in training mode; call module.eval() first"
        )
    placeholder = Tensor(np.asarray(example, dtype=np.float64))
    tracer = _Tracer()
    with _COMPILE_LOCK:
        previous = _set_trace_hook(tracer)
        try:
            with no_grad():
                output = module(placeholder)
        finally:
            _set_trace_hook(previous)
    if not isinstance(output, Tensor):
        raise CompileError(
            f"module forward returned {type(output).__name__}; a single Tensor is required"
        )
    return tracer.records, placeholder, output


def compile_plan(module, example: np.ndarray, fold_constants: bool = True) -> Plan:
    """Compile ``module``'s forward into a :class:`Plan` for one input shape."""
    records, placeholder, output = trace_module(module, example)

    # ------------------------------------------------------------------
    # Pass 1: slot assignment (+ inline constant folding).
    # ------------------------------------------------------------------
    slot_of: Dict[int, int] = {id(placeholder): 0}
    values: List[Optional[np.ndarray]] = [None]  # slot 0 is the input
    is_const: List[bool] = [False]
    raw_steps: List[Tuple[str, Dict[str, Any], Tuple[int, ...], int, Tensor]] = []
    folded = 0

    def const_slot(array: np.ndarray) -> int:
        values.append(array)
        is_const.append(True)
        return len(values) - 1

    for name, kwargs, parents, out in records:
        in_slots = []
        for parent in parents:
            slot = slot_of.get(id(parent))
            if slot is None:
                slot = const_slot(parent.data)
                slot_of[id(parent)] = slot
            in_slots.append(slot)
        if fold_constants and all(is_const[slot] for slot in in_slots):
            # The traced output already holds the folded value.
            slot_of[id(out)] = const_slot(out.data)
            folded += 1
            continue
        values.append(None)
        is_const.append(False)
        out_slot = len(values) - 1
        slot_of[id(out)] = out_slot
        raw_steps.append((name, kwargs, tuple(in_slots), out_slot, out))

    output_slot = slot_of.get(id(output))
    if output_slot is None:
        # The forward returned a tensor that never went through the kernel
        # layer (a constant built inside forward); capture it directly.
        output_slot = const_slot(output.data)

    # ------------------------------------------------------------------
    # Pass 2: dead-step pruning (backward reachability from the output).
    # ------------------------------------------------------------------
    needed = {output_slot}
    kept_flags = [False] * len(raw_steps)
    for index in range(len(raw_steps) - 1, -1, -1):
        name, kwargs, in_slots, out_slot, out = raw_steps[index]
        if out_slot in needed:
            kept_flags[index] = True
            needed.update(in_slots)
    pruned = len(raw_steps) - sum(kept_flags)
    kept = [step for keep, step in zip(kept_flags, raw_steps) if keep]

    # ------------------------------------------------------------------
    # Pass 3: step classification.
    #
    # * "view"     — the kernel returns a view of its input; no buffer, and
    #   for liveness the output aliases the input's underlying storage;
    # * "buffered" — the kernel writes into a preallocated workspace buffer;
    # * "alloc"    — the kernel allocates its result per call (advanced
    #   indexing); rare, and usually constant-folded away.
    #
    # Reshapes that had to copy during tracing (non-contiguous source, a
    # fixed property of the plan's dataflow) are rewritten to the
    # buffer-friendly ``reshape_copy`` kernel.
    # ------------------------------------------------------------------
    classified: List[Tuple[str, str, Dict[str, Any], Tuple[int, ...], int, Tensor]] = []
    for name, kwargs, in_slots, out_slot, out in kept:
        if name in K.VIEW_OPS:
            if out.data.base is not None:
                kind = "view"
            elif name == "reshape":
                kind, name = "buffered", "reshape_copy"
            else:
                kind = "alloc"
        else:
            kind = "buffered"
        classified.append((kind, name, kwargs, in_slots, out_slot, out))

    # ------------------------------------------------------------------
    # Pass 4: liveness analysis over underlying buffers.
    #
    # Each buffered step's output gets a storage token; view steps propagate
    # their input's token (a view must pin the storage it aliases).  A token
    # is dead after the last step that reads any slot carrying it, at which
    # point its buffer returns to the pool for a later step — this keeps the
    # working set at the peak *live* size (cache-warm), not the sum of all
    # intermediates.
    # ------------------------------------------------------------------
    token_of_slot: Dict[int, Optional[int]] = {}
    last_use: Dict[int, int] = {}
    next_token = 0
    for index, (kind, name, kwargs, in_slots, out_slot, out) in enumerate(classified):
        for slot in in_slots:
            token = token_of_slot.get(slot)
            if token is not None:
                last_use[token] = index
        if kind == "view":
            token_of_slot[out_slot] = token_of_slot.get(in_slots[0])
        elif kind == "buffered":
            token_of_slot[out_slot] = next_token
            next_token += 1
        else:  # alloc: fresh array per call, nothing to pool or pin
            token_of_slot[out_slot] = None
    output_token = token_of_slot.get(output_slot)
    if output_token is not None:
        last_use[output_token] = len(classified)  # never recycled

    # ------------------------------------------------------------------
    # Pass 5: workspace allocation (pooled by byte size) + kernel binding.
    # ------------------------------------------------------------------
    steps: List[Tuple] = []
    pool: Dict[int, List[np.ndarray]] = {}
    storage_of_token: Dict[int, np.ndarray] = {}
    workspace_bytes = 0
    for index, (kind, name, kwargs, in_slots, out_slot, out) in enumerate(classified):
        buffer = None
        if kind == "buffered":
            nbytes = out.data.nbytes
            bucket = pool.get(nbytes)
            if bucket:
                storage = bucket.pop()
            else:
                storage = np.empty(nbytes, dtype=np.uint8)
                workspace_bytes += nbytes
            token = token_of_slot[out_slot]
            storage_of_token[token] = storage
            buffer = storage.view(out.data.dtype).reshape(out.data.shape)
        steps.append((K.KERNELS[name], in_slots, kwargs, out_slot, buffer))
        # Recycle storages whose last reader was this step.  (Allocation
        # happens first, so a step's output never aliases its inputs.)
        for slot in set(in_slots):
            token = token_of_slot.get(slot)
            if token is not None and last_use.get(token) == index:
                storage = storage_of_token.pop(token, None)
                if storage is not None:
                    pool.setdefault(storage.nbytes, []).append(storage)

    stats = PlanStats(
        input_shape=tuple(np.asarray(example).shape),
        traced_ops=len(records),
        steps=len(steps),
        folded=folded,
        pruned=pruned,
        workspace_bytes=workspace_bytes,
    )
    return Plan(steps, values, 0, output_slot, stats)
