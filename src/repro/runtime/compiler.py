"""Module compiler: trace a forward pass, emit a flat kernel plan.

Compilation runs the module's forward once on an example input with a trace
hook installed in the autograd layer.  Every primitive op reports
``(kernel name, constant kwargs, parent tensors, output tensor)`` through
``Tensor._make``; because hooks fire in execution order, the recorded list
is already a topological order of the dataflow and can be replayed linearly.

The passes that turn the raw trace into a :class:`~repro.runtime.engine.Plan`:

1. **slot assignment** — every tensor becomes a slot: the input placeholder,
   a captured constant (parameters, buffers, literals created inside
   ``forward``) or a step output;
2. **constant folding** — steps whose inputs are all constants (embedding
   lookups of fixed indices, learned adjacencies like
   ``softmax(relu(E Eᵀ))``, scale-fusion weights) already computed their
   value during tracing; the value is promoted to a constant and the step
   dropped;
3. **dead-step pruning** — steps that do not reach the output are removed;
4. **elementwise-chain fusion** — single-consumer runs of shape-preserving
   elementwise steps (add/mul/tanh/relu/… — see
   :data:`repro.tensor.kernels.FUSABLE_ELEMENTWISE`) collapse into one
   ``fused_elementwise`` step executed as a blocked chain in a single
   buffer, turning N memory passes over large intermediates into one
   cache-resident sweep;
5. **island scheduling** — the step list is partitioned into *islands*
   (maximal serial chains of the dataflow) and islands into *waves* by
   longest-path level: islands in the same wave are provably independent,
   which is what lets the engine replay them concurrently on a thread pool
   (``REPRO_RUNTIME_THREADS``) while one thread replays the exact serial
   order;
6. **workspace allocation** — every surviving non-view step gets a
   preallocated output buffer, pooled by liveness so the working set stays
   at the peak live size; pooling is wave-aware, so a buffer is never
   handed to a step that could run concurrently with the buffer's previous
   owner.

Plans also carry an execution **precision policy** (``dtype``): tracing
always runs the float64 autograd engine, but the emitted plan may bind its
constants and workspace buffers at float32, halving the memory traffic the
fused kernels are bound by (see :func:`repro.runtime.engine.resolve_precision`).

Tracing requirements (all satisfied by the models in this library):

* the module must be in **evaluation mode** — training-time behaviour
  (dropout masks, batch-norm statistics updates) would bake per-trace
  randomness into the plan;
* the forward must be a fixed dataflow for a fixed input *shape* — Python
  loops over time steps are fine (they unroll), but branching on input
  *values* would freeze the traced branch;
* every op must go through the kernel layer (``Tensor._make`` with an op
  spec) — raw ``numpy`` detours on ``.data`` would bake input-dependent
  constants, and the tracer rejects spec-less ops loudly.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, no_grad
from ..tensor import kernels as K
from ..tensor.tensor import _set_trace_hook

from .engine import Plan, PlanSpec, PlanStats, StepSpec, bind_plan

__all__ = ["CompileError", "build_plan_spec", "compile_plan", "trace_module"]

#: Serialises compilations.  Trace hooks are keyed by thread, so tensor ops
#: on other threads can never leak into a plan; the lock additionally keeps
#: concurrent compilations from interleaving their (GIL-shared) module
#: state, e.g. running the same module's forward twice at once.
_COMPILE_LOCK = threading.Lock()


class CompileError(RuntimeError):
    """The module's forward pass cannot be captured as a kernel plan."""


class _Tracer:
    """Records every primitive op executed while installed as trace hook."""

    def __init__(self) -> None:
        # (name, kwargs, parents, out); holding the tensors also pins their
        # ids so slot assignment by id() cannot collide after a GC cycle.
        self.records: List[Tuple[str, Dict[str, Any], Tuple[Tensor, ...], Tensor]] = []

    def __call__(self, op, parents: Tuple[Tensor, ...], out: Tensor) -> None:
        if op is None:
            raise CompileError(
                "encountered an autograd op without a kernel spec; every "
                "primitive consumed by the runtime must pass op=(name, kwargs) "
                "to Tensor._make"
            )
        name, kwargs = op
        if name not in K.KERNELS:
            raise CompileError(f"op {name!r} has no kernel in repro.tensor.kernels.KERNELS")
        self.records.append((name, kwargs, parents, out))


def trace_module(module, example: np.ndarray):
    """Run ``module`` once on ``example`` and capture its op trace.

    Returns ``(records, placeholder, output)`` where ``placeholder`` is the
    input leaf tensor and ``output`` the traced forward result.
    """
    if getattr(module, "training", False):
        raise CompileError(
            "cannot compile a module in training mode; call module.eval() first"
        )
    placeholder = Tensor(np.asarray(example, dtype=np.float64))
    tracer = _Tracer()
    with _COMPILE_LOCK:
        previous = _set_trace_hook(tracer)
        try:
            with no_grad():
                output = module(placeholder)
        finally:
            _set_trace_hook(previous)
    if not isinstance(output, Tensor):
        raise CompileError(
            f"module forward returned {type(output).__name__}; a single Tensor is required"
        )
    return tracer.records, placeholder, output


class _Step:
    """One lowered plan step before kernel binding."""

    __slots__ = ("name", "kwargs", "in_slots", "out_slot", "out")

    def __init__(self, name, kwargs, in_slots, out_slot, out) -> None:
        self.name = name
        self.kwargs = kwargs
        self.in_slots = in_slots
        self.out_slot = out_slot
        self.out = out  # the traced output Tensor (shape/dtype/base oracle)


class _Lowered:
    """Trace lowered to slots and steps, shared by the inference and
    training compilers."""

    __slots__ = (
        "steps", "values", "is_const", "output_slot", "input_value", "param_slots",
        "traced_ops", "folded", "pruned", "steps_unfused", "chain_lengths",
    )

    def __init__(self) -> None:
        self.steps: List[_Step] = []
        self.values: List[Optional[np.ndarray]] = []
        self.is_const: List[bool] = []
        self.output_slot = 0
        #: The traced placeholder's array; view classification needs it to
        #: probe whether step outputs alias the input.
        self.input_value: Optional[np.ndarray] = None
        #: slot -> leaf Tensor for constants that are learnable parameters
        #: (consumed by the training compiler to route gradients).
        self.param_slots: Dict[int, Tensor] = {}
        self.traced_ops = 0
        self.folded = 0
        self.pruned = 0
        self.steps_unfused = 0
        self.chain_lengths: Tuple[int, ...] = ()


def lower_module(module, example: np.ndarray, fold_constants: bool = True,
                 fuse: bool = True) -> _Lowered:
    """Trace ``module`` and run the graph passes (fold, prune, fuse).

    The result is backend-neutral: :func:`compile_plan` binds it to pooled
    workspace buffers for inference, the training compiler
    (:mod:`repro.runtime.training`) to dedicated live buffers plus a
    gradient tape.
    """
    records, placeholder, output = trace_module(module, example)
    lowered = _Lowered()
    lowered.traced_ops = len(records)
    lowered.input_value = placeholder.data

    # ------------------------------------------------------------------
    # Pass 1: slot assignment (+ inline constant folding).
    # ------------------------------------------------------------------
    slot_of: Dict[int, int] = {id(placeholder): 0}
    values: List[Optional[np.ndarray]] = [None]  # slot 0 is the input
    is_const: List[bool] = [False]
    raw_steps: List[_Step] = []

    def const_slot(parent: Optional[Tensor], array: np.ndarray) -> int:
        values.append(array)
        is_const.append(True)
        slot = len(values) - 1
        if parent is not None and getattr(parent, "requires_grad", False):
            lowered.param_slots[slot] = parent
        return slot

    for name, kwargs, parents, out in records:
        in_slots = []
        for parent in parents:
            slot = slot_of.get(id(parent))
            if slot is None:
                slot = const_slot(parent, parent.data)
                slot_of[id(parent)] = slot
            in_slots.append(slot)
        if fold_constants and all(is_const[slot] for slot in in_slots):
            # The traced output already holds the folded value.
            slot_of[id(out)] = const_slot(None, out.data)
            lowered.folded += 1
            continue
        values.append(None)
        is_const.append(False)
        out_slot = len(values) - 1
        slot_of[id(out)] = out_slot
        raw_steps.append(_Step(name, kwargs, tuple(in_slots), out_slot, out))

    output_slot = slot_of.get(id(output))
    if output_slot is None:
        # The forward returned a tensor that never went through the kernel
        # layer (a constant built inside forward); capture it directly.
        output_slot = const_slot(None, output.data)

    # ------------------------------------------------------------------
    # Pass 2: dead-step pruning (backward reachability from the output).
    # ------------------------------------------------------------------
    needed = {output_slot}
    kept_flags = [False] * len(raw_steps)
    for index in range(len(raw_steps) - 1, -1, -1):
        step = raw_steps[index]
        if step.out_slot in needed:
            kept_flags[index] = True
            needed.update(step.in_slots)
    lowered.pruned = len(raw_steps) - sum(kept_flags)
    kept = [step for keep, step in zip(kept_flags, raw_steps) if keep]
    lowered.steps_unfused = len(kept)

    # ------------------------------------------------------------------
    # Pass 3: elementwise-chain fusion.
    # ------------------------------------------------------------------
    if fuse:
        kept, lowered.chain_lengths = _fuse_elementwise(kept, output_slot)

    lowered.steps = kept
    lowered.values = values
    lowered.is_const = is_const
    lowered.output_slot = output_slot
    return lowered


def _fuse_elementwise(steps: List[_Step], output_slot: int) -> Tuple[List[_Step], Tuple[int, ...]]:
    """Collapse single-consumer runs of elementwise steps into fused steps.

    A step joins the chain of its predecessor when it is elementwise
    (:data:`~repro.tensor.kernels.FUSABLE_ELEMENTWISE`), directly follows it
    in plan order, is the predecessor's *only* consumer, and produces the
    same output shape — the invariants that let the whole chain run
    in-place in one buffer.  Interior slots disappear from the plan; the
    fused step reads the union of the chain's external inputs and writes
    the tail's slot.
    """
    consumer_count: Dict[int, int] = {}
    for step in steps:
        for slot in set(step.in_slots):
            consumer_count[slot] = consumer_count.get(slot, 0) + 1

    fused: List[_Step] = []
    chain_lengths: List[int] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        if step.name not in K.FUSABLE_ELEMENTWISE:
            fused.append(step)
            index += 1
            continue
        chain = [step]
        cursor = index
        while cursor + 1 < len(steps):
            tail, candidate = steps[cursor], steps[cursor + 1]
            if (
                candidate.name in K.FUSABLE_ELEMENTWISE
                and tail.out_slot in candidate.in_slots
                and consumer_count.get(tail.out_slot) == 1
                and tail.out_slot != output_slot
                and candidate.out.data.shape == tail.out.data.shape
            ):
                chain.append(candidate)
                cursor += 1
            else:
                break
        if len(chain) == 1:
            fused.append(step)
            index += 1
            continue
        # Build the instruction list: operand references are indices into
        # the fused step's external input tuple, or -1 for the running
        # value (the previous instruction's output).
        external: List[int] = []
        position: Dict[int, int] = {}
        instructions = []
        previous_slot: Optional[int] = None
        for link in chain:
            refs = []
            for slot in link.in_slots:
                if slot == previous_slot:
                    refs.append(-1)
                    continue
                if slot not in position:
                    position[slot] = len(external)
                    external.append(slot)
                refs.append(position[slot])
            instructions.append((link.name, K.KERNELS[link.name], tuple(refs), link.kwargs))
            previous_slot = link.out_slot
        tail = chain[-1]
        fused.append(
            _Step(
                "fused_elementwise",
                {"chain": tuple(instructions)},
                tuple(external),
                tail.out_slot,
                tail.out,
            )
        )
        chain_lengths.append(len(chain))
        index = cursor + 1
    return fused, tuple(sorted(chain_lengths))


def classify_steps(
    steps: List[_Step],
    values: List[Optional[np.ndarray]],
    input_value: Optional[np.ndarray] = None,
    input_slot: int = 0,
):
    """Label every step ``view`` / ``buffered`` / ``alloc``.

    * ``view`` — the kernel returned a true view of its input during
      tracing (it shares memory with the parent); no buffer needed, and for
      liveness the output aliases the input's storage;
    * ``buffered`` — the kernel writes into a preallocated output buffer;
    * ``alloc`` — the kernel allocates its result per call (advanced
      indexing); rare, and usually constant-folded away.

    Reshapes that had to copy during tracing are rewritten to the
    buffer-friendly ``reshape_copy`` kernel.  Sharing is probed with
    ``np.may_share_memory`` against the traced parent — checking ``.base``
    alone misclassifies a copying reshape, whose result is a *view of a
    fresh copy* (``base`` set, but no memory shared with the parent), and
    would silently allocate that copy again on every call.
    """
    slot_value: Dict[int, np.ndarray] = {
        slot: value for slot, value in enumerate(values) if value is not None
    }
    if input_value is not None:
        slot_value[input_slot] = input_value
    classified: List[Tuple[str, _Step]] = []
    for step in steps:
        if step.name in K.VIEW_OPS:
            parent = slot_value.get(step.in_slots[0])
            shares = parent is not None and np.may_share_memory(step.out.data, parent)
            if shares:
                kind = "view"
            elif step.name == "reshape":
                kind, step.name = "buffered", "reshape_copy"
            else:
                kind = "alloc"
        else:
            kind = "buffered"
        classified.append((kind, step))
        slot_value[step.out_slot] = step.out.data
    return classified


def _schedule_islands(classified) -> Tuple[List[int], List[int], List[List[int]]]:
    """Partition the classified steps into islands and waves.

    An *island* is a maximal serial chain: a step joins the island of its
    dependencies when every dependency lives in that one island and the
    island's current tail is among them (the step extends the chain).  Any
    other step — no dependencies, a join of several islands, or a fork off
    a chain's interior — heads a new island.  By construction every edge
    between islands originates at an island head, and an island's external
    dependencies all have smaller ids, so the island graph is acyclic.

    Islands are then levelled by longest path (*waves*): two islands in the
    same wave can have no dependency path between them in either direction
    (a path strictly increases the level), which is the invariant that lets
    the engine run same-wave islands concurrently and barrier between
    waves.

    Returns ``(island_of_step, wave_of_island, islands)`` where ``islands``
    maps island id to its member step indices in execution order.
    """
    producer: Dict[int, int] = {}  # slot -> producing step index
    island_of: List[int] = []
    islands: List[List[int]] = []
    island_deps: List[set] = []
    for index, (kind, step) in enumerate(classified):
        deps = {producer[slot] for slot in step.in_slots if slot in producer}
        dep_islands = {island_of[j] for j in deps}
        if len(dep_islands) == 1:
            candidate = next(iter(dep_islands))
            if islands[candidate][-1] in deps:
                islands[candidate].append(index)
                island_of.append(candidate)
                producer[step.out_slot] = index
                continue
        island_of.append(len(islands))
        islands.append([index])
        island_deps.append(dep_islands)
        producer[step.out_slot] = index

    wave_of_island: List[int] = []
    for deps in island_deps:
        wave_of_island.append(1 + max((wave_of_island[d] for d in deps), default=-1))
    return island_of, wave_of_island, islands


def build_plan_spec(
    module,
    example: np.ndarray,
    fold_constants: bool = True,
    fuse: bool = True,
    dtype=np.float64,
    parallel: bool = False,
):
    """Trace and lower ``module`` into a serialisable plan description.

    Returns ``(spec, values)``: a :class:`~repro.runtime.engine.PlanSpec`
    holding the step list (fused chains unbound), the pooled workspace
    layout as storage ids, the island/wave schedule as step indices and
    the plan stats — plus the full slot table with the constants already
    cast to the plan dtype.  :func:`~repro.runtime.engine.bind_plan`
    materialises the pair into an executable :class:`Plan`;
    :mod:`repro.runtime.artifacts` persists it to disk.  Every structural
    decision (folding, pruning, fusion, pooling, scheduling) happens here,
    so a bound artifact replays exactly the plan a fresh compile would
    produce.
    """
    dtype = np.dtype(dtype)
    lowered = lower_module(module, example, fold_constants=fold_constants, fuse=fuse)
    classified = classify_steps(lowered.steps, lowered.values, lowered.input_value)
    output_slot = lowered.output_slot

    values = lowered.values
    if dtype != np.float64:
        # Cast every floating constant (parameters, folded values) to the
        # policy dtype once; the traced arrays keep serving as float64
        # shape oracles.  Non-float constants (none today) pass through.
        values = [
            value.astype(dtype)
            if value is not None and np.issubdtype(value.dtype, np.floating)
            else value
            for value in values
        ]

    # ------------------------------------------------------------------
    # Island/wave schedule (see _schedule_islands).  wave_of_step feeds the
    # race-free buffer pooling below; the per-wave island lists become the
    # engine's parallel schedule.
    # ------------------------------------------------------------------
    island_of, wave_of_island, islands = _schedule_islands(classified)
    wave_of_step = [wave_of_island[island] for island in island_of]
    num_waves = max(wave_of_island) + 1 if wave_of_island else 0
    wave_widths = [0] * num_waves
    for wave in wave_of_island:
        wave_widths[wave] += 1

    # ------------------------------------------------------------------
    # Liveness analysis over underlying buffers.
    #
    # Each buffered step's output gets a storage token; view steps propagate
    # their input's token (a view must pin the storage it aliases).  A token
    # is dead after the last step that reads any slot carrying it, at which
    # point its buffer returns to the pool for a later step — this keeps the
    # working set at the peak *live* size (cache-warm), not the sum of all
    # intermediates.  For the parallel schedule each token additionally
    # records the latest *wave* and the set of islands that touch it.
    # ------------------------------------------------------------------
    token_of_slot: Dict[int, Optional[int]] = {}
    last_use: Dict[int, int] = {}
    token_last_wave: Dict[int, int] = {}
    token_islands: Dict[int, set] = {}
    next_token = 0

    def touch(token: int, index: int) -> None:
        token_last_wave[token] = max(token_last_wave.get(token, -1), wave_of_step[index])
        token_islands.setdefault(token, set()).add(island_of[index])

    for index, (kind, step) in enumerate(classified):
        for slot in step.in_slots:
            token = token_of_slot.get(slot)
            if token is not None:
                last_use[token] = index
                touch(token, index)
        if kind == "view":
            token = token_of_slot.get(step.in_slots[0])
            token_of_slot[step.out_slot] = token
            if token is not None:
                touch(token, index)
        elif kind == "buffered":
            token_of_slot[step.out_slot] = next_token
            touch(next_token, index)
            next_token += 1
        else:  # alloc: fresh array per call, nothing to pool or pin
            token_of_slot[step.out_slot] = None
    output_token = token_of_slot.get(output_slot)
    if output_token is not None:
        last_use[output_token] = len(classified)  # never recycled

    # ------------------------------------------------------------------
    # Workspace layout (pooled by byte size), expressed as storage ids.
    #
    # A recycled storage carries the last wave and island set of the token
    # that released it: a step may reuse it only when it runs in a strictly
    # later wave (the wave barrier orders the accesses) or when the whole
    # previous lifetime lived inside the step's own island (serial there by
    # construction) — otherwise a same-wave island could overwrite memory a
    # concurrent island is still reading.  With one wave per plan (a fully
    # serial dataflow) this degenerates to exactly the old index-ordered
    # pooling.  No memory is allocated here — steps reference storages by
    # id and :func:`bind_plan` materialises them, so the aliasing structure
    # survives serialisation byte for byte.
    # ------------------------------------------------------------------
    step_specs: List[StepSpec] = []
    pool: Dict[int, List[Tuple[int, set, int]]] = {}
    storage_of_token: Dict[int, int] = {}
    storage_sizes: List[int] = []
    for index, (kind, step) in enumerate(classified):
        storage_id: Optional[int] = None
        if kind == "buffered":
            nbytes = int(step.out.data.size * dtype.itemsize)
            bucket = pool.get(nbytes)
            if bucket:
                if parallel:
                    wave, island = wave_of_step[index], island_of[index]
                    for position, (freed_wave, freed_islands, candidate) in enumerate(bucket):
                        if freed_wave < wave or freed_islands == {island}:
                            storage_id = candidate
                            del bucket[position]
                            break
                else:
                    # Serial replay is index-ordered, so any freed storage
                    # is safe — the original (tightest) pooling.
                    storage_id = bucket.pop()[2]
            if storage_id is None:
                storage_id = len(storage_sizes)
                storage_sizes.append(nbytes)
            token = token_of_slot[step.out_slot]
            storage_of_token[token] = storage_id
        kwargs = step.kwargs
        if step.name == "fused_elementwise":
            # Strip the bound kernel functions out of the chain: the spec
            # stores (name, refs, kwargs) and bind_plan re-resolves names.
            kwargs = {
                "chain": tuple(
                    (name, refs, instruction_kwargs)
                    for name, _kernel, refs, instruction_kwargs in step.kwargs["chain"]
                )
            }
        step_specs.append(
            StepSpec(
                name=step.name,
                in_slots=tuple(step.in_slots),
                kwargs=kwargs,
                out_slot=step.out_slot,
                out_shape=tuple(step.out.data.shape),
                storage=storage_id,
            )
        )
        # Recycle storages whose last reader was this step.  (Allocation
        # happens first, so a step's output never aliases its inputs.)
        for slot in set(step.in_slots):
            token = token_of_slot.get(slot)
            if token is not None and last_use.get(token) == index:
                freed = storage_of_token.pop(token, None)
                if freed is not None:
                    pool.setdefault(storage_sizes[freed], []).append(
                        (token_last_wave[token], token_islands[token], freed)
                    )

    # The parallel schedule: per wave, the islands' step indices.  Serial
    # plans carry none — their pooling is not race-free across same-wave
    # islands, so the engine must never replay them concurrently.
    schedule: Optional[List[List[List[int]]]] = None
    if parallel:
        schedule = [[] for _ in range(num_waves)]
        for island_id, members in enumerate(islands):
            schedule[wave_of_island[island_id]].append(list(members))

    stats = PlanStats(
        input_shape=tuple(np.asarray(example).shape),
        traced_ops=lowered.traced_ops,
        steps=len(step_specs),
        folded=lowered.folded,
        pruned=lowered.pruned,
        workspace_bytes=sum(storage_sizes),
        steps_unfused=lowered.steps_unfused,
        fused_chain_lengths=lowered.chain_lengths,
        dtype=str(dtype),
        islands=len(islands),
        waves=num_waves,
        max_wave_width=max(wave_widths, default=0),
    )
    spec = PlanSpec(
        dtype=str(dtype),
        input_slot=0,
        output_slot=output_slot,
        num_slots=len(values),
        const_slots=tuple(
            slot for slot, const in enumerate(lowered.is_const) if const
        ),
        steps=step_specs,
        storage_sizes=storage_sizes,
        schedule=schedule,
        stats=stats,
    )
    return spec, values


def compile_plan(
    module,
    example: np.ndarray,
    fold_constants: bool = True,
    fuse: bool = True,
    dtype=np.float64,
    parallel: bool = False,
) -> Plan:
    """Compile ``module``'s forward into a :class:`Plan` for one input shape.

    ``dtype`` is the plan's execution precision (the trace itself always
    runs the float64 autograd engine): constants are cast once at compile
    time, workspace buffers are allocated at the policy's itemsize, and the
    engine casts the input on entry and the output back to float64 on exit.

    ``parallel`` binds the plan for concurrent island replay: buffer
    pooling then refuses to hand a freed buffer to any step that could run
    concurrently with the buffer's previous owner, which costs some
    workspace (~1.4x on DyHSL at PEMS08 scale) — serial plans (the
    default) keep the tighter index-ordered pooling and carry no schedule.

    Implemented as :func:`build_plan_spec` (trace + graph passes + layout)
    followed by :func:`~repro.runtime.engine.bind_plan` (buffer and kernel
    binding) — the same two halves an on-disk plan artifact goes through,
    so loaded plans are structurally identical to compiled ones.
    """
    spec, values = build_plan_spec(
        module,
        example,
        fold_constants=fold_constants,
        fuse=fuse,
        dtype=dtype,
        parallel=parallel,
    )
    return bind_plan(spec, values)
