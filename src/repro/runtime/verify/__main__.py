"""CLI: audit plan-artifact stores, or lint serving code.

Store audit (default mode)::

    python -m repro.runtime.verify artifacts/            # artifact dir
    python -m repro.runtime.verify ckpt/dyhsl.npz        # checkpoint ->
                                                         # dyhsl.artifacts sidecar

prints one verdict line per plan (trace hash, step count, OK or the
findings) and a per-store summary; exits 1 if any plan has findings.

Lint mode::

    python -m repro.runtime.verify --lint src/repro/serving

runs the concurrency lint over the given files/directories and exits 1
on any unsuppressed finding.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from .lint import LINT_RULES, lint_paths
from .plan import PLAN_RULES, verify_store


def _resolve_store_root(path: Path) -> Path:
    """Map a checkpoint ``.npz`` to its artifact sidecar directory."""
    if path.suffix == ".npz" or (not path.is_dir() and path.with_suffix(".npz").exists()):
        from ...training.checkpoints import artifact_dir_for

        return artifact_dir_for(path)
    return path


def _audit(paths: List[str], quiet: bool) -> int:
    status = 0
    for raw in paths:
        root = _resolve_store_root(Path(raw))
        if not root.is_dir():
            print(f"{raw}: no artifact store at {root}", file=sys.stderr)
            status = 2
            continue
        reports = verify_store(root)
        bad = sum(0 if report.ok else 1 for report in reports.values())
        print(f"{root}: {len(reports)} plan(s), {bad} with findings "
              f"(rules {'/'.join(PLAN_RULES)})")
        for key in sorted(reports):
            report = reports[key]
            if report.ok:
                if not quiet:
                    print(f"  {key[:16]}  OK  "
                          f"({report.steps} steps, dtype {report.dtype})")
                continue
            status = max(status, 1)
            print(f"  {key[:16]}  FAIL")
            for finding in report.findings:
                print(f"    {finding}")
    return status


def _lint(paths: List[str]) -> int:
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    print(f"{len(findings)} finding(s) (rules {'/'.join(LINT_RULES)}) "
          f"over {len(paths)} path(s)")
    return 1 if findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.verify",
        description="Statically verify compiled plan artifacts, or lint "
                    "serving code for concurrency hazards.",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="artifact directories or .npz checkpoints (default mode); "
             "python files/directories with --lint",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run the concurrency lint instead of the store audit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="store audit: only print plans with findings",
    )
    options = parser.parse_args(argv)
    if options.lint:
        return _lint(options.paths)
    return _audit(options.paths, options.quiet)


if __name__ == "__main__":
    raise SystemExit(main())
