"""AST-based concurrency lint for the serving tier.

The serving stack is lock-rich — swap/requests locks in the service
frontend, the rolling-buffer lock, batcher queue/flush locks, the
process tier's lane gates and spawn/stats locks — and its two classic
failure modes are lock-order inversion (deadlock) and slow work
performed while holding a hot lock (latency collapse).  Neither shows up
reliably under test load, so this module proves their absence statically
by walking the AST:

``L-LOCK-ORDER``
    Locks must be acquired consistently with
    :data:`CANONICAL_LOCK_ORDER` (outermost first).  Acquiring a lock
    that ranks *before* one already held — directly, or transitively
    through a same-module call — is an inversion: two threads taking the
    same pair in opposite orders can deadlock.  Locks the catalogue does
    not name are tracked (for ``L-BLOCK``) but never ranked.
``L-BLOCK``
    Blocking calls under a held lock: sleeps, file/NPZ I/O, ``os.replace``
    / ``shutil`` / ``subprocess``, future ``.result()``, thread/process
    ``.join()``, and plan compiles (``compile_module`` /
    ``build_plan_spec`` / ``trace_module``).  ``Condition.wait`` is
    deliberately *not* flagged — it releases the lock while waiting.
``L-SPAWN``
    Process-tier spawn-safety: every ``Process(...)`` construction must
    target a module-level function (not a lambda, bound method, or
    function nested in the spawning scope — none of which survive the
    ``spawn`` start method's pickling) and must not smuggle lambdas
    through ``args``.
``L-RETRY``
    Retry-loop hygiene: a loop that swallows an exception and
    ``continue``s (a re-dispatch loop) must back off before the next
    attempt — a bare ``while True: try/except: continue`` hot-spins the
    failing dependency, and a bounded ``for`` retry without any
    sleep/backoff/delay call hammers it just as hard.  Loops with a
    backoff call anywhere in their body (``time.sleep``, a
    ``*_backoff*``/``*_delay*`` helper) pass; use
    :class:`repro.serving.RetryPolicy` for the canonical bounded,
    jittered implementation.

Findings reuse the plan verifier's :class:`~.plan.Diagnostic` with
``path``/``line`` set.  Suppress a finding by putting
``# lint: disable=RULE`` (comma-separate several, or ``all``) on the
flagged line or the line directly above it.

The analysis is intra-procedural per class with a transitive summary
pass: each function's acquired locks and blocking calls propagate
through ``self.method()`` and bare same-module calls to a fixpoint, so a
blocking call two frames below a ``with self._lock:`` still fires.
Nested function bodies are skipped for lock context (they run later, not
at definition time) but are still scanned for spawn-safety.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .plan import Diagnostic

__all__ = ["CANONICAL_LOCK_ORDER", "LINT_RULES", "lint_paths", "lint_source"]

#: Lint rule ids, in severity order.
LINT_RULES = ("L-LOCK-ORDER", "L-BLOCK", "L-SPAWN", "L-RETRY")

#: Canonical outermost-to-innermost lock acquisition order across
#: ``repro.serving``.  A thread may only acquire rightward: the service
#: swap/request locks wrap everything, routing wraps batching, the
#: resilience layer's breaker/retry bookkeeping sits inside the flush it
#: instruments, the buffer/monitor/cache ``_lock`` family nests inside
#: those, the process tier's queue condition and spawn lock nest further
#: in, and the stats locks are innermost leaves (never held across
#: another acquisition).
CANONICAL_LOCK_ORDER = (
    "_swap_lock",
    "_requests_lock",
    "_route_lock",
    "_flush_lock",
    "_breaker_lock",
    "_retry_lock",
    "_lock",
    "_queue_lock",
    "_cond",
    "_spawn_lock",
    "_stats_lock",
)

_RANK = {name: index for index, name in enumerate(CANONICAL_LOCK_ORDER)}

#: Bare-name calls that block (I/O or compilation).
_BLOCKING_NAMES = {
    "open": "file I/O (open)",
    "compile_module": "plan compilation",
    "compile_plan": "plan compilation",
    "build_plan_spec": "plan compilation",
    "trace_module": "plan tracing",
}

#: ``receiver.attr`` calls that block, keyed by receiver name.
_BLOCKING_RECEIVERS = {
    "time": {"sleep"},
    "np": {"load", "save", "savez", "savez_compressed"},
    "numpy": {"load", "save", "savez", "savez_compressed"},
    "os": {"replace", "rename", "fsync"},
}

#: Path-object I/O methods (flagged on any receiver).
_PATH_IO_ATTRS = {"read_text", "read_bytes", "write_text", "write_bytes"}

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


def _lock_attr(expr: ast.expr) -> Optional[str]:
    """Lock name if ``expr`` is ``self.<attr>`` naming a lock/condition."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and (expr.attr.endswith("lock") or expr.attr.endswith("cond"))
    ):
        return expr.attr
    return None


def _receiver_name(func: ast.Attribute) -> Optional[str]:
    if isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _is_numeric_constant(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_numeric_constant(node.operand)
    return False


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why ``call`` blocks, or ``None`` if it doesn't (statically)."""
    func = call.func
    if isinstance(func, ast.Name):
        return _BLOCKING_NAMES.get(func.id)
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr in _BLOCKING_NAMES:
        return _BLOCKING_NAMES[attr]
    receiver = _receiver_name(func)
    if receiver in ("shutil", "subprocess"):
        return f"{receiver}.{attr}"
    if receiver in _BLOCKING_RECEIVERS and attr in _BLOCKING_RECEIVERS[receiver]:
        return f"{receiver}.{attr}"
    if attr in _PATH_IO_ATTRS:
        return f"path I/O (.{attr})"
    if attr == "result":
        # future.result() blocks; zero positional args or a timeout kwarg.
        if not call.args or all(kw.arg == "timeout" for kw in call.keywords):
            return "future .result()"
    if attr == "join":
        # thread/process join: no args, timeout kwarg, or one numeric
        # positional.  str.join / os.path.join take non-numeric operands.
        if not call.args and all(kw.arg == "timeout" for kw in call.keywords):
            return "thread/process .join()"
        if len(call.args) == 1 and _is_numeric_constant(call.args[0]) and not call.keywords:
            return "thread/process .join()"
    return None


# ----------------------------------------------------------------------
# Pass 1: per-function summaries + transitive closure
# ----------------------------------------------------------------------

@dataclass
class _Summary:
    acquires: Set[str] = field(default_factory=set)
    blocking: Set[str] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)  # qualified local callees


def _function_nodes(tree: ast.Module):
    """Yield ``(qualified_name, class_name, node)`` for every top-level
    function and method (nested defs excluded — see module docstring)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, None, node
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{child.name}", node.name, child


def _iter_body(node, *, into_defs: bool = False):
    """``ast.walk`` that optionally stops at nested function boundaries."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if not into_defs and isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _summarise(
    name: str,
    class_name: Optional[str],
    node,
    method_classes: Dict[str, Set[str]],
    module_functions: Set[str],
) -> _Summary:
    summary = _Summary()
    for child in _iter_body(node):
        if isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                lock = _lock_attr(item.context_expr)
                if lock:
                    summary.acquires.add(lock)
        elif isinstance(child, ast.Call):
            reason = _blocking_reason(child)
            if reason:
                summary.blocking.add(reason)
            callee = _local_callee(child, class_name, method_classes, module_functions)
            if callee:
                summary.calls.add(callee)
    return summary


def _local_callee(
    call: ast.Call,
    class_name: Optional[str],
    method_classes: Dict[str, Set[str]],
    module_functions: Set[str],
) -> Optional[str]:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and class_name is not None
        and class_name in method_classes.get(func.attr, set())
    ):
        return f"{class_name}.{func.attr}"
    if isinstance(func, ast.Name) and func.id in module_functions:
        return func.id
    return None


def _close_summaries(summaries: Dict[str, _Summary]) -> None:
    """Propagate acquires/blocking through local calls to a fixpoint."""
    changed = True
    while changed:
        changed = False
        for summary in summaries.values():
            for callee in summary.calls:
                target = summaries.get(callee)
                if target is None:
                    continue
                if not target.acquires <= summary.acquires:
                    summary.acquires |= target.acquires
                    changed = True
                if not target.blocking <= summary.blocking:
                    summary.blocking |= target.blocking
                    changed = True


# ----------------------------------------------------------------------
# Pass 2: report findings with lock context
# ----------------------------------------------------------------------

def _check_order(
    lock: str,
    held: List[Tuple[str, int]],
    line: int,
    path: str,
    via: str,
    out: List[Diagnostic],
) -> None:
    rank = _RANK.get(lock)
    if rank is None:
        return
    for held_lock, held_line in held:
        held_rank = _RANK.get(held_lock)
        if held_rank is None or held_lock == lock:
            continue
        if rank < held_rank:
            out.append(Diagnostic(
                "L-LOCK-ORDER",
                f"acquires {lock!r}{via} while holding {held_lock!r} "
                f"(line {held_line}); canonical order is "
                f"{lock!r} before {held_lock!r}",
                path=path,
                line=line,
            ))


def _lint_function(
    name: str,
    class_name: Optional[str],
    node,
    path: str,
    summaries: Dict[str, _Summary],
    method_classes: Dict[str, Set[str]],
    module_functions: Set[str],
    out: List[Diagnostic],
) -> None:
    nested_defs = {
        child.name
        for child in _iter_body(node, into_defs=True)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not node
    }

    def visit(statements, held: List[Tuple[str, int]]) -> None:
        for stmt in statements:
            visit_node(stmt, held)

    def visit_node(stmt, held: List[Tuple[str, int]]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # runs later, not under these locks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = 0
            for item in stmt.items:
                scan_expr(item.context_expr, held)
                lock = _lock_attr(item.context_expr)
                if lock:
                    _check_order(lock, held, item.context_expr.lineno, path, "", out)
                    held.append((lock, item.context_expr.lineno))
                    acquired += 1
            visit(stmt.body, held)
            for _ in range(acquired):
                held.pop()
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                scan_expr(child, held)
            else:
                visit_node(child, held)

    def scan_expr(expr, held: List[Tuple[str, int]]) -> None:
        for node_ in [expr] + [
            n for n in _iter_body(expr) if isinstance(n, ast.Call)
        ]:
            if not isinstance(node_, ast.Call):
                continue
            _check_spawn(node_, nested_defs, path, out)
            if not held:
                continue
            reason = _blocking_reason(node_)
            if reason:
                out.append(Diagnostic(
                    "L-BLOCK",
                    f"{reason} while holding {held[-1][0]!r} "
                    f"(acquired line {held[-1][1]})",
                    path=path,
                    line=node_.lineno,
                ))
            callee = _local_callee(node_, class_name, method_classes, module_functions)
            summary = summaries.get(callee) if callee else None
            if summary is None:
                continue
            for lock in sorted(summary.acquires):
                _check_order(
                    lock, held, node_.lineno, path, f" via {callee}()", out
                )
            for reason_ in sorted(summary.blocking):
                out.append(Diagnostic(
                    "L-BLOCK",
                    f"{reason_} via {callee}() while holding {held[-1][0]!r} "
                    f"(acquired line {held[-1][1]})",
                    path=path,
                    line=node_.lineno,
                ))

    visit(node.body, [])


_BACKOFF_HINTS = ("sleep", "backoff", "delay")


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _has_backoff(loop) -> bool:
    """True when the loop body contains a sleep/backoff/delay call."""
    for node in _iter_body(loop):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name and any(hint in name for hint in _BACKOFF_HINTS):
                return True
    return False


def _handler_continues(handler: ast.ExceptHandler) -> bool:
    """True when ``handler`` re-enters its loop with ``continue``.

    Only the handler's own loop counts: a ``continue`` inside a loop (or
    function) nested within the handler targets that inner construct.
    """
    stack = list(handler.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, ast.Continue):
            return True
        if isinstance(
            stmt, (ast.For, ast.While, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        stack.extend(
            child for child in ast.iter_child_nodes(stmt)
            if isinstance(child, ast.stmt)
        )
    return False


_ATTEMPT_HINTS = ("attempt", "retry", "retries", "tries")


def _is_retry_shaped(loop) -> bool:
    """Is ``loop`` a *re-attempt* loop (vs. iterating over alternatives)?

    ``while True`` re-runs the same body; so does ``for attempt in
    range(...)`` when the loop variable or the range bound is named after
    attempts.  A ``for item in collection`` that skips failing *items*
    with ``continue`` is not a retry — each iteration targets new work.
    """
    if isinstance(loop, ast.While):
        return isinstance(loop.test, ast.Constant) and bool(loop.test.value)
    iterator = loop.iter
    if not (
        isinstance(iterator, ast.Call)
        and isinstance(iterator.func, ast.Name)
        and iterator.func.id == "range"
    ):
        return False
    names = []
    if isinstance(loop.target, ast.Name):
        names.append(loop.target.id)
    for arg in iterator.args:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name):
                names.append(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.append(sub.attr)
    return any(hint in name.lower() for name in names for hint in _ATTEMPT_HINTS)


def _check_retry(node, path: str, out: List[Diagnostic]) -> None:
    """Flag retry loops (except -> continue) that hot-spin without backoff."""
    for loop in _iter_body(node):
        if not isinstance(loop, (ast.While, ast.For)) or not _is_retry_shaped(loop):
            continue
        retry_handlers: List[ast.ExceptHandler] = []
        stack = list(loop.body)
        while stack:
            stmt = stack.pop()
            if isinstance(
                stmt, (ast.For, ast.While, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # inner loops are their own retry scopes
            if isinstance(stmt, ast.Try):
                retry_handlers.extend(
                    handler for handler in stmt.handlers
                    if _handler_continues(handler)
                )
            stack.extend(
                child for child in ast.iter_child_nodes(stmt)
                if isinstance(child, ast.stmt)
            )
        if not retry_handlers or _has_backoff(loop):
            continue
        unbounded = isinstance(loop, ast.While) and (
            isinstance(loop.test, ast.Constant) and bool(loop.test.value)
        )
        shape = (
            "unbounded retry loop (`while True` with `except: continue`)"
            if unbounded
            else "retry loop (`except: continue`)"
        )
        out.append(Diagnostic(
            "L-RETRY",
            f"{shape} without backoff before the next attempt; bound the "
            "attempts and back off (RetryPolicy is the canonical helper)",
            path=path,
            line=retry_handlers[0].lineno,
        ))


def _check_spawn(
    call: ast.Call,
    nested_defs: Set[str],
    path: str,
    out: List[Diagnostic],
) -> None:
    func = call.func
    is_process = (isinstance(func, ast.Name) and func.id == "Process") or (
        isinstance(func, ast.Attribute) and func.attr == "Process"
    )
    if not is_process:
        return
    target = next((kw.value for kw in call.keywords if kw.arg == "target"), None)
    if target is not None:
        if isinstance(target, ast.Lambda):
            out.append(Diagnostic(
                "L-SPAWN",
                "Process target is a lambda; spawn start methods cannot "
                "pickle it — use a module-level function",
                path=path,
                line=target.lineno,
            ))
        elif isinstance(target, ast.Attribute) and (
            isinstance(target.value, ast.Name) and target.value.id == "self"
        ):
            out.append(Diagnostic(
                "L-SPAWN",
                f"Process target is the bound method self.{target.attr}; "
                "pickling it drags the whole object graph through spawn — "
                "use a module-level function",
                path=path,
                line=target.lineno,
            ))
        elif isinstance(target, ast.Name) and target.id in nested_defs:
            out.append(Diagnostic(
                "L-SPAWN",
                f"Process target {target.id!r} is defined inside the "
                "spawning function; spawn start methods cannot import it — "
                "move it to module level",
                path=path,
                line=target.lineno,
            ))
    args_kw = next((kw.value for kw in call.keywords if kw.arg == "args"), None)
    if isinstance(args_kw, (ast.Tuple, ast.List)):
        for element in args_kw.elts:
            if isinstance(element, ast.Lambda):
                out.append(Diagnostic(
                    "L-SPAWN",
                    "Process args contain a lambda; worker arguments must "
                    "be picklable",
                    path=path,
                    line=element.lineno,
                ))


# ----------------------------------------------------------------------
# Suppression + entry points
# ----------------------------------------------------------------------

def _suppressed_rules(source: str) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            suppressions[number] = rules
    return suppressions


def _is_suppressed(finding: Diagnostic, suppressions: Dict[int, Set[str]]) -> bool:
    if finding.line is None:
        return False
    for line in (finding.line, finding.line - 1):
        rules = suppressions.get(line)
        if rules and (finding.rule in rules or "all" in rules):
            return True
    return False


def lint_source(source: str, path: str = "<string>") -> List[Diagnostic]:
    """Lint one python source string; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Diagnostic(
            "L-SPAWN",
            f"unparseable source: {error.msg}",
            path=path,
            line=error.lineno,
        )]
    functions = list(_function_nodes(tree))
    module_functions = {name for name, cls, _n in functions if cls is None}
    method_classes: Dict[str, Set[str]] = {}
    for qualified, cls, node in functions:
        if cls is not None:
            method_classes.setdefault(node.name, set()).add(cls)
    summaries = {
        qualified: _summarise(qualified, cls, node, method_classes, module_functions)
        for qualified, cls, node in functions
    }
    _close_summaries(summaries)
    findings: List[Diagnostic] = []
    for qualified, cls, node in functions:
        _lint_function(
            qualified, cls, node, path, summaries, method_classes,
            module_functions, findings,
        )
        _check_retry(node, path, findings)
    suppressions = _suppressed_rules(source)
    kept = [f for f in findings if not _is_suppressed(f, suppressions)]
    kept.sort(key=lambda f: (f.line or 0, f.rule))
    return kept


def lint_paths(paths: Sequence[Union[str, Path]]) -> List[Diagnostic]:
    """Lint files and/or directories (``*.py``, recursively)."""
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    findings: List[Diagnostic] = []
    for file in files:
        findings.extend(lint_source(file.read_text(), path=str(file)))
    return findings
