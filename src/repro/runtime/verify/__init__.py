"""Static verification of compiled plans and the serving concurrency lint.

The runtime replays liveness-pooled, wave-parallel, precision-cast plans —
loaded from disk artifacts — into three serving tiers.  Every one of those
transformations (island scheduling, buffer pooling, elementwise fusion,
workspace carving, artifact deserialisation) can silently corrupt results
if a single invariant slips, and the only dynamic guard is a one-row
parity spot check on first serve.  This package turns the invariants into
machine-checked proofs:

* :func:`verify_spec` / :func:`verify_plan` — the plan analyses, run over
  a :class:`~repro.runtime.engine.PlanSpec` (no execution): wave-race
  detection, lifetime/use-after-release checking, dtype-flow audit,
  fusion legality, and workspace-carving layout (see
  :mod:`repro.runtime.verify.plan` for the rule catalogue);
* :func:`verify_store` — audit every artifact in an
  :class:`~repro.runtime.ArtifactStore`, one report per plan;
* :func:`lint_paths` — the AST concurrency lint over serving code: lock
  acquisition order, blocking calls under locks, process spawn-safety
  (see :mod:`repro.runtime.verify.lint`);
* ``python -m repro.runtime.verify <artifact-dir|checkpoint>`` — the CLI
  that audits a whole store (or a checkpoint's artifact sidecar) and
  reports per-plan verdicts; ``--lint <path>`` runs the serving lint.

Setting :data:`VERIFY_ENV_VAR` (``REPRO_RUNTIME_VERIFY=1``) engages the
plan analyses at the two trust boundaries: every fresh compile
(:class:`~repro.runtime.CompiledModel` raises :class:`VerifyError` on a
finding — a compiler bug must never serve) and every artifact read from
disk (:meth:`~repro.runtime.ArtifactStore.load` rejects the artifact with
an :class:`~repro.runtime.ArtifactError`, so callers fall back to a fresh,
verified compile).  Verification is a one-time, per-plan cost at compile
or load — nothing runs on the request hot path.

All findings are structured :class:`Diagnostic` records (rule id, step
indices, byte ranges), never asserts.
"""

from __future__ import annotations

import os

from .lint import (
    CANONICAL_LOCK_ORDER,
    LINT_RULES,
    lint_paths,
    lint_source,
)
from .plan import (
    PLAN_RULES,
    Diagnostic,
    VerifyError,
    VerifyReport,
    storage_layout,
    verify_plan,
    verify_spec,
    verify_store,
)

__all__ = [
    "CANONICAL_LOCK_ORDER",
    "Diagnostic",
    "LINT_RULES",
    "PLAN_RULES",
    "VERIFY_ENV_VAR",
    "VerifyError",
    "VerifyReport",
    "lint_paths",
    "lint_source",
    "storage_layout",
    "verify_enabled",
    "verify_plan",
    "verify_spec",
    "verify_store",
]

#: Environment variable engaging plan verification at compile and artifact
#: load ("1"/"true"/"yes"/"on" enable; unset or anything else disables).
VERIFY_ENV_VAR = "REPRO_RUNTIME_VERIFY"


def verify_enabled() -> bool:
    """Whether the ``REPRO_RUNTIME_VERIFY`` gate is switched on."""
    return os.environ.get(VERIFY_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on")
