"""Static analyses over :class:`~repro.runtime.engine.PlanSpec`.

Every rule re-derives an invariant the compiler is supposed to establish
and checks the spec against it — without executing a single kernel — so a
compiler regression, a corrupted artifact, or a hand-mutated plan is
caught before it can serve a wrong answer.

Rule catalogue
--------------

``P-SCHED``
    Island/wave schedule well-formedness: every step scheduled exactly
    once, island step indices in execution order, and every data
    dependency ordered by the schedule (same island earlier, or a
    strictly earlier wave).  A violated dependency is exactly the "wave
    reassignment" corruption: a step could observe its operand before the
    producing island ran.
``P-RACE``
    The wave-race detector: same-wave islands must have disjoint
    workspace write intervals and no write/read overlap.  Storages are
    carved from the pooled buffer at byte granularity
    (:func:`storage_layout`), so two islands conflict exactly when they
    touch the same storage's byte interval in the same wave — the
    condition under which ``Plan.execute(threads=N)`` would race.
``P-LIFE``
    The lifetime checker: every slot a step reads must be dominated by a
    write (an earlier step's output) or be a constant/input slot, and no
    step may read a slot whose pooled storage has since been reassigned
    to another slot (use-after-release).
``P-DTYPE``
    The dtype-flow audit: the plan dtype is a supported precision, every
    floating constant is stored at the plan dtype (a float64 constant in
    a float32 plan is the "dropped cast" corruption), and float32 plans
    that reduce through softmax / log_softmax / layer_norm do so with the
    :func:`repro.tensor.kernels._reduce_dtype` float64-accumulation
    contract intact.  (The float64 exit cast itself lives in
    ``Plan.call`` and is covered by the engine's parity tests.)
``P-FUSE``
    Fusion legality: fused elementwise chains reference only supported,
    fusable kernels, their operand references are well-formed (the head
    never consumes the running value, every later link does — the
    single-consumer adjacency invariant), and every external operand
    broadcasts to the chain's output shape.
``P-LAYOUT``
    Workspace carving: every buffered step's storage id is in range and
    its output byte span exactly fills the storage's 64-byte-aligned
    interval — a shrunk or aliased interval would overlap the next
    storage in the carved workspace (the rule reports both byte ranges).

All rules report structured :class:`Diagnostic` records; none of them
assert or raise (except :func:`verify_store` reporting unreadable
artifacts as ``P-ARTIFACT`` findings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ...tensor import kernels as K
from ..engine import WORKSPACE_ALIGN, PlanSpec

__all__ = [
    "PLAN_RULES",
    "Diagnostic",
    "VerifyError",
    "VerifyReport",
    "storage_layout",
    "verify_plan",
    "verify_spec",
    "verify_store",
]

#: Rule ids of the plan analyses, in the order they run.
PLAN_RULES = ("P-LAYOUT", "P-SCHED", "P-RACE", "P-LIFE", "P-DTYPE", "P-FUSE")

#: Kernels whose float32 execution must accumulate in float64
#: (the ``_reduce_dtype`` contract of :mod:`repro.tensor.kernels`).
_CONTRACT_REDUCTIONS = ("softmax", "log_softmax", "layer_norm")


@dataclass(frozen=True)
class Diagnostic:
    """One verification finding: rule id plus machine-usable locus.

    ``steps`` are plan step indices; ``byte_range`` is a half-open
    ``[lo, hi)`` interval into the carved workspace (absolute offsets of
    the deterministic :func:`storage_layout`).  Lint findings reuse the
    same record with ``path``/``line`` set instead.
    """

    rule: str
    message: str
    steps: Tuple[int, ...] = ()
    storage: Optional[int] = None
    byte_range: Optional[Tuple[int, int]] = None
    path: Optional[str] = None
    line: Optional[int] = None

    def __str__(self) -> str:
        locus = ""
        if self.path is not None:
            locus = f"{self.path}:{self.line}: "
        elif self.steps:
            locus = f"steps {list(self.steps)}: "
        extra = ""
        if self.byte_range is not None:
            extra = f" [bytes {self.byte_range[0]}:{self.byte_range[1]})"
        return f"{self.rule}: {locus}{self.message}{extra}"


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of one plan verification: findings plus what was checked."""

    findings: Tuple[Diagnostic, ...]
    checked_rules: Tuple[str, ...] = PLAN_RULES
    dtype: str = ""
    steps: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self, rule: str) -> Tuple[Diagnostic, ...]:
        return tuple(finding for finding in self.findings if finding.rule == rule)

    def summary(self) -> str:
        if self.ok:
            return f"OK ({self.steps} steps, rules {'/'.join(self.checked_rules)})"
        rules = sorted({finding.rule for finding in self.findings})
        head = "; ".join(str(finding) for finding in self.findings[:3])
        more = f" (+{len(self.findings) - 3} more)" if len(self.findings) > 3 else ""
        return f"{len(self.findings)} finding(s) [{', '.join(rules)}]: {head}{more}"


class VerifyError(RuntimeError):
    """A freshly compiled plan failed static verification.

    Raised (only) by the ``REPRO_RUNTIME_VERIFY`` compile gate: unlike an
    artifact finding — which falls back to a fresh compile — a finding on
    the compile output itself means the compiler produced a provably
    unsafe plan, and serving it would be serving the bug.
    """

    def __init__(self, report: VerifyReport) -> None:
        super().__init__(f"compiled plan failed static verification: {report.summary()}")
        self.report = report


# ----------------------------------------------------------------------
# Shared reconstruction helpers
# ----------------------------------------------------------------------

def storage_layout(storage_sizes: Sequence[int]) -> List[Tuple[int, int]]:
    """``(offset, nbytes)`` of every storage in the carved workspace.

    Mirrors the deterministic id-order, 64-byte-aligned carving of
    :func:`~repro.runtime.engine.plan_workspace_nbytes` /
    :func:`~repro.runtime.engine.bind_plan`, so diagnostics can report
    absolute byte intervals into an external workspace buffer.
    """
    intervals: List[Tuple[int, int]] = []
    offset = 0
    for nbytes in storage_sizes:
        offset += (-offset) % WORKSPACE_ALIGN
        intervals.append((offset, int(nbytes)))
        offset += int(nbytes)
    return intervals


def _is_basic_index(index) -> bool:
    """Whether a ``getitem`` index is basic slicing (a true view)."""
    items = index if isinstance(index, tuple) else (index,)
    for item in items:
        if item is None or item is Ellipsis:
            continue
        if isinstance(item, slice):
            continue
        if isinstance(item, (bool, np.bool_)):
            return False  # boolean scalar index is advanced
        if isinstance(item, (int, np.integer)):
            continue
        return False  # array / list / mask -> advanced indexing (alloc)
    return True


def _is_view_step(step) -> bool:
    """Whether a storage-less step's output aliases its first input.

    ``transpose`` / ``squeeze`` / ``unsqueeze`` / ``reshape`` kernels
    always return views (copying reshapes were rewritten to the buffered
    ``reshape_copy`` at compile time); ``getitem`` is a view only for
    basic slicing — advanced indexing allocates per call and aliases
    nothing.
    """
    if step.storage is not None or step.name not in K.VIEW_OPS:
        return False
    if step.name == "getitem":
        return _is_basic_index(step.kwargs.get("index"))
    return True


def _slot_storages(spec: PlanSpec) -> Dict[int, Optional[int]]:
    """slot id -> pooled storage id backing it (``None`` = unpooled).

    Buffered steps bind their output slot to their storage; view steps
    alias their input's storage; alloc steps (and the input/constant
    slots) are unpooled.  Slots are written once (SSA), so the mapping is
    temporal-free — lifetime questions are handled separately.
    """
    mapping: Dict[int, Optional[int]] = {}
    for step in spec.steps:
        if step.storage is not None:
            mapping[step.out_slot] = step.storage
        elif _is_view_step(step):
            mapping[step.out_slot] = mapping.get(step.in_slots[0])
        else:
            mapping[step.out_slot] = None
    return mapping


def _chain_of(step) -> List[Tuple[str, Tuple[int, ...], Dict]]:
    """The (name, refs, kwargs) triples of a fused step, tolerant of
    list/tuple round-trip differences in deserialised kwargs."""
    chain = step.kwargs.get("chain", ())
    triples = []
    for instruction in chain:
        parts = list(instruction)
        if len(parts) != 3:
            return []  # malformed; the caller reports it
        name, refs, kwargs = parts
        triples.append((name, tuple(refs), kwargs))
    return triples


# ----------------------------------------------------------------------
# The analyses
# ----------------------------------------------------------------------

def _check_layout(spec: PlanSpec, out: List[Diagnostic]) -> None:
    intervals = storage_layout(spec.storage_sizes)
    itemsize = np.dtype(spec.dtype).itemsize
    for storage, (offset, nbytes) in enumerate(intervals):
        if nbytes <= 0:
            out.append(Diagnostic(
                "P-LAYOUT",
                f"storage {storage} has non-positive size {nbytes}",
                storage=storage,
            ))
        if offset % WORKSPACE_ALIGN:
            out.append(Diagnostic(
                "P-LAYOUT",
                f"storage {storage} starts at offset {offset}, not "
                f"{WORKSPACE_ALIGN}-byte aligned",
                storage=storage,
                byte_range=(offset, offset + nbytes),
            ))
    for index, step in enumerate(spec.steps):
        if step.storage is None:
            continue
        if not 0 <= step.storage < len(spec.storage_sizes):
            out.append(Diagnostic(
                "P-LAYOUT",
                f"step {index} ({step.name}) references storage {step.storage}; "
                f"the plan carves only {len(spec.storage_sizes)}",
                steps=(index,),
                storage=step.storage,
            ))
            continue
        offset, nbytes = intervals[step.storage]
        needed = int(np.prod(step.out_shape, dtype=np.int64)) * itemsize
        if needed != nbytes:
            out.append(Diagnostic(
                "P-LAYOUT",
                f"step {index} ({step.name}) writes {needed} bytes into storage "
                f"{step.storage} carved at {nbytes} bytes — the view would "
                f"overlap the adjacent storage interval",
                steps=(index,),
                storage=step.storage,
                byte_range=(offset, offset + max(needed, nbytes)),
            ))


def _check_schedule_and_races(
    spec: PlanSpec,
    slot_storage: Dict[int, Optional[int]],
    producer: Dict[int, int],
    out: List[Diagnostic],
) -> None:
    if spec.schedule is None:
        return
    num_steps = len(spec.steps)
    island_of: Dict[int, Tuple[int, int]] = {}  # step -> (wave, island ordinal)
    seen: Dict[int, int] = {}
    for wave_id, wave in enumerate(spec.schedule):
        for ordinal, island in enumerate(wave):
            previous = -1
            for index in island:
                if not 0 <= index < num_steps:
                    out.append(Diagnostic(
                        "P-SCHED",
                        f"schedule references step {index}; the plan has {num_steps}",
                        steps=(index,),
                    ))
                    continue
                if index in seen:
                    out.append(Diagnostic(
                        "P-SCHED",
                        f"step {index} is scheduled twice",
                        steps=(index,),
                    ))
                seen[index] = seen.get(index, 0) + 1
                if index <= previous:
                    out.append(Diagnostic(
                        "P-SCHED",
                        f"island steps out of execution order: {index} after {previous}",
                        steps=(previous, index),
                    ))
                previous = index
                island_of[index] = (wave_id, ordinal)
    missing = [index for index in range(num_steps) if index not in seen]
    if missing:
        out.append(Diagnostic(
            "P-SCHED",
            f"{len(missing)} step(s) missing from the schedule "
            f"(first: {missing[:4]})",
            steps=tuple(missing[:4]),
        ))
    if missing or len(seen) != num_steps:
        return  # structural breakage; dependency/race checks would cascade

    # Dependency order: every operand's producer runs in the same island
    # earlier, or in a strictly earlier wave.
    for index, step in enumerate(spec.steps):
        wave, island = island_of[index]
        for slot in step.in_slots:
            source = producer.get(slot)
            if source is None:
                continue  # input/const slot; undefined reads are P-LIFE
            src_wave, src_island = island_of[source]
            ordered = src_wave < wave or (
                (src_wave, src_island) == (wave, island) and source < index
            )
            if not ordered:
                out.append(Diagnostic(
                    "P-SCHED",
                    f"step {index} ({step.name}) reads slot {slot} produced by "
                    f"step {source} in wave {src_wave}; the schedule does not "
                    f"order the producer before it",
                    steps=(source, index),
                ))

    # Wave races: same-wave islands touching one storage's byte interval.
    intervals = storage_layout(spec.storage_sizes)
    for wave_id, wave in enumerate(spec.schedule):
        if len(wave) < 2:
            continue
        # storage -> (island ordinal, step index, "write"/"read")
        touches: Dict[int, List[Tuple[int, int, str]]] = {}
        for ordinal, island in enumerate(wave):
            for index in island:
                step = spec.steps[index]
                if step.storage is not None:
                    touches.setdefault(step.storage, []).append((ordinal, index, "write"))
                for slot in step.in_slots:
                    storage = slot_storage.get(slot)
                    if storage is not None:
                        touches.setdefault(storage, []).append((ordinal, index, "read"))
        for storage, accesses in touches.items():
            islands_writing = {o for o, _i, kind in accesses if kind == "write"}
            islands_touching = {o for o, _i, _k in accesses}
            # A conflict needs a writer plus any second island on the same
            # interval: two writers (W/W) or a writer and a reader (W/R).
            conflict = len(islands_writing) >= 2 or (
                islands_writing and islands_touching - islands_writing
            )
            if not conflict:
                continue
            if 0 <= storage < len(intervals):
                offset, nbytes = intervals[storage]
                byte_range = (offset, offset + nbytes)
            else:  # pragma: no cover - P-LAYOUT already reported it
                byte_range = None
            steps = tuple(sorted(index for _o, index, _k in accesses))
            kinds = sorted({kind for _o, _i, kind in accesses})
            out.append(Diagnostic(
                "P-RACE",
                f"wave {wave_id}: islands "
                f"{sorted(islands_writing | (islands_touching - islands_writing))} "
                f"overlap on storage {storage} ({'/'.join(kinds)}) — "
                f"concurrent replay would race",
                steps=steps,
                storage=storage,
                byte_range=byte_range,
            ))


def _check_lifetime(
    spec: PlanSpec,
    slot_storage: Dict[int, Optional[int]],
    producer: Dict[int, int],
    out: List[Diagnostic],
) -> None:
    defined: Set[int] = {spec.input_slot} | set(spec.const_slots)
    alias: Dict[int, Set[int]] = {}  # storage -> slots currently backed by it
    stale: Set[int] = set()          # slots whose storage was reassigned
    for index, step in enumerate(spec.steps):
        for slot in step.in_slots:
            if slot not in defined:
                source = producer.get(slot)
                where = f"step {source}" if source is not None else "no step"
                out.append(Diagnostic(
                    "P-LIFE",
                    f"step {index} ({step.name}) reads slot {slot}, which is "
                    f"neither input, constant, nor dominated by a write "
                    f"({where} produces it)",
                    steps=(index,) if source is None else (source, index),
                ))
            elif slot in stale:
                storage = slot_storage.get(slot)
                out.append(Diagnostic(
                    "P-LIFE",
                    f"step {index} ({step.name}) reads slot {slot} after its "
                    f"pooled storage {storage} was reassigned to another slot "
                    f"(use-after-release)",
                    steps=(index,),
                    storage=storage,
                ))
        if step.storage is not None:
            previous = alias.get(step.storage)
            if previous:
                stale.update(previous)
            alias[step.storage] = {step.out_slot}
        elif _is_view_step(step):
            storage = slot_storage.get(step.out_slot)
            if storage is not None:
                alias.setdefault(storage, set()).add(step.out_slot)
        defined.add(step.out_slot)


def _check_dtype_flow(
    spec: PlanSpec,
    values: Optional[Sequence[Optional[np.ndarray]]],
    out: List[Diagnostic],
) -> None:
    try:
        dtype = np.dtype(spec.dtype)
    except TypeError:
        out.append(Diagnostic("P-DTYPE", f"unknown plan dtype {spec.dtype!r}"))
        return
    if dtype.name not in ("float64", "float32"):
        out.append(Diagnostic(
            "P-DTYPE",
            f"plan dtype {dtype.name} is not a supported execution precision",
        ))
    if spec.stats.dtype != spec.dtype:
        out.append(Diagnostic(
            "P-DTYPE",
            f"plan stats declare dtype {spec.stats.dtype}; the spec executes "
            f"at {spec.dtype}",
        ))
    if values is not None:
        for slot in spec.const_slots:
            if not 0 <= slot < len(values):
                continue  # num_slots mismatch is caught at bind time
            value = values[slot]
            if value is None or not np.issubdtype(np.asarray(value).dtype, np.floating):
                continue
            if np.asarray(value).dtype != dtype:
                out.append(Diagnostic(
                    "P-DTYPE",
                    f"constant slot {slot} holds {np.asarray(value).dtype.name} "
                    f"in a {dtype.name} plan — the compile-time cast was dropped",
                ))
    if dtype == np.float32:
        names = [step.name for step in spec.steps]
        reducers = tuple(
            index for index, name in enumerate(names) if name in _CONTRACT_REDUCTIONS
        )
        if reducers and K._reduce_dtype(dtype) != np.float64:
            out.append(Diagnostic(
                "P-DTYPE",
                "float32 plan reduces through "
                f"{sorted({names[i] for i in reducers})} but the kernel "
                "library's _reduce_dtype contract no longer accumulates in "
                "float64",
                steps=reducers,
            ))


def _check_fusion(
    spec: PlanSpec,
    values: Optional[Sequence[Optional[np.ndarray]]],
    producer: Dict[int, int],
    out: List[Diagnostic],
) -> None:
    # Shape environment: input slot + produced slots always known;
    # constant slots known when the values table is supplied.
    shapes: Dict[int, Tuple[int, ...]] = {
        spec.input_slot: tuple(spec.stats.input_shape)
    }
    if values is not None:
        for slot in spec.const_slots:
            if 0 <= slot < len(values) and values[slot] is not None:
                shapes[slot] = tuple(np.shape(values[slot]))
    for step in spec.steps:
        shapes[step.out_slot] = tuple(step.out_shape)

    for index, step in enumerate(spec.steps):
        if step.name != "fused_elementwise":
            continue
        chain = _chain_of(step)
        if not chain:
            out.append(Diagnostic(
                "P-FUSE",
                f"step {index} carries a malformed or empty fused chain",
                steps=(index,),
            ))
            continue
        arity = len(step.in_slots)
        for position, (name, refs, _kwargs) in enumerate(chain):
            if name not in K.KERNELS:
                out.append(Diagnostic(
                    "P-FUSE",
                    f"step {index} chain[{position}] names unknown kernel {name!r}",
                    steps=(index,),
                ))
                continue
            if name not in K.FUSABLE_ELEMENTWISE:
                out.append(Diagnostic(
                    "P-FUSE",
                    f"step {index} chain[{position}] fuses {name!r}, which is "
                    f"not a fusable elementwise kernel",
                    steps=(index,),
                ))
            bad_refs = [ref for ref in refs if not (-1 <= int(ref) < arity)]
            if bad_refs:
                out.append(Diagnostic(
                    "P-FUSE",
                    f"step {index} chain[{position}] references operands "
                    f"{bad_refs}; the step has {arity} external inputs",
                    steps=(index,),
                ))
            if position == 0 and any(int(ref) == -1 for ref in refs):
                out.append(Diagnostic(
                    "P-FUSE",
                    f"step {index} chain head consumes the running value, "
                    f"which does not exist yet",
                    steps=(index,),
                ))
            if position > 0 and all(int(ref) != -1 for ref in refs):
                out.append(Diagnostic(
                    "P-FUSE",
                    f"step {index} chain[{position}] ignores the running value "
                    f"— the chain is not a single-consumer pipeline",
                    steps=(index,),
                ))
        out_shape = tuple(step.out_shape)
        for slot in step.in_slots:
            shape = shapes.get(slot)
            if shape is None:
                continue
            try:
                broadcast = np.broadcast_shapes(shape, out_shape)
            except ValueError:
                broadcast = None
            if broadcast != out_shape:
                out.append(Diagnostic(
                    "P-FUSE",
                    f"step {index} external operand slot {slot} has shape "
                    f"{shape}, which does not broadcast to the chain output "
                    f"{out_shape}",
                    steps=(index,),
                ))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def verify_spec(
    spec: PlanSpec,
    values: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> VerifyReport:
    """Run every plan analysis over ``spec``; returns the findings.

    ``values`` — the constant slot table as produced by
    :func:`~repro.runtime.compiler.build_plan_spec` or an artifact load —
    enables the constant-dtype and constant-shape checks; without it those
    sub-checks are skipped (everything structural still runs).
    """
    findings: List[Diagnostic] = []
    producer: Dict[int, int] = {}
    duplicate: List[int] = []
    for index, step in enumerate(spec.steps):
        if step.out_slot in producer:
            duplicate.append(index)
        producer[step.out_slot] = index
    for index in duplicate:
        findings.append(Diagnostic(
            "P-SCHED",
            f"step {index} rewrites slot {spec.steps[index].out_slot}; plan "
            f"slots are written once",
            steps=(producer[spec.steps[index].out_slot], index),
        ))
    slot_storage = _slot_storages(spec)

    _check_layout(spec, findings)
    _check_schedule_and_races(spec, slot_storage, producer, findings)
    _check_lifetime(spec, slot_storage, producer, findings)
    _check_dtype_flow(spec, values, findings)
    _check_fusion(spec, values, producer, findings)
    return VerifyReport(
        findings=tuple(findings),
        checked_rules=PLAN_RULES,
        dtype=str(spec.dtype),
        steps=len(spec.steps),
    )


def verify_plan(plan) -> VerifyReport:
    """Verify a bound :class:`~repro.runtime.engine.Plan` via its spec."""
    spec = getattr(plan, "spec", None)
    if spec is None:
        return VerifyReport(
            findings=(Diagnostic(
                "P-SCHED",
                "plan carries no PlanSpec (hand-built); nothing to verify",
            ),),
            checked_rules=(),
        )
    return verify_spec(spec, getattr(plan, "_values", None))


def verify_store(store: Union[str, Path, "object"]) -> Dict[str, VerifyReport]:
    """Audit every artifact in a store; one report per trace hash.

    Accepts an :class:`~repro.runtime.ArtifactStore` or a directory path.
    Unreadable/corrupt artifacts surface as a single ``P-ARTIFACT``
    finding instead of raising, so one bad file never hides the verdicts
    of the rest.  Reads are stat-neutral (no load/memo counters move) and
    bypass the ``REPRO_RUNTIME_VERIFY`` load gate — the audit must report
    findings itself, not trip over them.
    """
    from ..artifacts import ArtifactStore

    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store, readonly=True)
    reports: Dict[str, VerifyReport] = {}
    for key in store.keys():
        try:
            spec, constants, _meta = store._read(store.path_for(key), key)
        except Exception as error:
            reports[key] = VerifyReport(
                findings=(Diagnostic(
                    "P-ARTIFACT", f"artifact unreadable: {error}"
                ),),
                checked_rules=("P-ARTIFACT",),
            )
            continue
        reports[key] = verify_spec(spec, store._values_from(spec, constants))
    return reports
