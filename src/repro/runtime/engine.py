"""Plan execution: flat kernel replay over preallocated workspace buffers.

A :class:`Plan` is the compiled form of one module forward pass for one
input shape: a linear sequence of kernel calls (no graph walking — the
trace order is already topological) over a slot table holding the input,
the captured constants and the intermediate buffers.

Per call, the engine pays one Python-level dispatch per surviving kernel
step and **zero allocations for intermediates**: every non-view step writes
into a buffer allocated once at compile time and reused across calls
(view steps — reshape, transpose, slicing — produce zero-copy views and
need no buffer at all).  This is the difference to an autograd forward
under ``no_grad``, which still builds a ``Tensor``, a parent tuple and a
gradient-closure tuple per op and allocates every intermediate array.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Plan", "PlanStats", "CompiledModel"]


@dataclass(frozen=True)
class PlanStats:
    """Size and provenance counters of one compiled plan."""

    input_shape: Tuple[int, ...]
    traced_ops: int
    steps: int
    folded: int
    pruned: int
    workspace_bytes: int

    def __str__(self) -> str:
        return (
            f"Plan(input={self.input_shape}, steps={self.steps}, "
            f"folded={self.folded}, pruned={self.pruned}, "
            f"workspace={self.workspace_bytes / 1024:.1f} KiB)"
        )


class Plan:
    """One compiled forward pass, specialised to a single input shape.

    Parameters
    ----------
    steps:
        ``(kernel, input_slots, kwargs, out_slot, buffer)`` tuples in
        execution order.  ``buffer`` is the preallocated output array, or
        ``None`` for view-producing kernels.
    values:
        Slot table with constants prefilled; intermediate slots are
        overwritten on every call.
    input_slot / output_slot:
        Where the caller's array goes in and where the result comes out.

    All steps share one workspace, so executions of the same plan are
    serialised by a per-plan lock (:meth:`call`); different plans — and
    therefore different input shapes — run concurrently.  :meth:`execute`
    is the raw, unlocked replay for single-threaded callers.
    """

    def __init__(
        self,
        steps: List[Tuple],
        values: List,
        input_slot: int,
        output_slot: int,
        stats: PlanStats,
    ) -> None:
        self._steps = steps
        self._values = values
        self._input_slot = input_slot
        self._output_slot = output_slot
        # Slots rewritten on every run: the input and each step output
        # (including views of the input).  Cleared after a locked call so an
        # idle plan holds only its constants and pooled buffers, not the
        # last batch it served.
        self._transient_slots = [input_slot] + [step[3] for step in steps]
        self._exec_lock = threading.Lock()
        self.stats = stats

    def execute(self, array: np.ndarray) -> np.ndarray:
        """Run the plan; the result may alias workspace (copy to retain)."""
        values = self._values
        values[self._input_slot] = array
        for kernel, in_slots, kwargs, out_slot, buffer in self._steps:
            values[out_slot] = kernel(*[values[i] for i in in_slots], out=buffer, **kwargs)
        return values[self._output_slot]

    def call(self, array: np.ndarray) -> np.ndarray:
        """Thread-safe execution returning a fresh output copy.

        References to the caller's input (and all per-run step outputs) are
        dropped from the slot table after the run so an idle plan does not
        pin the last batch it served.
        """
        with self._exec_lock:
            result = self.execute(array).copy()
            values = self._values
            for slot in self._transient_slots:
                values[slot] = None
            return result


class CompiledModel:
    """Graph-free inference wrapper around a :class:`~repro.nn.Module`.

    The first call for each input shape traces the module's forward pass
    and compiles it to a :class:`Plan`; later calls with the same shape
    replay the plan on raw arrays.  Outputs are returned as fresh copies so
    they never alias the reused workspace.

    Weights are captured **by reference** at compile time, but constant
    folding bakes derived values (embedding lookups, learned adjacencies)
    into the plan — after mutating parameters call :meth:`recompile`.

    The plan cache is a small LRU over input shapes (``max_plans``): a
    micro-batcher produces coalesced batches of many different sizes under
    bursty traffic, and each plan owns workspace proportional to its batch,
    so an unbounded cache would grow memory for the life of the service.

    Example
    -------
    >>> compiled = CompiledModel(model)          # switches model to eval
    >>> forecast = compiled(window[None])        # (1, T', N) ndarray
    >>> assert np.allclose(forecast, model(Tensor(window[None])).data)
    """

    def __init__(self, module, fold_constants: bool = True, max_plans: int = 16) -> None:
        if max_plans <= 0:
            raise ValueError("max_plans must be positive")
        module.eval()
        self._module = module
        self._fold_constants = fold_constants
        self._max_plans = max_plans
        self._plans: "OrderedDict[Tuple[int, ...], Plan]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def module(self):
        """The wrapped module (left in evaluation mode)."""
        return self._module

    def __call__(self, x) -> np.ndarray:
        """Forward ``x`` (Tensor or array-like); returns a fresh ndarray.

        The model-wide lock only guards plan-cache lookups and inserts —
        never a compile and never an execution — so requests for already
        compiled shapes proceed while a new shape compiles, and requests
        with different batch shapes run concurrently (their workspaces are
        disjoint; same-shape requests serialise on the plan's own lock).
        """
        array = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
        return self._get_or_compile(array).call(array)

    def _get_or_compile(self, array: np.ndarray) -> Plan:
        """Fetch the plan for ``array.shape``, compiling outside the cache lock.

        Two threads racing on the same fresh shape may both compile; the
        first insert wins and the duplicate is dropped — wasted work, never
        wrong results, and no stall for shapes that are already cached.
        """
        with self._lock:
            plan = self._plans.get(array.shape)
            if plan is not None:
                self._plans.move_to_end(array.shape)
                return plan
        plan = self._compile(array)
        with self._lock:
            existing = self._plans.get(array.shape)
            if existing is not None:
                self._plans.move_to_end(array.shape)
                return existing
            self._plans[array.shape] = plan
            while len(self._plans) > self._max_plans:
                self._plans.popitem(last=False)
            return plan

    # ------------------------------------------------------------------
    def _compile(self, array: np.ndarray) -> Plan:
        from .compiler import compile_plan

        return compile_plan(self._module, array, fold_constants=self._fold_constants)

    def compile_for(self, example) -> PlanStats:
        """Eagerly compile a plan for ``example``'s shape; returns its stats."""
        array = example.data if isinstance(example, Tensor) else np.asarray(example, dtype=np.float64)
        return self._get_or_compile(array).stats

    def recompile(self) -> None:
        """Drop all cached plans (required after parameter updates)."""
        with self._lock:
            self._plans.clear()

    def plan_stats(self) -> List[PlanStats]:
        """Stats of every cached plan (one per input shape seen)."""
        with self._lock:
            return [plan.stats for plan in self._plans.values()]

    def __repr__(self) -> str:
        with self._lock:
            shapes = sorted(self._plans)
        return f"CompiledModel({type(self._module).__name__}, plans={shapes})"
