"""Plan execution: flat kernel replay over preallocated workspace buffers.

A :class:`Plan` is the compiled form of one module forward pass for one
input shape: a linear sequence of kernel calls (no graph walking — the
trace order is already topological) over a slot table holding the input,
the captured constants and the intermediate buffers.

Per call, the engine pays one Python-level dispatch per surviving kernel
step and **zero allocations for intermediates**: every non-view step writes
into a buffer allocated once at compile time and reused across calls
(view steps — reshape, transpose, slicing — produce zero-copy views and
need no buffer at all).  This is the difference to an autograd forward
under ``no_grad``, which still builds a ``Tensor``, a parent tuple and a
gradient-closure tuple per op and allocates every intermediate array.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..tensor import Tensor
from ..tensor import kernels as K

__all__ = [
    "Plan",
    "PlanCacheInfo",
    "PlanSpec",
    "PlanStats",
    "StepSpec",
    "bind_plan",
    "CompiledModel",
    "BUCKETS_ENV_VAR",
    "DEFAULT_BUCKET_CAP",
    "PRECISION_ENV_VAR",
    "PRECISIONS",
    "THREADS_ENV_VAR",
    "WORKSPACE_ALIGN",
    "plan_workspace_nbytes",
    "resolve_bucket_cap",
    "resolve_precision",
    "resolve_thread_count",
    "bucket_batch_size",
    "pad_batch_to_bucket",
]

#: Environment variable controlling batch bucketing (see
#: :func:`resolve_bucket_cap`).
BUCKETS_ENV_VAR = "REPRO_RUNTIME_BUCKETS"

#: Largest padded batch by default; batches beyond it compile exact plans.
DEFAULT_BUCKET_CAP = 1024

#: Environment variable selecting the default execution precision (see
#: :func:`resolve_precision`).
PRECISION_ENV_VAR = "REPRO_RUNTIME_PRECISION"

#: Supported precision policies: plan execution dtypes by policy name.
PRECISIONS = ("float64", "float32")

#: Environment variable sizing the plan-step thread pool (see
#: :func:`resolve_thread_count`).
THREADS_ENV_VAR = "REPRO_RUNTIME_THREADS"


def resolve_precision(policy: Union[None, str, np.dtype] = None) -> np.dtype:
    """Resolve a precision policy to the plan execution dtype.

    ``policy`` may be ``"float64"`` / ``"float32"`` (or the corresponding
    NumPy dtype), or ``None`` to consult the ``REPRO_RUNTIME_PRECISION``
    environment variable (defaulting to float64 — the bit-parity mode).
    """
    if policy is None:
        policy = os.environ.get(PRECISION_ENV_VAR, "").strip().lower() or "float64"
    name = np.dtype(policy).name if not isinstance(policy, str) else policy.lower()
    if name not in PRECISIONS:
        raise ValueError(
            f"unknown precision policy {policy!r}; expected one of {PRECISIONS} "
            f"(set via argument or the {PRECISION_ENV_VAR} environment variable)"
        )
    return np.dtype(name)


def resolve_thread_count(policy: Union[None, int, str] = None) -> int:
    """Resolve the plan-parallelism thread count.

    ``policy`` may be a positive integer, ``"auto"`` (one thread per
    available core) or ``None`` to consult ``REPRO_RUNTIME_THREADS`` (which
    accepts the same spellings; unset means 1).  ``1`` — the default — is
    the exact serial replay of the trace order.
    """
    if policy is None:
        raw = os.environ.get(THREADS_ENV_VAR, "").strip().lower()
        if not raw:
            return 1
        policy = raw
    if isinstance(policy, str):
        if policy.lower() == "auto":
            affinity = getattr(os, "sched_getaffinity", None)
            return max(1, len(affinity(0)) if affinity else (os.cpu_count() or 1))
        try:
            policy = int(policy)
        except ValueError:
            raise ValueError(
                f"cannot parse {THREADS_ENV_VAR}={policy!r}; expected a positive "
                "integer or 'auto'"
            ) from None
    if policy < 1:
        raise ValueError(f"thread count must be >= 1; got {policy}")
    return int(policy)


#: One process-wide pool shared by every plan: island tasks are short, so a
#: per-plan (let alone per-call) executor would dominate the win.  Grown on
#: demand to the largest thread count any model asked for.
_POOL_LOCK = threading.Lock()
_POOL: Optional[ThreadPoolExecutor] = None
_POOL_WORKERS = 0


def _shared_pool(threads: int) -> ThreadPoolExecutor:
    global _POOL, _POOL_WORKERS
    # The replaying thread runs one island itself, so N-way parallelism
    # needs N - 1 pool workers.
    workers = max(1, threads - 1)
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-runtime"
            )
            _POOL_WORKERS = workers
        elif _POOL_WORKERS < workers:
            # Grow the ONE pool in place instead of replacing it: executors
            # spawn threads lazily on submit up to ``_max_workers``, so
            # raising the cap is enough — the next submits add workers.  A
            # replacement pool would orphan the old one (a concurrently
            # executing plan may still hold it, and submitting to a
            # shut-down executor raises), stranding an idle thread stack
            # per grow cycle until GC finalisation; growing in place keeps
            # the process at exactly one island pool whose thread count is
            # bounded by the largest width ever requested.
            _POOL._max_workers = workers
            _POOL_WORKERS = workers
        return _POOL


def resolve_bucket_cap(policy: Union[None, bool, int] = None) -> Optional[int]:
    """Resolve the batch-bucketing policy to a bucket cap (or ``None``).

    ``policy`` may be ``True`` (bucketing on, default cap), ``False``
    (disabled), a positive integer (cap on the largest padded bucket) or
    ``None`` to consult the ``REPRO_RUNTIME_BUCKETS`` environment variable,
    which accepts the same spellings: unset/empty or ``on`` for the
    default, ``off``/``exact``/``none``/``0`` to disable, or an integer cap.
    """
    if policy is None:
        raw = os.environ.get(BUCKETS_ENV_VAR, "").strip().lower()
        if raw in ("", "on", "true"):
            return DEFAULT_BUCKET_CAP
        if raw in ("off", "exact", "none", "false", "0"):
            return None
        try:
            policy = int(raw)
        except ValueError:
            raise ValueError(
                f"cannot parse {BUCKETS_ENV_VAR}={raw!r}; expected an integer "
                "cap, 'on', or one of off/exact/none/0"
            ) from None
    if policy is True:
        return DEFAULT_BUCKET_CAP
    if policy is False:
        return None
    if policy <= 0:
        return None
    return int(policy)


def bucket_batch_size(batch: int, cap: Optional[int]) -> int:
    """The padded batch size served for ``batch`` under bucket cap ``cap``.

    Batches are rounded up to the next power of two (clamped to the cap),
    so a ragged stream of sizes compiles O(log cap) plans instead of one
    per observed size.  Batches above the cap — and any batch when
    bucketing is disabled — keep their exact size.
    """
    if cap is None or batch <= 1 or batch > cap:
        return batch
    return min(1 << (batch - 1).bit_length(), cap)


def pad_batch_to_bucket(array: np.ndarray, cap: Optional[int]):
    """Pad axis 0 of ``array`` up to its bucket; returns ``(array, trim)``.

    ``trim`` is the original batch size when padding happened, ``None``
    when the array is served as-is.  Padding rows replicate the first row:
    replicated rows run the exact arithmetic of a real row, so they can
    never produce the NaN/Inf a zero row might (e.g. through a division),
    and the caller discards them via ``trim`` anyway.  Models must treat
    batch rows independently — true of every forward in this library
    (evaluation mode uses running statistics, and no model reduces over
    axis 0).

    Edge shapes are served without padding: an empty batch has no row to
    replicate (:class:`CompiledModel` short-circuits it before reaching
    here), and a batch above the cap keeps its exact size.
    """
    if array.ndim == 0 or array.shape[0] == 0:
        return array, None
    batch = array.shape[0]
    target = bucket_batch_size(batch, cap)
    if target == batch:
        return array, None
    padded = np.empty((target,) + array.shape[1:], dtype=array.dtype)
    padded[:batch] = array
    padded[batch:] = array[0]
    return padded, batch


@dataclass(frozen=True)
class PlanStats:
    """Size and provenance counters of one compiled plan."""

    input_shape: Tuple[int, ...]
    traced_ops: int
    steps: int
    folded: int
    pruned: int
    workspace_bytes: int
    #: Step count after folding/pruning but before elementwise-chain fusion.
    steps_unfused: int = 0
    #: Length of every fused chain (sorted); empty when fusion was off or
    #: found nothing.
    fused_chain_lengths: Tuple[int, ...] = field(default=())
    #: Execution precision of the plan's constants and workspace buffers.
    dtype: str = "float64"
    #: Dataflow islands (maximal serial chains) the scheduler found.
    islands: int = 0
    #: Topological wave count; islands in one wave are mutually independent.
    waves: int = 0
    #: Largest number of islands in any single wave — the plan's available
    #: parallelism (1 means the dataflow is fully serial).
    max_wave_width: int = 0

    @property
    def fused_chains(self) -> int:
        """Number of elementwise chains collapsed into fused steps."""
        return len(self.fused_chain_lengths)

    @property
    def fused_chain_histogram(self) -> Dict[int, int]:
        """Chain length -> number of chains of that length."""
        histogram: Dict[int, int] = {}
        for length in self.fused_chain_lengths:
            histogram[length] = histogram.get(length, 0) + 1
        return histogram

    def __str__(self) -> str:
        fused = ""
        if self.fused_chain_lengths:
            histogram = ", ".join(
                f"{length}x{count}" for length, count in sorted(self.fused_chain_histogram.items())
            )
            fused = f", fused={self.steps_unfused}->{self.steps} (chains {histogram})"
        schedule = ""
        if self.islands:
            schedule = (
                f", islands={self.islands} in {self.waves} waves"
                f" (width {self.max_wave_width})"
            )
        return (
            f"Plan(input={self.input_shape}, dtype={self.dtype}, steps={self.steps}, "
            f"folded={self.folded}, pruned={self.pruned}, "
            f"workspace={self.workspace_bytes / 1024:.1f} KiB{fused}{schedule})"
        )


@dataclass(frozen=True)
class PlanCacheInfo:
    """Provenance counters of a :class:`CompiledModel`'s plan cache.

    ``compiles`` counts plans built by tracing the module; ``artifact_loads``
    counts plans rebuilt from the artifact store without any trace/fuse/
    schedule work.  A warm-started worker therefore shows
    ``compiles == 0`` — the machine-checkable "zero retraces" contract of
    the cold-start benchmarks and the CI round-trip job.
    """

    plans: int
    compiles: int
    artifact_loads: int
    artifact_rejects: int
    artifact_saves: int
    #: Plans statically verified under ``REPRO_RUNTIME_VERIFY=1`` (one per
    #: fresh compile while the gate is on; artifact loads verify in the
    #: store — see :class:`~repro.runtime.artifacts.ArtifactStoreStats`).
    verifies: int = 0


@dataclass(frozen=True)
class StepSpec:
    """One plan step in backend-neutral, serialisable form.

    ``kwargs`` holds only plain data (scalars, tuples, ndarrays, sparse
    constants) — kernel *functions* are never stored.  Fused steps keep
    their chain as unbound ``(name, operand_refs, kwargs)`` instructions;
    :func:`bind_plan` resolves every name through
    :data:`repro.tensor.kernels.KERNELS` at bind time, which is what makes
    a plan loadable in a process that never ran the trace.
    """

    name: str
    in_slots: Tuple[int, ...]
    kwargs: Dict
    out_slot: int
    #: Shape of the step output at trace time (the buffer view shape).
    out_shape: Tuple[int, ...]
    #: Pooled workspace storage id, or ``None`` for view/alloc steps.
    storage: Optional[int] = None


@dataclass
class PlanSpec:
    """The complete, serialisable description of one compiled plan.

    Everything :class:`Plan` execution needs *except* live memory: the step
    list (with fused chains unbound), the pooled workspace layout as
    ``storage_sizes`` (storage id -> byte size; steps reference storages by
    id, so the liveness-pooled aliasing structure survives serialisation),
    the island/wave schedule as step indices, the slot-table geometry and
    the :class:`PlanStats`.  Together with the constant slot values (cast
    to the plan dtype) this rebuilds a bit-identical plan via
    :func:`bind_plan` — the foundation of the on-disk plan artifacts in
    :mod:`repro.runtime.artifacts`.
    """

    dtype: str
    input_slot: int
    output_slot: int
    num_slots: int
    #: Slots whose values are plan constants (parameters, folded values).
    const_slots: Tuple[int, ...]
    steps: List[StepSpec]
    #: storage id -> byte size of the pooled workspace allocation.
    storage_sizes: List[int]
    #: Waves -> islands -> step indices (``None`` for serial plans).
    schedule: Optional[List[List[List[int]]]]
    stats: PlanStats


#: Alignment of every pooled storage inside an externally supplied plan
#: workspace (matches the artifact pack alignment, so views stay
#: cache-line aligned wherever the buffer lives — heap or shared memory).
WORKSPACE_ALIGN = 64


def plan_workspace_nbytes(storage_sizes: Sequence[int]) -> int:
    """Bytes an external workspace must provide for one plan's storages.

    The layout is deterministic: storages are carved out in id order, each
    starting on a :data:`WORKSPACE_ALIGN` boundary — exactly what
    :func:`bind_plan` does with its ``workspace=`` argument.  Callers
    preallocating shared-memory segments size them with this.
    """
    total = 0
    for nbytes in storage_sizes:
        total += (-total) % WORKSPACE_ALIGN
        total += int(nbytes)
    return total


def bind_plan(
    spec: PlanSpec,
    values: List[Optional[np.ndarray]],
    workspace: Optional[np.ndarray] = None,
) -> "Plan":
    """Materialise a :class:`Plan` from its spec and constant slot table.

    Allocates the pooled workspace storages described by
    ``spec.storage_sizes``, views each buffered step's output into its
    assigned storage at the plan dtype, and binds every step (and fused
    chain instruction) to its kernel by name.  ``values`` must be the full
    slot table with the constants filled in (non-constant slots ``None``);
    it is used as the plan's live slot table, not copied.

    ``workspace`` — a flat ``uint8`` buffer of at least
    :func:`plan_workspace_nbytes` bytes — replaces the heap allocation:
    storages become :data:`WORKSPACE_ALIGN`-aligned views *into the given
    buffer*, so a plan can execute entirely inside a
    ``multiprocessing.shared_memory`` segment and its outputs are published
    to other processes without a copy (the process-tier hand-off in
    :mod:`repro.serving.process_tier`).  Buffer placement never changes the
    arithmetic, so a workspace-bound plan stays bit-identical to a
    heap-bound one.

    Raises :class:`KeyError` when a step names a kernel this build does not
    provide — an artifact from an incompatible library version; callers
    loading artifacts treat that as a validation failure and recompile.
    """
    if len(values) != spec.num_slots:
        raise ValueError(
            f"slot table has {len(values)} entries; plan spec expects {spec.num_slots}"
        )
    dtype = np.dtype(spec.dtype)
    if workspace is None:
        storages = [np.empty(nbytes, dtype=np.uint8) for nbytes in spec.storage_sizes]
    else:
        workspace = np.asarray(workspace)
        if workspace.ndim != 1 or workspace.dtype != np.uint8:
            raise ValueError(
                f"workspace must be a flat uint8 buffer; got {workspace.dtype} "
                f"with shape {workspace.shape}"
            )
        if not workspace.flags.writeable:
            raise ValueError(
                "workspace buffer is read-only; plan replay writes every "
                "pooled storage in place"
            )
        if not workspace.flags.c_contiguous:
            raise ValueError(
                "workspace buffer is not contiguous; the 64-byte storage "
                "carving assumes a dense byte range"
            )
        needed = plan_workspace_nbytes(spec.storage_sizes)
        if workspace.nbytes < needed:
            raise ValueError(
                f"workspace of {workspace.nbytes} bytes is smaller than the "
                f"plan's {needed}-byte storage layout "
                f"({len(spec.storage_sizes)} storages at "
                f"{WORKSPACE_ALIGN}-byte alignment)"
            )
        storages = []
        offset = 0
        for nbytes in spec.storage_sizes:
            offset += (-offset) % WORKSPACE_ALIGN
            storages.append(workspace[offset : offset + int(nbytes)])
            offset += int(nbytes)
    steps: List[Tuple] = []
    for step in spec.steps:
        if step.name not in K.KERNELS:
            raise KeyError(f"plan step names unknown kernel {step.name!r}")
        kwargs = step.kwargs
        if step.name == "fused_elementwise":
            for name, _refs, _kw in step.kwargs["chain"]:
                if name not in K.KERNELS:
                    raise KeyError(f"fused chain names unknown kernel {name!r}")
            kwargs = {
                "chain": tuple(
                    (name, K.KERNELS[name], tuple(refs), kw)
                    for name, refs, kw in step.kwargs["chain"]
                )
            }
        buffer = None
        if step.storage is not None:
            buffer = storages[step.storage].view(dtype).reshape(step.out_shape)
        steps.append((K.KERNELS[step.name], step.in_slots, kwargs, step.out_slot, buffer))
    schedule = None
    if spec.schedule is not None:
        schedule = [
            [[steps[index] for index in island] for island in wave]
            for wave in spec.schedule
        ]
    plan = Plan(
        steps,
        values,
        spec.input_slot,
        spec.output_slot,
        spec.stats,
        dtype=dtype,
        schedule=schedule,
    )
    plan.spec = spec
    return plan


class Plan:
    """One compiled forward pass, specialised to a single input shape.

    Parameters
    ----------
    steps:
        ``(kernel, input_slots, kwargs, out_slot, buffer)`` tuples in
        execution order.  ``buffer`` is the preallocated output array, or
        ``None`` for view-producing kernels.
    values:
        Slot table with constants prefilled; intermediate slots are
        overwritten on every call.
    input_slot / output_slot:
        Where the caller's array goes in and where the result comes out.

    All steps share one workspace, so executions of the same plan are
    serialised by a per-plan lock (:meth:`call`); different plans — and
    therefore different input shapes — run concurrently.  :meth:`execute`
    is the raw, unlocked replay for single-threaded callers.

    ``dtype`` is the plan's execution precision; ``schedule`` the compiler's
    island/wave partition (same step tuples, grouped).  With ``threads > 1``
    :meth:`call` replays wave by wave, same-wave islands spread over the
    shared pool — every step still runs the same kernel on the same operand
    values, so the result is bit-identical to the serial replay.
    """

    def __init__(
        self,
        steps: List[Tuple],
        values: List,
        input_slot: int,
        output_slot: int,
        stats: PlanStats,
        dtype=np.float64,
        schedule: Optional[List[List[List[Tuple]]]] = None,
    ) -> None:
        self._steps = steps
        self._values = values
        self._input_slot = input_slot
        self._output_slot = output_slot
        self.dtype = np.dtype(dtype)
        # Waves holding more than one island are the only place parallelism
        # can help; single-island waves run inline either way.
        self._schedule = schedule
        self._parallelisable = schedule is not None and any(
            len(wave) > 1 for wave in schedule
        )
        # Slots rewritten on every run: the input and each step output
        # (including views of the input).  Cleared after a locked call so an
        # idle plan holds only its constants and pooled buffers, not the
        # last batch it served.
        self._transient_slots = [input_slot] + [step[3] for step in steps]
        self._exec_lock = threading.Lock()
        self.stats = stats
        #: The serialisable :class:`PlanSpec` this plan was bound from
        #: (set by the compiler / :func:`bind_plan`); what
        #: :mod:`repro.runtime.artifacts` persists.
        self.spec: Optional[PlanSpec] = None
        #: Set on artifact-loaded plans that have not yet served a
        #: parity-validated result; :class:`CompiledModel` checks row 0 of
        #: the first result against the autograd forward *before returning
        #: it* and clears the flag (or rejects the plan and recompiles).
        #: Deferring the check onto the first real result keeps the warm
        #: start to one plan execution instead of two.
        self.pending_parity = False

    def constants(self) -> Dict[int, np.ndarray]:
        """Constant slot values (already cast to the plan dtype), by slot.

        Constants survive the per-call transient-slot clearing, so this is
        valid at any time; it is the value half of what an artifact saves
        (the structure half being :attr:`spec`).
        """
        if self.spec is None:
            raise ValueError("plan carries no spec; it was not built by the compiler")
        return {slot: self._values[slot] for slot in self.spec.const_slots}

    def _run_island(self, island: List[Tuple]) -> None:
        values = self._values
        for kernel, in_slots, kwargs, out_slot, buffer in island:
            values[out_slot] = kernel(*[values[i] for i in in_slots], out=buffer, **kwargs)

    def execute(self, array: np.ndarray, threads: int = 1) -> np.ndarray:
        """Run the plan; the result may alias workspace (copy to retain).

        ``threads == 1`` replays the exact serial trace order.  With more
        threads, independent islands of each wave run concurrently on the
        shared pool (the caller executes one island itself); waves are
        barriers, which together with the compiler's wave-aware buffer
        pooling makes the replay race-free.  Kernels release the GIL inside
        NumPy/BLAS, so same-wave islands genuinely overlap on multi-core
        hosts.
        """
        values = self._values
        values[self._input_slot] = array
        if threads <= 1 or not self._parallelisable:
            for kernel, in_slots, kwargs, out_slot, buffer in self._steps:
                values[out_slot] = kernel(*[values[i] for i in in_slots], out=buffer, **kwargs)
            return values[self._output_slot]
        pool = _shared_pool(threads)
        for wave in self._schedule:
            if len(wave) == 1:
                self._run_island(wave[0])
                continue
            futures = [pool.submit(self._run_island, island) for island in wave[1:]]
            self._run_island(wave[0])
            for future in futures:
                future.result()  # barrier; re-raises island errors
        return values[self._output_slot]

    def call(self, array: np.ndarray, trim: Optional[int] = None, threads: int = 1) -> np.ndarray:
        """Thread-safe execution returning a fresh float64 output copy.

        ``trim`` keeps only the first ``trim`` rows of the result — the
        slice-back half of batch bucketing, taken before the copy so a
        padded batch never materialises its padding rows twice.  A
        reduced-precision plan casts its output back to float64 here (the
        exit half of the precision policy; the cast replaces the copy, so
        it is free).

        References to the caller's input (and all per-run step outputs) are
        dropped from the slot table after the run so an idle plan does not
        pin the last batch it served.
        """
        with self._exec_lock:
            try:
                # The wave barrier (future.result) runs under the workspace
                # lock on purpose: the lock *is* the single-workspace
                # exclusivity that replay needs end to end, and island
                # workers never take it back.
                # lint: disable=L-BLOCK
                result = self.execute(array, threads=threads)
                if trim is not None:
                    result = result[:trim]
                # astype always copies here, so both branches detach the
                # result from the reused workspace.
                result = (
                    result.copy()
                    if result.dtype == np.float64
                    else result.astype(np.float64)
                )
            finally:
                values = self._values
                for slot in self._transient_slots:
                    values[slot] = None
            return result


class _SlicedForward:
    """Trace adapter producing ``module(x)[..., lo:hi]`` — the node-sharded plan.

    Slicing the traced output keeps every upstream step bit-identical to
    the full forward (the slice is a zero-copy view of the same computed
    array) while the plan only ever copies the owned columns out of the
    workspace — the contract that lets a sharded service concatenate
    per-shard outputs back into exactly the single-worker result.
    """

    __slots__ = ("_module", "_lo", "_hi")

    def __init__(self, module, lo: int, hi: int) -> None:
        self._module = module
        self._lo = lo
        self._hi = hi

    @property
    def training(self) -> bool:
        return getattr(self._module, "training", False)

    def __call__(self, x):
        return self._module(x)[..., self._lo : self._hi]


class CompiledModel:
    """Graph-free inference wrapper around a :class:`~repro.nn.Module`.

    The first call for each input shape traces the module's forward pass
    and compiles it to a :class:`Plan`; later calls with the same shape
    replay the plan on raw arrays.  Outputs are returned as fresh copies so
    they never alias the reused workspace.

    Weights are captured **by reference** at compile time, but constant
    folding bakes derived values (embedding lookups, learned adjacencies)
    into the plan — after mutating parameters call :meth:`recompile`.

    The plan cache is a small LRU over input shapes (``max_plans``): a
    micro-batcher produces coalesced batches of many different sizes under
    bursty traffic, and each plan owns workspace proportional to its batch,
    so an unbounded cache would grow memory for the life of the service.
    **Batch bucketing** bounds what that cache has to hold: ragged batches
    are padded along axis 0 up to the next power-of-two bucket (by
    replicating the first row — always finite, and sliced back off the
    output), so the LRU sees O(log max_batch) distinct shapes instead of
    one per observed size.  Disable or cap it with ``bucket_batches`` or
    the ``REPRO_RUNTIME_BUCKETS`` environment variable (see
    :func:`resolve_bucket_cap`); batches above the cap serve exact-shape
    plans.

    Two execution knobs (see ``docs/runtime.md`` §Precision & parallelism):
    ``precision`` selects the plans' execution dtype (``"float64"`` — the
    default, bit-identical to autograd — or ``"float32"`` for ~2x memory
    bandwidth; overridable per call), and ``threads`` replays independent
    dataflow islands of a plan concurrently (``"auto"`` or an integer;
    default 1 = exact serial replay).  Both default to the
    ``REPRO_RUNTIME_PRECISION`` / ``REPRO_RUNTIME_THREADS`` environment
    variables.

    **Plan artifacts** (``artifact_dir=``, a directory or a shared
    :class:`~repro.runtime.artifacts.ArtifactStore`) make compiles durable:
    plan-cache misses first try to rebuild the plan from a stored artifact
    (trace-hash keyed, checksum- and parity-validated, falling back to
    compiling on any mismatch) and fresh compiles are written through, so a
    restarted process — or the N workers of a sharded service — trace each
    shape once ever instead of once per process.  See
    ``docs/runtime.md`` §Plan artifacts.

    Example
    -------
    >>> compiled = CompiledModel(model)          # switches model to eval
    >>> forecast = compiled(window[None])        # (1, T', N) ndarray
    >>> assert np.allclose(forecast, model(Tensor(window[None])).data)
    """

    def __init__(
        self,
        module,
        fold_constants: bool = True,
        max_plans: int = 16,
        fuse: bool = True,
        bucket_batches: Union[None, bool, int] = None,
        output_slice: Optional[Tuple[int, int]] = None,
        precision: Union[None, str, np.dtype] = None,
        threads: Union[None, int, str] = None,
        artifact_dir=None,
    ) -> None:
        if max_plans <= 0:
            raise ValueError("max_plans must be positive")
        if output_slice is not None:
            lo, hi = (int(bound) for bound in output_slice)
            if not 0 <= lo < hi:
                raise ValueError(f"output_slice must satisfy 0 <= lo < hi; got {output_slice}")
            output_slice = (lo, hi)
        module.eval()
        self._module = module
        self._fold_constants = fold_constants
        self._fuse = fuse
        self._bucket_cap = resolve_bucket_cap(bucket_batches)
        self._output_slice = output_slice
        self._dtype = resolve_precision(precision)
        self._threads = resolve_thread_count(threads)
        self._max_plans = max_plans
        self._plans: "OrderedDict[Tuple, Plan]" = OrderedDict()
        # Per-trailing-shape output shapes learned from the first empty-batch
        # probe, so repeated B == 0 calls answer without running the model.
        self._empty_output_shapes: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        self._lock = threading.Lock()
        self._artifacts = self._as_store(artifact_dir)
        # Weights content hash keying artifacts; computed lazily, dropped on
        # recompile() (the declared way to pick up mutated parameters).
        self._weights_fp: Optional[str] = None
        self._compiles = 0
        self._artifact_loads = 0
        self._artifact_rejects = 0
        self._artifact_saves = 0
        self._verifies = 0

    @staticmethod
    def _as_store(artifact_dir):
        if artifact_dir is None:
            return None
        from .artifacts import ArtifactStore

        if isinstance(artifact_dir, ArtifactStore):
            return artifact_dir
        return ArtifactStore(artifact_dir)

    @property
    def module(self):
        """The wrapped module (left in evaluation mode)."""
        return self._module

    @property
    def output_slice(self) -> Optional[Tuple[int, int]]:
        """``(lo, hi)`` bounds on the output's trailing node axis, if sharded."""
        return self._output_slice

    @property
    def precision(self) -> str:
        """Default execution precision policy (``"float64"`` / ``"float32"``)."""
        return self._dtype.name

    @property
    def threads(self) -> int:
        """Thread count used to replay independent plan islands (1 = serial)."""
        return self._threads

    @property
    def bucket_cap(self) -> Optional[int]:
        """Largest padded batch bucket (``None`` when bucketing is disabled)."""
        return self._bucket_cap

    def _plan_key(self, shape: Tuple[int, ...], dtype: np.dtype) -> Tuple:
        """Plan-cache key: input shape, execution dtype, shard slice.

        The dtype tag keeps a float32 plan and the float64 SLA plan of the
        same batch shape disjoint (they differ in every constant and
        buffer); the slice tag keeps shard plans disjoint even if model
        wrappers are ever shared across shards.
        """
        if self._output_slice is None:
            return (shape, dtype.name)
        return (shape, dtype.name, self._output_slice)

    def _resolve_call_dtype(self, precision) -> np.dtype:
        return self._dtype if precision is None else resolve_precision(precision)

    def __call__(self, x, precision: Union[None, str, np.dtype] = None) -> np.ndarray:
        """Forward ``x`` (Tensor or array-like); returns a fresh float64 ndarray.

        ``precision`` overrides the model's default policy for this call
        only — the per-request escape hatch back to the bit-exact float64
        path (or down to float32) without a second :class:`CompiledModel`.
        The input is cast to the plan dtype on entry (a float32 input under
        a float32 policy is served zero-copy, never bounced through
        float64) and the output is cast back to float64 on exit.

        Ragged batch sizes are padded up to their bucket and the output
        sliced back, so callers (micro-batcher, serving paths) can pass any
        batch through unchanged.  The model-wide lock only guards
        plan-cache lookups and inserts — never a compile and never an
        execution — so requests for already compiled shapes proceed while a
        new shape compiles, and requests with different batch shapes run
        concurrently (their workspaces are disjoint; same-shape requests
        serialise on the plan's own lock).

        Edge shapes are hardened rather than special plans: an empty batch
        (``B == 0``) replays the single-row bucket plan on a probe row and
        trims everything back off — tracing a degenerate ``(0, ...)`` shape
        or letting it churn the plan LRU would buy nothing — and a batch
        above the bucket cap runs an exact-shape plan (see
        :func:`pad_batch_to_bucket`).
        """
        dtype = self._resolve_call_dtype(precision)
        array = x.data if isinstance(x, Tensor) else np.asarray(x)
        if array.dtype != dtype:
            array = array.astype(dtype)
        if array.ndim > 0 and array.shape[0] == 0:
            tail = array.shape[1:]
            known = self._empty_output_shapes.get(tail)
            if known is not None:
                return np.empty((0,) + known, dtype=np.float64)
            probe = np.zeros((1,) + tail, dtype=dtype)
            result = self._get_or_compile(probe).call(probe, trim=0, threads=self._threads)
            self._empty_output_shapes[tail] = result.shape[1:]
            return result
        array, trim = self._pad_to_bucket(array)
        plan = self._get_or_compile(array)
        result = plan.call(array, trim=trim, threads=self._threads)
        if plan.pending_parity:
            result = self._confirm_parity(plan, array, result, trim)
        return result

    def _pad_to_bucket(self, array: np.ndarray) -> Tuple[np.ndarray, Optional[int]]:
        """Pad axis 0 up to this model's bucket; see :func:`pad_batch_to_bucket`."""
        return pad_batch_to_bucket(array, self._bucket_cap)

    def _get_or_compile(self, array: np.ndarray) -> Plan:
        """Fetch the plan for ``array.shape``, compiling outside the cache lock.

        The array's dtype *is* the plan dtype (the caller cast on entry).
        Two threads racing on the same fresh shape may both compile; the
        first insert wins and the duplicate is dropped — wasted work, never
        wrong results, and no stall for shapes that are already cached.

        With an artifact store attached, a cache miss first tries to rebuild
        the plan from a stored artifact (validated by trace hash and
        integrity checksum here, plus a one-row parity spot check against
        the autograd forward on the first result it serves — any failure
        falls back to compiling), and every freshly compiled plan is written
        through to the store so sibling workers and future processes skip
        the trace.
        """
        key = self._plan_key(array.shape, array.dtype)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
        plan = self._load_artifact(array) if self._artifacts is not None else None
        if plan is None:
            plan = self._compile(array)
            with self._lock:
                self._compiles += 1
            if self._artifacts is not None:
                self._publish(plan)
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                self._plans.move_to_end(key)
                return existing
            self._plans[key] = plan
            while len(self._plans) > self._max_plans:
                self._plans.popitem(last=False)
            return plan

    # ------------------------------------------------------------------
    def _compile(self, array: np.ndarray) -> Plan:
        from .compiler import compile_plan

        module = self._module
        if self._output_slice is not None:
            module = _SlicedForward(module, *self._output_slice)
        plan = compile_plan(
            module,
            array,
            fold_constants=self._fold_constants,
            fuse=self._fuse,
            dtype=array.dtype,
            parallel=self._threads > 1,
        )
        from .verify import verify_enabled

        if verify_enabled():
            # A finding on a fresh compile is a compiler bug, and there is
            # no safe fallback — refuse to serve the plan.
            from .verify import VerifyError, verify_plan

            report = verify_plan(plan)
            with self._lock:
                self._verifies += 1
            if not report.ok:
                raise VerifyError(report)
        return plan

    # ------------------------------------------------------------------
    # Plan artifacts (see repro.runtime.artifacts and docs/runtime.md)
    # ------------------------------------------------------------------
    @property
    def artifact_store(self):
        """The attached :class:`~repro.runtime.artifacts.ArtifactStore`, if any."""
        return self._artifacts

    def _trace_key(self, shape: Tuple[int, ...], dtype: np.dtype) -> str:
        """Artifact key for one trace; caches the weights fingerprint."""
        from .artifacts import trace_hash, weights_fingerprint

        with self._lock:
            fingerprint = self._weights_fp
        if fingerprint is None:
            fingerprint = weights_fingerprint(self._module)
            with self._lock:
                self._weights_fp = fingerprint
        return trace_hash(
            self._module,
            shape,
            dtype,
            output_slice=self._output_slice,
            fold_constants=self._fold_constants,
            fuse=self._fuse,
            parallel=self._threads > 1,
            bucket_cap=self._bucket_cap,
            weights=fingerprint,
        )

    def _artifact_meta(self) -> Dict[str, str]:
        module = self._module
        return {
            "module": f"{type(module).__module__}.{type(module).__qualname__}",
            "weights": self._weights_fp or "",
        }

    def _confirm_parity(self, plan: Plan, array: np.ndarray, result: np.ndarray, trim) -> np.ndarray:
        """Validate the first result served by an artifact-loaded plan.

        Row 0 of ``result`` is compared against the autograd forward of
        ``array``'s row 0 *before the result is returned* — an unvalidated
        artifact never answers a request — and piggybacking on the result
        the request computed anyway keeps the warm start to one plan
        execution plus one 1-row autograd forward.  On a mismatch the plan
        is discarded (the store entry with it) and the request is served by
        a fresh compile.

        Float64 plans must agree to near machine precision; float32 plans
        to the documented tolerance contract (rtol = atol = 1e-4).  The
        hair of float64 tolerance is deliberate: BLAS may pick a different
        (equally valid) accumulation order for the 1-row autograd GEMM than
        for the batched plan kernel.  Real corruption (wrong constants,
        stale weights smuggled past the hash) is orders of magnitude
        outside either band.
        """
        if result.shape[0] == 0:
            return result  # empty-batch probe: nothing to check, stay pending
        row = np.ascontiguousarray(array[:1], dtype=np.float64)
        module = self._module
        if self._output_slice is not None:
            module = _SlicedForward(module, *self._output_slice)
        expected = module(Tensor(row)).data[0]
        got = result[0]
        if plan.dtype == np.float64:
            tolerance = dict(rtol=1e-9, atol=1e-12)
        else:
            tolerance = dict(rtol=1e-4, atol=1e-4)
        if got.shape == expected.shape and bool(
            np.allclose(got, expected, equal_nan=True, **tolerance)
        ):
            plan.pending_parity = False
            return result
        # Rejected: drop the plan and its artifact, serve a fresh compile.
        key = self._plan_key(array.shape, array.dtype)
        with self._lock:
            self._artifact_rejects += 1
            self._artifact_loads -= 1
            if self._plans.get(key) is plan:
                del self._plans[key]
        if self._artifacts is not None:
            self._artifacts.forget(self._trace_key(array.shape, array.dtype))
        fresh = self._compile(array)
        with self._lock:
            self._compiles += 1
        if self._artifacts is not None:
            self._publish(fresh)
        with self._lock:
            if key not in self._plans:
                self._plans[key] = fresh
                while len(self._plans) > self._max_plans:
                    self._plans.popitem(last=False)
        return fresh.call(array, trim=trim, threads=self._threads)

    def _load_artifact(self, array: np.ndarray) -> Optional[Plan]:
        """Rebuild the plan for ``array`` from the store, or ``None``.

        Every validation failure — unreadable/corrupted/stale file, unknown
        kernel name, shape/dtype mismatch — lands here as a rejection: the
        bad entry is dropped from the store's memo and the caller compiles
        instead.  Artifacts accelerate, never gate.  The surviving plan is
        still marked :attr:`Plan.pending_parity`: row 0 of the first result
        it computes is checked against the autograd forward before being
        served (see :meth:`_confirm_parity`), which catches corruption the
        structural checks cannot — without a throwaway warm-up execution.
        """
        from .artifacts import ArtifactError

        key = self._trace_key(array.shape, array.dtype)
        try:
            loaded = self._artifacts.load(key)
            if loaded is None:
                return None
            spec, values, _meta = loaded
            if spec.dtype != array.dtype.name or tuple(spec.stats.input_shape) != array.shape:
                raise ArtifactError(
                    f"artifact {key} describes shape {spec.stats.input_shape} dtype "
                    f"{spec.dtype}; requested {array.shape} {array.dtype.name}"
                )
            plan = bind_plan(spec, values)
        except (ArtifactError, KeyError, ValueError):
            with self._lock:
                self._artifact_rejects += 1
            self._artifacts.forget(key)
            return None
        plan.pending_parity = True
        with self._lock:
            self._artifact_loads += 1
        return plan

    def _publish(self, plan: Plan) -> None:
        """Write a freshly compiled plan through to the attached store."""
        from .artifacts import ArtifactError

        if plan.spec is None:
            return
        key = self._trace_key(plan.spec.stats.input_shape, np.dtype(plan.spec.dtype))
        try:
            self._artifacts.save(key, plan.spec, plan.constants(), meta=self._artifact_meta())
        except ArtifactError:
            return  # plan kwargs this store cannot serialise; fast-path unavailable
        with self._lock:
            self._artifact_saves += 1

    def save_artifacts(self, path=None) -> List:
        """Persist every cached plan as an on-disk artifact.

        ``path`` may be a directory or an
        :class:`~repro.runtime.artifacts.ArtifactStore`; omitted, the store
        attached at construction (``artifact_dir=``) is used.  Returns the
        written paths.  This is the AOT half of warm starts: compile (or
        :meth:`compile_for`) the shapes you serve, save, and any fresh
        process pointed at the same directory binds the plans without a
        single trace.
        """
        store = self._as_store(path) if path is not None else self._artifacts
        if store is None:
            raise ValueError(
                "no artifact store: pass save_artifacts(path) or construct "
                "the model with artifact_dir="
            )
        with self._lock:
            plans = list(self._plans.values())
        written = []
        for plan in plans:
            if plan.spec is None:
                continue
            key = self._trace_key(plan.spec.stats.input_shape, np.dtype(plan.spec.dtype))
            result = store.save(key, plan.spec, plan.constants(), meta=self._artifact_meta())
            with self._lock:
                self._artifact_saves += 1
            if result is not None:
                written.append(result)
        return written

    def cache_info(self) -> PlanCacheInfo:
        """Plan-cache provenance counters (see :class:`PlanCacheInfo`)."""
        with self._lock:
            return PlanCacheInfo(
                plans=len(self._plans),
                compiles=self._compiles,
                artifact_loads=self._artifact_loads,
                artifact_rejects=self._artifact_rejects,
                artifact_saves=self._artifact_saves,
                verifies=self._verifies,
            )

    def compile_for(self, example, precision: Union[None, str, np.dtype] = None) -> PlanStats:
        """Eagerly compile the plan that would serve ``example``'s shape.

        The example is bucketed and precision-cast exactly like a live
        request, so the returned stats describe the plan requests of this
        size (and policy) will hit.
        """
        dtype = self._resolve_call_dtype(precision)
        array = example.data if isinstance(example, Tensor) else np.asarray(example)
        if array.dtype != dtype:
            array = array.astype(dtype)
        array, _ = self._pad_to_bucket(array)
        return self._get_or_compile(array).stats

    def artifact_key(self, shape: Tuple[int, ...], precision: Union[None, str, np.dtype] = None) -> str:
        """The artifact trace hash serving an (already bucketed) input shape.

        This is the name under which :meth:`save_artifacts` / the
        write-through publish stores the plan — the lookup handle a
        *different process* (a forked shard worker) uses to bind the same
        plan from a shared :class:`~repro.runtime.artifacts.ArtifactStore`
        without ever seeing this model object.
        """
        dtype = self._resolve_call_dtype(precision)
        return self._trace_key(tuple(int(dim) for dim in shape), dtype)

    def ensure_validated(self, example, precision: Union[None, str, np.dtype] = None) -> PlanStats:
        """Ensure a parity-confirmed plan exists for ``example``'s shape.

        Like :meth:`compile_for`, but an artifact-loaded plan is also taken
        through its deferred row-0 parity spot check here (executing the
        example once), instead of on the first live request.  The process
        tier calls this before telling worker processes to bind a key: a
        child replays plans blindly, so every artifact it may bind must
        already be spot-checked — or rejected and republished — by the
        parent.
        """
        dtype = self._resolve_call_dtype(precision)
        array = example.data if isinstance(example, Tensor) else np.asarray(example)
        if array.dtype != dtype:
            array = array.astype(dtype)
        array, _ = self._pad_to_bucket(array)
        plan = self._get_or_compile(array)
        if plan.pending_parity:
            probe = np.ascontiguousarray(array)
            result = plan.call(probe, trim=None, threads=self._threads)
            self._confirm_parity(plan, probe, result, None)
            # A failed check replaced the plan (and its artifact) with a
            # fresh compile; re-fetch whichever plan now serves the shape.
            plan = self._get_or_compile(array)
        return plan.stats

    def recompile(self) -> None:
        """Drop all cached plans (required after parameter updates)."""
        with self._lock:
            self._plans.clear()
            self._empty_output_shapes.clear()
            # Weights changed (that is what recompile signals), so the old
            # fingerprint — and any artifact keyed by it — no longer applies.
            self._weights_fp = None

    def plan_stats(self) -> List[PlanStats]:
        """Stats of every cached plan (one per input shape seen)."""
        with self._lock:
            return [plan.stats for plan in self._plans.values()]

    def __repr__(self) -> str:
        with self._lock:
            shapes = sorted(self._plans)
        return f"CompiledModel({type(self._module).__name__}, plans={shapes})"
