"""Plan execution: flat kernel replay over preallocated workspace buffers.

A :class:`Plan` is the compiled form of one module forward pass for one
input shape: a linear sequence of kernel calls (no graph walking — the
trace order is already topological) over a slot table holding the input,
the captured constants and the intermediate buffers.

Per call, the engine pays one Python-level dispatch per surviving kernel
step and **zero allocations for intermediates**: every non-view step writes
into a buffer allocated once at compile time and reused across calls
(view steps — reshape, transpose, slicing — produce zero-copy views and
need no buffer at all).  This is the difference to an autograd forward
under ``no_grad``, which still builds a ``Tensor``, a parent tuple and a
gradient-closure tuple per op and allocates every intermediate array.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor

__all__ = [
    "Plan",
    "PlanStats",
    "CompiledModel",
    "BUCKETS_ENV_VAR",
    "DEFAULT_BUCKET_CAP",
    "resolve_bucket_cap",
    "bucket_batch_size",
    "pad_batch_to_bucket",
]

#: Environment variable controlling batch bucketing (see
#: :func:`resolve_bucket_cap`).
BUCKETS_ENV_VAR = "REPRO_RUNTIME_BUCKETS"

#: Largest padded batch by default; batches beyond it compile exact plans.
DEFAULT_BUCKET_CAP = 1024


def resolve_bucket_cap(policy: Union[None, bool, int] = None) -> Optional[int]:
    """Resolve the batch-bucketing policy to a bucket cap (or ``None``).

    ``policy`` may be ``True`` (bucketing on, default cap), ``False``
    (disabled), a positive integer (cap on the largest padded bucket) or
    ``None`` to consult the ``REPRO_RUNTIME_BUCKETS`` environment variable,
    which accepts the same spellings: unset/empty or ``on`` for the
    default, ``off``/``exact``/``none``/``0`` to disable, or an integer cap.
    """
    if policy is None:
        raw = os.environ.get(BUCKETS_ENV_VAR, "").strip().lower()
        if raw in ("", "on", "true"):
            return DEFAULT_BUCKET_CAP
        if raw in ("off", "exact", "none", "false", "0"):
            return None
        try:
            policy = int(raw)
        except ValueError:
            raise ValueError(
                f"cannot parse {BUCKETS_ENV_VAR}={raw!r}; expected an integer "
                "cap, 'on', or one of off/exact/none/0"
            ) from None
    if policy is True:
        return DEFAULT_BUCKET_CAP
    if policy is False:
        return None
    if policy <= 0:
        return None
    return int(policy)


def bucket_batch_size(batch: int, cap: Optional[int]) -> int:
    """The padded batch size served for ``batch`` under bucket cap ``cap``.

    Batches are rounded up to the next power of two (clamped to the cap),
    so a ragged stream of sizes compiles O(log cap) plans instead of one
    per observed size.  Batches above the cap — and any batch when
    bucketing is disabled — keep their exact size.
    """
    if cap is None or batch <= 1 or batch > cap:
        return batch
    return min(1 << (batch - 1).bit_length(), cap)


def pad_batch_to_bucket(array: np.ndarray, cap: Optional[int]):
    """Pad axis 0 of ``array`` up to its bucket; returns ``(array, trim)``.

    ``trim`` is the original batch size when padding happened, ``None``
    when the array is served as-is.  Padding rows replicate the first row:
    replicated rows run the exact arithmetic of a real row, so they can
    never produce the NaN/Inf a zero row might (e.g. through a division),
    and the caller discards them via ``trim`` anyway.  Models must treat
    batch rows independently — true of every forward in this library
    (evaluation mode uses running statistics, and no model reduces over
    axis 0).

    Edge shapes are served without padding: an empty batch has no row to
    replicate (:class:`CompiledModel` short-circuits it before reaching
    here), and a batch above the cap keeps its exact size.
    """
    if array.ndim == 0 or array.shape[0] == 0:
        return array, None
    batch = array.shape[0]
    target = bucket_batch_size(batch, cap)
    if target == batch:
        return array, None
    padded = np.empty((target,) + array.shape[1:], dtype=array.dtype)
    padded[:batch] = array
    padded[batch:] = array[0]
    return padded, batch


@dataclass(frozen=True)
class PlanStats:
    """Size and provenance counters of one compiled plan."""

    input_shape: Tuple[int, ...]
    traced_ops: int
    steps: int
    folded: int
    pruned: int
    workspace_bytes: int
    #: Step count after folding/pruning but before elementwise-chain fusion.
    steps_unfused: int = 0
    #: Length of every fused chain (sorted); empty when fusion was off or
    #: found nothing.
    fused_chain_lengths: Tuple[int, ...] = field(default=())

    @property
    def fused_chains(self) -> int:
        """Number of elementwise chains collapsed into fused steps."""
        return len(self.fused_chain_lengths)

    @property
    def fused_chain_histogram(self) -> Dict[int, int]:
        """Chain length -> number of chains of that length."""
        histogram: Dict[int, int] = {}
        for length in self.fused_chain_lengths:
            histogram[length] = histogram.get(length, 0) + 1
        return histogram

    def __str__(self) -> str:
        fused = ""
        if self.fused_chain_lengths:
            histogram = ", ".join(
                f"{length}x{count}" for length, count in sorted(self.fused_chain_histogram.items())
            )
            fused = f", fused={self.steps_unfused}->{self.steps} (chains {histogram})"
        return (
            f"Plan(input={self.input_shape}, steps={self.steps}, "
            f"folded={self.folded}, pruned={self.pruned}, "
            f"workspace={self.workspace_bytes / 1024:.1f} KiB{fused})"
        )


class Plan:
    """One compiled forward pass, specialised to a single input shape.

    Parameters
    ----------
    steps:
        ``(kernel, input_slots, kwargs, out_slot, buffer)`` tuples in
        execution order.  ``buffer`` is the preallocated output array, or
        ``None`` for view-producing kernels.
    values:
        Slot table with constants prefilled; intermediate slots are
        overwritten on every call.
    input_slot / output_slot:
        Where the caller's array goes in and where the result comes out.

    All steps share one workspace, so executions of the same plan are
    serialised by a per-plan lock (:meth:`call`); different plans — and
    therefore different input shapes — run concurrently.  :meth:`execute`
    is the raw, unlocked replay for single-threaded callers.
    """

    def __init__(
        self,
        steps: List[Tuple],
        values: List,
        input_slot: int,
        output_slot: int,
        stats: PlanStats,
    ) -> None:
        self._steps = steps
        self._values = values
        self._input_slot = input_slot
        self._output_slot = output_slot
        # Slots rewritten on every run: the input and each step output
        # (including views of the input).  Cleared after a locked call so an
        # idle plan holds only its constants and pooled buffers, not the
        # last batch it served.
        self._transient_slots = [input_slot] + [step[3] for step in steps]
        self._exec_lock = threading.Lock()
        self.stats = stats

    def execute(self, array: np.ndarray) -> np.ndarray:
        """Run the plan; the result may alias workspace (copy to retain)."""
        values = self._values
        values[self._input_slot] = array
        for kernel, in_slots, kwargs, out_slot, buffer in self._steps:
            values[out_slot] = kernel(*[values[i] for i in in_slots], out=buffer, **kwargs)
        return values[self._output_slot]

    def call(self, array: np.ndarray, trim: Optional[int] = None) -> np.ndarray:
        """Thread-safe execution returning a fresh output copy.

        ``trim`` keeps only the first ``trim`` rows of the result — the
        slice-back half of batch bucketing, taken before the copy so a
        padded batch never materialises its padding rows twice.

        References to the caller's input (and all per-run step outputs) are
        dropped from the slot table after the run so an idle plan does not
        pin the last batch it served.
        """
        with self._exec_lock:
            result = self.execute(array)
            if trim is not None:
                result = result[:trim]
            result = result.copy()
            values = self._values
            for slot in self._transient_slots:
                values[slot] = None
            return result


class _SlicedForward:
    """Trace adapter producing ``module(x)[..., lo:hi]`` — the node-sharded plan.

    Slicing the traced output keeps every upstream step bit-identical to
    the full forward (the slice is a zero-copy view of the same computed
    array) while the plan only ever copies the owned columns out of the
    workspace — the contract that lets a sharded service concatenate
    per-shard outputs back into exactly the single-worker result.
    """

    __slots__ = ("_module", "_lo", "_hi")

    def __init__(self, module, lo: int, hi: int) -> None:
        self._module = module
        self._lo = lo
        self._hi = hi

    @property
    def training(self) -> bool:
        return getattr(self._module, "training", False)

    def __call__(self, x):
        return self._module(x)[..., self._lo : self._hi]


class CompiledModel:
    """Graph-free inference wrapper around a :class:`~repro.nn.Module`.

    The first call for each input shape traces the module's forward pass
    and compiles it to a :class:`Plan`; later calls with the same shape
    replay the plan on raw arrays.  Outputs are returned as fresh copies so
    they never alias the reused workspace.

    Weights are captured **by reference** at compile time, but constant
    folding bakes derived values (embedding lookups, learned adjacencies)
    into the plan — after mutating parameters call :meth:`recompile`.

    The plan cache is a small LRU over input shapes (``max_plans``): a
    micro-batcher produces coalesced batches of many different sizes under
    bursty traffic, and each plan owns workspace proportional to its batch,
    so an unbounded cache would grow memory for the life of the service.
    **Batch bucketing** bounds what that cache has to hold: ragged batches
    are padded along axis 0 up to the next power-of-two bucket (by
    replicating the first row — always finite, and sliced back off the
    output), so the LRU sees O(log max_batch) distinct shapes instead of
    one per observed size.  Disable or cap it with ``bucket_batches`` or
    the ``REPRO_RUNTIME_BUCKETS`` environment variable (see
    :func:`resolve_bucket_cap`); batches above the cap serve exact-shape
    plans.

    Example
    -------
    >>> compiled = CompiledModel(model)          # switches model to eval
    >>> forecast = compiled(window[None])        # (1, T', N) ndarray
    >>> assert np.allclose(forecast, model(Tensor(window[None])).data)
    """

    def __init__(
        self,
        module,
        fold_constants: bool = True,
        max_plans: int = 16,
        fuse: bool = True,
        bucket_batches: Union[None, bool, int] = None,
        output_slice: Optional[Tuple[int, int]] = None,
    ) -> None:
        if max_plans <= 0:
            raise ValueError("max_plans must be positive")
        if output_slice is not None:
            lo, hi = (int(bound) for bound in output_slice)
            if not 0 <= lo < hi:
                raise ValueError(f"output_slice must satisfy 0 <= lo < hi; got {output_slice}")
            output_slice = (lo, hi)
        module.eval()
        self._module = module
        self._fold_constants = fold_constants
        self._fuse = fuse
        self._bucket_cap = resolve_bucket_cap(bucket_batches)
        self._output_slice = output_slice
        self._max_plans = max_plans
        self._plans: "OrderedDict[Tuple, Plan]" = OrderedDict()
        # Per-trailing-shape output shapes learned from the first empty-batch
        # probe, so repeated B == 0 calls answer without running the model.
        self._empty_output_shapes: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        self._lock = threading.Lock()

    @property
    def module(self):
        """The wrapped module (left in evaluation mode)."""
        return self._module

    @property
    def output_slice(self) -> Optional[Tuple[int, int]]:
        """``(lo, hi)`` bounds on the output's trailing node axis, if sharded."""
        return self._output_slice

    def _plan_key(self, shape: Tuple[int, ...]) -> Tuple:
        """Plan-cache key: the input shape, tagged with the shard slice.

        A node-sharded service compiles one plan per (shape, shard slice)
        pair; tagging the key keeps shard plans disjoint even if model
        wrappers are ever shared across shards.
        """
        if self._output_slice is None:
            return shape
        return (shape, self._output_slice)

    def __call__(self, x) -> np.ndarray:
        """Forward ``x`` (Tensor or array-like); returns a fresh ndarray.

        Ragged batch sizes are padded up to their bucket and the output
        sliced back, so callers (micro-batcher, serving paths) can pass any
        batch through unchanged.  The model-wide lock only guards
        plan-cache lookups and inserts — never a compile and never an
        execution — so requests for already compiled shapes proceed while a
        new shape compiles, and requests with different batch shapes run
        concurrently (their workspaces are disjoint; same-shape requests
        serialise on the plan's own lock).

        Edge shapes are hardened rather than special plans: an empty batch
        (``B == 0``) replays the single-row bucket plan on a probe row and
        trims everything back off — tracing a degenerate ``(0, ...)`` shape
        or letting it churn the plan LRU would buy nothing — and a batch
        above the bucket cap runs an exact-shape plan (see
        :func:`pad_batch_to_bucket`).
        """
        array = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float64)
        if array.ndim > 0 and array.shape[0] == 0:
            tail = array.shape[1:]
            known = self._empty_output_shapes.get(tail)
            if known is not None:
                return np.empty((0,) + known, dtype=np.float64)
            probe = np.zeros((1,) + tail, dtype=array.dtype)
            result = self._get_or_compile(probe).call(probe, trim=0)
            self._empty_output_shapes[tail] = result.shape[1:]
            return result
        array, trim = self._pad_to_bucket(array)
        return self._get_or_compile(array).call(array, trim=trim)

    def _pad_to_bucket(self, array: np.ndarray) -> Tuple[np.ndarray, Optional[int]]:
        """Pad axis 0 up to this model's bucket; see :func:`pad_batch_to_bucket`."""
        return pad_batch_to_bucket(array, self._bucket_cap)

    def _get_or_compile(self, array: np.ndarray) -> Plan:
        """Fetch the plan for ``array.shape``, compiling outside the cache lock.

        Two threads racing on the same fresh shape may both compile; the
        first insert wins and the duplicate is dropped — wasted work, never
        wrong results, and no stall for shapes that are already cached.
        """
        key = self._plan_key(array.shape)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
        plan = self._compile(array)
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                self._plans.move_to_end(key)
                return existing
            self._plans[key] = plan
            while len(self._plans) > self._max_plans:
                self._plans.popitem(last=False)
            return plan

    # ------------------------------------------------------------------
    def _compile(self, array: np.ndarray) -> Plan:
        from .compiler import compile_plan

        module = self._module
        if self._output_slice is not None:
            module = _SlicedForward(module, *self._output_slice)
        return compile_plan(
            module, array, fold_constants=self._fold_constants, fuse=self._fuse
        )

    def compile_for(self, example) -> PlanStats:
        """Eagerly compile the plan that would serve ``example``'s shape.

        The example is bucketed exactly like a live request, so the
        returned stats describe the plan requests of this size will hit.
        """
        array = example.data if isinstance(example, Tensor) else np.asarray(example, dtype=np.float64)
        array, _ = self._pad_to_bucket(array)
        return self._get_or_compile(array).stats

    def recompile(self) -> None:
        """Drop all cached plans (required after parameter updates)."""
        with self._lock:
            self._plans.clear()
            self._empty_output_shapes.clear()

    def plan_stats(self) -> List[PlanStats]:
        """Stats of every cached plan (one per input shape seen)."""
        with self._lock:
            return [plan.stats for plan in self._plans.values()]

    def __repr__(self) -> str:
        with self._lock:
            shapes = sorted(self._plans)
        return f"CompiledModel({type(self._module).__name__}, plans={shapes})"
