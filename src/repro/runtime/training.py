"""Compiled training forwards: replay the kernel plan, tape the backward.

The inference runtime (:mod:`repro.runtime.engine`) cannot serve training:
constant folding bakes parameter-derived values into the plan, pooled
buffers overwrite the intermediate activations the backward pass needs, and
there is no gradient path at all.  This module compiles the *training*
variant of a module's forward:

* **no constant folding** — parameters stay live slots captured by
  reference, so in-place optimiser updates (``parameter.data -= ...``,
  ``load_state_dict``) are visible to the plan without recompilation and
  gradients can be routed back to them;
* **dedicated buffers** — every buffered step owns its output array for the
  life of the plan (allocated once, reused across batches), so the forward
  values are still there when the backward tape replays in reverse —
  cheaper than an autograd forward, which allocates every intermediate
  fresh per batch;
* **fused chains stay fused, and save their intermediates** — the forward
  runs each ``fused_elementwise`` chain link by link into dedicated
  per-link buffers (bit-identical to the blocked single-buffer
  interpreter, which runs the same kernels on the same operand values), so
  the backward reads the saved chain values instead of recomputing the
  whole chain per step — memory traded for epoch time;
* **recorded-tape backward** — the lowered step list *is* the tape: walking
  it in reverse and applying each kernel's analytic backward (the same
  formulas the autograd closures use, shared via
  ``repro.tensor.kernels.*_backward`` where they exist) accumulates
  gradients into the originating :class:`~repro.nn.Parameter` objects, so
  optimisers and gradient clipping work unchanged.

Autograd re-attaches only at the **loss boundary**: the caller wraps the
returned predictions in a leaf ``Tensor(requires_grad=True)``, computes the
loss with ordinary autograd ops, and hands ``predictions.grad`` back to
:meth:`TrainingStep.backward`.

Eligibility (:func:`plan_trainable`): the traced forward must equal the
training forward.  Dropout with ``p > 0`` samples a fresh mask per batch
and batch norm updates running statistics in training mode — both would be
frozen by the trace, so such modules fall back to autograd training.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..tensor import kernels as K
from ..tensor.tensor import _unbroadcast

from .compiler import CompileError, classify_steps, lower_module
from .engine import PlanStats, pad_batch_to_bucket, resolve_bucket_cap

__all__ = [
    "CompiledTrainingModel",
    "TrainingPlan",
    "TrainingStep",
    "compile_training_model",
    "compile_training_plan",
    "plan_trainable",
]


def plan_trainable(module) -> Tuple[bool, str]:
    """Whether ``module``'s training forward can be replayed from a trace.

    Returns ``(ok, reason)``; ``reason`` names the first offending
    submodule when ``ok`` is false.  A forward is replayable when it is the
    same deterministic dataflow in training and evaluation mode — dropout
    layers with ``p > 0`` (fresh random mask per batch) and batch
    normalisation (running-statistics updates) break that equivalence.
    """
    from ..nn.layers import BatchNorm1d, Dropout

    for name, submodule in module.named_modules():
        label = name or type(submodule).__name__
        if isinstance(submodule, Dropout) and getattr(submodule, "p", 0.0) > 0.0:
            return False, (
                f"submodule {label!r} applies dropout (p={submodule.p}); its "
                "per-batch random mask cannot be baked into a compiled plan"
            )
        if isinstance(submodule, BatchNorm1d):
            return False, (
                f"submodule {label!r} is a batch norm; its training-mode "
                "running-statistics update cannot be replayed from a trace"
            )
    return True, ""


# ----------------------------------------------------------------------
# Elementwise VJPs, shared between standalone steps and fused-chain
# instructions.  Each maps (grad, input arrays, output array, kwargs) to
# one gradient per input, mirroring the autograd closures in
# repro.tensor.tensor op for op (broadcast reduction happens at the
# accumulation site, where the target shape is known).
# ----------------------------------------------------------------------
def _clip_ew_vjp(grad, args, output, kwargs):
    minimum, maximum = kwargs.get("minimum"), kwargs.get("maximum")
    lower = -np.inf if minimum is None else minimum
    upper = np.inf if maximum is None else maximum
    return (grad * ((args[0] >= lower) & (args[0] <= upper)),)


_EW_VJPS: Dict[str, Callable] = {
    "add": lambda grad, args, output, kwargs: (grad, grad),
    "sub": lambda grad, args, output, kwargs: (grad, -grad),
    "mul": lambda grad, args, output, kwargs: (grad * args[1], grad * args[0]),
    "div": lambda grad, args, output, kwargs: (
        grad / args[1],
        -grad * args[0] / (args[1] ** 2),
    ),
    "neg": lambda grad, args, output, kwargs: (-grad,),
    "pow": lambda grad, args, output, kwargs: (
        grad * kwargs["exponent"] * np.power(args[0], kwargs["exponent"] - 1),
    ),
    "exp": lambda grad, args, output, kwargs: (grad * output,),
    "log": lambda grad, args, output, kwargs: (grad / args[0],),
    "sqrt": lambda grad, args, output, kwargs: (grad * 0.5 / output,),
    "abs": lambda grad, args, output, kwargs: (grad * np.sign(args[0]),),
    "tanh": lambda grad, args, output, kwargs: (K.tanh_backward(grad, output),),
    "sigmoid": lambda grad, args, output, kwargs: (K.sigmoid_backward(grad, output),),
    "relu": lambda grad, args, output, kwargs: (K.relu_backward(grad, args[0]),),
    "leaky_relu": lambda grad, args, output, kwargs: (
        K.leaky_relu_backward(grad, args[0], **kwargs),
    ),
    "clip": _clip_ew_vjp,
}


# ----------------------------------------------------------------------
# Step VJPs: op name -> vjp(grad, inputs, output, kwargs, needed) returning
# one gradient (or None) per input slot.  ``needed[i]`` is False when input
# i does not require a gradient; the expensive VJPs honour it.
# ----------------------------------------------------------------------
def _elementwise_vjp(name: str) -> Callable:
    base = _EW_VJPS[name]

    def vjp(grad, inputs, output, kwargs, needed):
        contributions = base(grad, inputs, output, kwargs)
        return tuple(
            _unbroadcast(contribution, inputs[index].shape)
            if needed[index] and contribution is not None
            else None
            for index, contribution in enumerate(contributions)
        )

    return vjp


def _fused_elementwise_vjp(grad, inputs, output, kwargs, needed, saved=None):
    """Backward of a fused chain from saved (or recomputed) intermediates.

    A :class:`TrainingPlan` forward runs each chain link into a dedicated
    buffer and hands the per-link outputs in as ``saved``, so the backward
    consumes them directly.  Without ``saved`` (the inference-style fused
    forward overwrote every interior value in its single buffer) the chain
    is re-run — allocating this time — from the saved external inputs.
    Either way the per-instruction elementwise VJPs see exactly the values
    the unfused tape would have.
    """
    chain = kwargs["chain"]
    if saved is not None:
        intermediates: List[np.ndarray] = list(saved)
    else:
        intermediates = []
        acc: Optional[np.ndarray] = None
        for _, kernel, refs, instruction_kwargs in chain:
            arguments = [acc if ref < 0 else inputs[ref] for ref in refs]
            acc = kernel(*arguments, **instruction_kwargs)
            intermediates.append(acc)

    grads_in: List[Optional[np.ndarray]] = [None] * len(inputs)
    grad_acc: Optional[np.ndarray] = grad
    for index in range(len(chain) - 1, -1, -1):
        name, _, refs, instruction_kwargs = chain[index]
        previous = intermediates[index - 1] if index > 0 else None
        arguments = [previous if ref < 0 else inputs[ref] for ref in refs]
        contributions = _EW_VJPS[name](grad_acc, arguments, intermediates[index], instruction_kwargs)
        next_grad_acc: Optional[np.ndarray] = None
        for ref, contribution in zip(refs, contributions):
            if ref < 0:
                next_grad_acc = (
                    contribution if next_grad_acc is None else next_grad_acc + contribution
                )
            elif needed[ref]:
                contribution = _unbroadcast(contribution, inputs[ref].shape)
                grads_in[ref] = (
                    contribution if grads_in[ref] is None else grads_in[ref] + contribution
                )
        grad_acc = next_grad_acc
    return tuple(grads_in)


def _matmul_vjp(grad, inputs, output, kwargs, needed):
    a, b = inputs
    grad_a = grad_b = None
    if needed[0]:
        if b.ndim == 1 and a.ndim == 1:
            grad_a = grad * b
        elif b.ndim == 1:
            grad_a = _unbroadcast(np.expand_dims(grad, -1) * b, a.shape)
        elif a.ndim == 1:
            grad_a = _unbroadcast((grad[..., None, :] * b).sum(axis=-1), a.shape)
        else:
            grad_a = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
    if needed[1]:
        if a.ndim == 1 and b.ndim == 1:
            grad_b = grad * a
        elif a.ndim == 1:
            grad_b = _unbroadcast(np.expand_dims(a, -1) * np.expand_dims(grad, -2), b.shape)
        elif b.ndim == 1:
            grad_b = _unbroadcast((np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1))[..., 0], b.shape)
        else:
            grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
    return grad_a, grad_b


def _spmm_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    return (kwargs["matrix"].transposed().dot_array(grad),)


def _reshape_vjp(grad, inputs, output, kwargs, needed):
    return (grad.reshape(inputs[0].shape),) if needed[0] else (None,)


def _transpose_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    return (grad.transpose(np.argsort(kwargs["axes"])),)


def _broadcast_vjp(grad, inputs, output, kwargs, needed):
    return (_unbroadcast(grad, inputs[0].shape),) if needed[0] else (None,)


def _getitem_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    # Gradient dtype follows the tape's values (float64 today) instead of
    # hard-coding it, so a reduced-precision tape would not silently upcast.
    full = np.zeros(inputs[0].shape, dtype=grad.dtype)
    np.add.at(full, kwargs["index"], grad)
    return (full,)


def _sum_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    a = inputs[0]
    axis, keepdims = kwargs.get("axis"), kwargs.get("keepdims", False)
    if axis is None:
        return (np.broadcast_to(grad, a.shape).copy(),)
    expanded = grad if keepdims else np.expand_dims(grad, axis)
    return (np.broadcast_to(expanded, a.shape).copy(),)


def _mean_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    a = inputs[0]
    axis, keepdims = kwargs.get("axis"), kwargs.get("keepdims", False)
    if axis is None:
        return (np.broadcast_to(grad / a.size, a.shape).copy(),)
    axes = axis if isinstance(axis, tuple) else (axis,)
    count = 1
    for ax in axes:
        count *= a.shape[ax]
    expanded = grad if keepdims else np.expand_dims(grad, axis)
    return (np.broadcast_to(expanded / count, a.shape).copy(),)


def _max_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    a = inputs[0]
    axis, keepdims = kwargs.get("axis"), kwargs.get("keepdims", False)
    if axis is None:
        mask = (a == a.max()).astype(grad.dtype)
        mask /= mask.sum()
        return (mask * grad,)
    expanded_max = a.max(axis=axis, keepdims=True)
    mask = (a == expanded_max).astype(grad.dtype)
    mask /= mask.sum(axis=axis, keepdims=True)
    expanded = grad if keepdims else np.expand_dims(grad, axis)
    return (mask * expanded,)


def _maximum_vjp(grad, inputs, output, kwargs, needed):
    a, b = inputs
    self_mask = (a > b).astype(grad.dtype)
    tie_mask = (a == b).astype(grad.dtype) * 0.5
    other_mask = (b > a).astype(grad.dtype)
    grad_a = _unbroadcast(grad * (self_mask + tie_mask), a.shape) if needed[0] else None
    grad_b = _unbroadcast(grad * (other_mask + tie_mask), b.shape) if needed[1] else None
    return grad_a, grad_b


def _where_vjp(grad, inputs, output, kwargs, needed):
    condition = kwargs["condition"]
    grad_a = _unbroadcast(grad * condition, inputs[0].shape) if needed[0] else None
    grad_b = _unbroadcast(grad * (~condition), inputs[1].shape) if needed[1] else None
    return grad_a, grad_b


def _concat_vjp(grad, inputs, output, kwargs, needed):
    axis = kwargs.get("axis", 0)
    grads = []
    start = 0
    for index, array in enumerate(inputs):
        stop = start + array.shape[axis]
        if needed[index]:
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            grads.append(grad[tuple(slicer)])
        else:
            grads.append(None)
        start = stop
    return tuple(grads)


def _stack_vjp(grad, inputs, output, kwargs, needed):
    axis = kwargs.get("axis", 0)
    return tuple(
        np.take(grad, index, axis=axis) if needed[index] else None
        for index in range(len(inputs))
    )


def _pad_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    pad_width = kwargs["pad_width"]
    slicer = tuple(
        slice(before, grad.shape[axis] - after)
        for axis, (before, after) in enumerate(pad_width)
    )
    return (grad[slicer],)


def _softmax_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    return (K.softmax_backward(grad, output, axis=kwargs["axis"]),)


def _log_softmax_vjp(grad, inputs, output, kwargs, needed):
    if not needed[0]:
        return (None,)
    return (K.log_softmax_backward(grad, output, axis=kwargs["axis"]),)


def _layer_norm_vjp(grad, inputs, output, kwargs, needed):
    return _layer_norm_vjp_saved(grad, inputs, kwargs, needed, None)


def _layer_norm_vjp_saved(grad, inputs, kwargs, needed, saved):
    """Layer-norm VJP, from forward-saved ``(x_hat, sigma)`` when available."""
    x, weight, bias = inputs
    axes = tuple(kwargs["axes"])
    x_hat, sigma = saved if saved is not None else K.layer_norm_stats(x, axes, kwargs["eps"])
    grad_x = K.layer_norm_backward(grad, x_hat, sigma, weight, axes=axes) if needed[0] else None
    grad_weight = _unbroadcast(grad * x_hat, weight.shape) if needed[1] else None
    grad_bias = _unbroadcast(grad, bias.shape) if needed[2] else None
    return grad_x, grad_weight, grad_bias


#: Op name -> step VJP.  Everything the kernel registry can record must
#: have an entry here for the training compiler to accept it.
VJPS: Dict[str, Callable] = {
    **{name: _elementwise_vjp(name) for name in _EW_VJPS},
    "fused_elementwise": _fused_elementwise_vjp,
    "matmul": _matmul_vjp,
    "spmm": _spmm_vjp,
    "reshape": _reshape_vjp,
    "reshape_copy": _reshape_vjp,
    "squeeze": _reshape_vjp,
    "unsqueeze": _reshape_vjp,
    "transpose": _transpose_vjp,
    "broadcast": _broadcast_vjp,
    "getitem": _getitem_vjp,
    "sum": _sum_vjp,
    "mean": _mean_vjp,
    "max": _max_vjp,
    "maximum": _maximum_vjp,
    "where": _where_vjp,
    "concat": _concat_vjp,
    "stack": _stack_vjp,
    "pad": _pad_vjp,
    "softmax": _softmax_vjp,
    "log_softmax": _log_softmax_vjp,
    "layer_norm": _layer_norm_vjp,
}


class TrainingPlan:
    """One compiled training forward + recorded-tape backward, one shape.

    Not thread-safe and strictly one step in flight: :meth:`forward` leaves
    every intermediate in its dedicated buffer for :meth:`backward` to
    consume; a second forward overwrites them.
    """

    def __init__(self, steps, values, input_slot, output_slot, param_slots, requires, stats,
                 chain_buffers: Optional[Dict[int, List[np.ndarray]]] = None) -> None:
        self._steps = steps  # (name, kernel, in_slots, kwargs, out_slot, buffer)
        self._values = values
        self._input_slot = input_slot
        self._output_slot = output_slot
        self._param_slots = param_slots  # slot -> Parameter
        self._requires = requires  # slot -> needs a gradient
        #: out_slot -> (x_hat, sigma) saved by layer-norm forwards, exactly
        #: like the autograd closure saves them — recomputing the statistics
        #: in the backward would cost a second normalisation pass per layer.
        self._layer_norm_stats: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        #: out_slot -> dedicated per-link buffers for fused-chain steps: the
        #: forward writes every chain intermediate into its own buffer (the
        #: tail link shares the step's main buffer) so the backward reads
        #: the saved values instead of recomputing the whole chain.
        self._chain_buffers = chain_buffers or {}
        #: out_slot -> per-link forward values (the buffers above, in chain
        #: order), populated by :meth:`forward` and consumed once by
        #: :meth:`backward`.
        self._fused_saved: Dict[int, List[np.ndarray]] = {}
        #: Slots rewritten per run: the input and every step output.  View
        #: and alloc steps store arrays aliasing (or derived from) the
        #: caller's batch, so all of them are cleared by :meth:`release` —
        #: an idle plan must hold only its constants and owned buffers.
        self._transient_slots = [input_slot] + [step[4] for step in steps]
        self.stats = stats

    @property
    def output_shape(self) -> Tuple[int, ...]:
        for name, kernel, in_slots, kwargs, out_slot, buffer in reversed(self._steps):
            if out_slot == self._output_slot and buffer is not None:
                return buffer.shape
        return np.asarray(self._values[self._output_slot]).shape

    def forward(self, array: np.ndarray) -> np.ndarray:
        """Replay the plan; the result aliases plan buffers (copy to keep)."""
        values = self._values
        saved_stats = self._layer_norm_stats
        values[self._input_slot] = array
        for name, kernel, in_slots, kwargs, out_slot, buffer in self._steps:
            if name == "fused_elementwise":
                # Run the chain link by link into the dedicated per-link
                # buffers (the tail is the step's main buffer) and save the
                # intermediates for the backward — same kernels on the same
                # operand values as the blocked single-buffer interpreter,
                # so the tail is bit-identical; the backward then skips the
                # chain recompute entirely.
                link_buffers = self._chain_buffers[out_slot]
                accumulator: Optional[np.ndarray] = None
                saved: List[np.ndarray] = []
                for link, link_buffer in zip(kwargs["chain"], link_buffers):
                    _, link_kernel, refs, link_kwargs = link
                    arguments = [
                        accumulator if ref < 0 else values[in_slots[ref]] for ref in refs
                    ]
                    accumulator = link_kernel(*arguments, out=link_buffer, **link_kwargs)
                    saved.append(accumulator)
                self._fused_saved[out_slot] = saved
                values[out_slot] = accumulator
                continue
            if name == "layer_norm":
                # Compute through the stats form (bit-identical to the
                # kernel's in-buffer sequence) and save (x_hat, sigma) for
                # the backward, mirroring the autograd closure.
                x, weight, bias = (values[i] for i in in_slots)
                x_hat, sigma = K.layer_norm_stats(x, tuple(kwargs["axes"]), kwargs["eps"])
                np.multiply(x_hat, weight, out=buffer)
                np.add(buffer, bias, out=buffer)
                saved_stats[out_slot] = (x_hat, sigma)
                values[out_slot] = buffer
                continue
            values[out_slot] = kernel(*[values[i] for i in in_slots], out=buffer, **kwargs)
        return values[self._output_slot]

    def backward(self, grad: np.ndarray) -> None:
        """Propagate ``d loss / d output`` back to the parameters.

        Walks the tape in reverse, applying each kernel's analytic VJP to
        the forward values still sitting in the plan's buffers, and
        accumulates the resulting leaf gradients into ``Parameter.grad``
        (summing with any existing gradient, like autograd leaves).
        """
        values = self._values
        requires = self._requires
        grads: Dict[int, np.ndarray] = {self._output_slot: np.asarray(grad, dtype=np.float64)}
        for name, kernel, in_slots, kwargs, out_slot, buffer in reversed(self._steps):
            output_grad = grads.pop(out_slot, None)
            if output_grad is None:
                continue
            needed = tuple(requires[slot] for slot in in_slots)
            if not any(needed):
                continue
            inputs = [values[slot] for slot in in_slots]
            if name == "layer_norm":
                contributions = _layer_norm_vjp_saved(
                    output_grad, inputs, kwargs, needed,
                    self._layer_norm_stats.pop(out_slot, None),
                )
            elif name == "fused_elementwise":
                contributions = _fused_elementwise_vjp(
                    output_grad, inputs, values[out_slot], kwargs, needed,
                    saved=self._fused_saved.pop(out_slot, None),
                )
            else:
                contributions = VJPS[name](output_grad, inputs, values[out_slot], kwargs, needed)
            for slot, contribution in zip(in_slots, contributions):
                if contribution is None:
                    continue
                existing = grads.get(slot)
                grads[slot] = contribution if existing is None else existing + contribution
        for slot, parameter in self._param_slots.items():
            contribution = grads.get(slot)
            if contribution is None:
                continue
            if parameter.grad is None:
                parameter.grad = np.array(contribution, dtype=np.float64, copy=True)
            else:
                parameter.grad = parameter.grad + contribution

    def release(self) -> None:
        """Drop all per-run slot values so the plan pins no served batch.

        Buffered slots re-point at their plan-owned buffers on the next
        forward; view slots would otherwise keep aliasing the last caller's
        input array for the life of the plan cache.
        """
        values = self._values
        for slot in self._transient_slots:
            values[slot] = None
        self._layer_norm_stats.clear()
        self._fused_saved.clear()


def compile_training_plan(module, example: np.ndarray, fuse: bool = True) -> TrainingPlan:
    """Compile ``module``'s forward for training on ``example``'s shape.

    Unlike :func:`~repro.runtime.compiler.compile_plan`: constants are never
    folded (parameters must stay differentiable, live slots), and every
    buffered step gets its own dedicated buffer instead of a pooled one
    (the backward tape reads the forward values after the forward
    finishes).  The module may be in training mode; it is traced in
    evaluation mode and restored — :func:`plan_trainable` guarantees the
    two are the same dataflow.
    """
    trainable, reason = plan_trainable(module)
    if not trainable:
        raise CompileError(f"module cannot be compiled for training: {reason}")
    was_training = bool(getattr(module, "training", False))
    if was_training:
        module.eval()
    try:
        lowered = lower_module(module, example, fold_constants=False, fuse=fuse)
    finally:
        if was_training:
            module.train(True)

    classified = classify_steps(lowered.steps, lowered.values, lowered.input_value)
    steps: List[Tuple] = []
    chain_buffers: Dict[int, List[np.ndarray]] = {}
    workspace_bytes = 0
    for kind, step in classified:
        buffer = None
        if kind == "buffered":
            buffer = np.empty(step.out.data.shape, dtype=step.out.data.dtype)
            workspace_bytes += buffer.nbytes
            if step.name == "fused_elementwise":
                # One dedicated buffer per chain link (every link produces
                # the step's output shape — the fusion invariant), the tail
                # sharing the step's main buffer: the forward saves every
                # chain intermediate here so the tape backward reads them
                # instead of recomputing the chain per step (the
                # memory-for-epoch-time trade from the roadmap).
                links = step.kwargs["chain"]
                interiors = [np.empty_like(buffer) for _ in range(len(links) - 1)]
                workspace_bytes += sum(interior.nbytes for interior in interiors)
                chain_buffers[step.out_slot] = interiors + [buffer]
        steps.append((step.name, K.KERNELS[step.name], step.in_slots, step.kwargs, step.out_slot, buffer))
        missing = VJPS.get(step.name) is None
        if missing:
            raise CompileError(f"op {step.name!r} has no training backward (VJP)")

    requires = [False] * len(lowered.values)
    for slot in lowered.param_slots:
        requires[slot] = True
    for name, kernel, in_slots, kwargs, out_slot, buffer in steps:
        if any(requires[slot] for slot in in_slots):
            requires[out_slot] = True

    stats = PlanStats(
        input_shape=tuple(np.asarray(example).shape),
        traced_ops=lowered.traced_ops,
        steps=len(steps),
        folded=lowered.folded,
        pruned=lowered.pruned,
        workspace_bytes=workspace_bytes,
        steps_unfused=lowered.steps_unfused,
        fused_chain_lengths=lowered.chain_lengths,
    )
    return TrainingPlan(
        steps, lowered.values, 0, lowered.output_slot, lowered.param_slots, requires, stats,
        chain_buffers=chain_buffers,
    )


class TrainingStep:
    """Handle tying one forward's predictions to its pending backward."""

    def __init__(self, plan: TrainingPlan, predictions: np.ndarray, batch: int, padded: int) -> None:
        self.predictions = predictions  # (batch, ...) fresh copy, raw rows only
        self._plan = plan
        self._batch = batch
        self._padded = padded

    def backward(self, grad: np.ndarray) -> None:
        """Run the tape backward from ``d loss / d predictions``.

        When the forward was padded to a bucket, the gradient is embedded
        into zero rows for the padding — replicated rows therefore
        contribute exactly nothing to any parameter gradient.
        """
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.predictions.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match predictions "
                f"shape {self.predictions.shape}"
            )
        if self._padded != self._batch:
            full = np.zeros((self._padded,) + grad.shape[1:], dtype=np.float64)
            full[: self._batch] = grad
            grad = full
        self._plan.backward(grad)
        self._plan.release()


class CompiledTrainingModel:
    """Per-shape cache of :class:`TrainingPlan` over one module.

    The training-loop counterpart of :class:`~repro.runtime.engine.CompiledModel`:
    one plan per batch shape, parameters captured by reference — optimiser
    steps and ``load_state_dict`` need no recompile.  Strictly sequential:
    run one :meth:`step`'s backward before starting the next.

    Bucketing defaults to **off** here, unlike serving: an epoch sees O(1)
    distinct shapes (the full batch plus one ragged tail), so the plan
    cache needs no bounding, and padding a non-power-of-two training batch
    would pay the padded cost in the forward *and* the tape backward on
    every step.  Pass ``bucket_batches=True`` (or a cap) only when feeding
    genuinely ragged training batches.
    """

    def __init__(self, module, max_plans: int = 8, fuse: bool = True,
                 bucket_batches=False) -> None:
        trainable, reason = plan_trainable(module)
        if not trainable:
            raise CompileError(f"module cannot be compiled for training: {reason}")
        if max_plans <= 0:
            raise ValueError("max_plans must be positive")
        self._module = module
        self._fuse = fuse
        self._bucket_cap = resolve_bucket_cap(bucket_batches)
        self._max_plans = max_plans
        self._plans: "OrderedDict[Tuple[int, ...], TrainingPlan]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def module(self):
        """The wrapped module."""
        return self._module

    def step(self, inputs) -> TrainingStep:
        """Run one compiled forward; returns predictions plus the tape handle."""
        array = np.asarray(inputs, dtype=np.float64)
        array, trim = pad_batch_to_bucket(array, self._bucket_cap)
        padded = array.shape[0] if array.ndim else 0
        batch = trim if trim is not None else padded
        plan = self._get_or_compile(array)
        predictions = plan.forward(array)[:batch].copy()
        return TrainingStep(plan, predictions, batch, padded)

    def _get_or_compile(self, array: np.ndarray) -> TrainingPlan:
        with self._lock:
            plan = self._plans.get(array.shape)
            if plan is not None:
                self._plans.move_to_end(array.shape)
                return plan
            plan = compile_training_plan(self._module, array, fuse=self._fuse)
            self._plans[array.shape] = plan
            while len(self._plans) > self._max_plans:
                self._plans.popitem(last=False)
            return plan

    def plan_stats(self) -> List[PlanStats]:
        """Stats of every cached training plan."""
        with self._lock:
            return [plan.stats for plan in self._plans.values()]


def compile_training_model(module, **kwargs) -> CompiledTrainingModel:
    """Build a :class:`CompiledTrainingModel` (raises ``CompileError`` when
    the module has train-only stochastic behaviour; see :func:`plan_trainable`)."""
    return CompiledTrainingModel(module, **kwargs)
