"""Durable, versioned plan artifacts: kill fleet-wide compile cold start.

Every worker in a sharded service used to re-trace, re-fuse and re-schedule
identical kernel plans on its first request — per batch bucket and per
precision policy, again on every restart and every fork.  This module makes
a compiled plan a *durable artifact*: the complete
:class:`~repro.runtime.engine.PlanSpec` (step list with fused chains,
pooled workspace layout, island/wave schedule, dtype policy,
:class:`~repro.runtime.engine.PlanStats`) plus the constant slot values are
serialised into one ``.npz`` file keyed by a **trace hash** over

* the module architecture (class + config + parameter names/shapes/dtypes),
* the parameter *values* (constant folding bakes weights into plans, so a
  weight change must change the key),
* the input shape (after bucketing), the execution precision, the bucket
  cap, and the compile options (folding, fusion, parallel binding).

A fresh process — a restarted worker, a newly forked shard — looks the
artifact up by recomputing the hash from its live module, so a stale
artifact (older weights, different architecture) can never be *found*, let
alone served.  What is found is still validated before use:

* **format version** — artifacts from an incompatible layout are rejected;
* **integrity checksum** — a SHA-256 over the spec, the array layout table
  and the packed array blob detects corrupted or truncated files;
* **trace-hash echo** — the stored key must match the requested one
  (catches renamed/moved files);
* **parity spot check** — the caller (:class:`~repro.runtime.CompiledModel`)
  marks the bound plan ``pending_parity`` and compares row 0 of the *first
  result it serves* against the autograd forward — bit-exact tolerances for
  float64 plans, the documented tolerance contract for float32 — rejecting
  the plan and recompiling before anything wrong is returned.  Deferring
  the check onto the first real request keeps the warm start to a single
  plan execution instead of a throwaway validation replay.

Any failure falls back to a normal compile — artifacts are a pure
fast-path, never a correctness dependency.

The :class:`ArtifactStore` also keeps an in-process memo of parsed specs
and constants, so the N workers of a replica-sharded service parse and
load each trace once and share the (read-only) constant arrays.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from .engine import PlanSpec, PlanStats, StepSpec

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "ArtifactStore",
    "ArtifactStoreStats",
    "trace_hash",
    "weights_fingerprint",
]

#: Version of the on-disk artifact layout.  Bump on any incompatible change
#: to the spec encoding; loaders reject artifacts from other versions (the
#: cost is one recompile, never a wrong plan).
ARTIFACT_FORMAT_VERSION = 1

_SPEC_KEY = "__plan_spec__"
_META_KEY = "__artifact_meta__"
#: All value arrays (constants + kwargs auxiliaries) are packed into ONE
#: contiguous byte blob with a JSON layout table, so a load reads four zip
#: entries instead of ~100 — per-entry zipfile overhead (open, header
#: parse, CRC bookkeeping) dominated artifact load time, and load time is
#: the whole point (see the cold-start benchmark).
_ARRAYS_KEY = "__array_table__"
_LAYOUT_KEY = "__array_layout__"

#: Pack alignment: every array starts on a 64-byte boundary so the
#: zero-copy views carved out of the blob are cache-line aligned.
_PACK_ALIGN = 64


class ArtifactError(RuntimeError):
    """An artifact is invalid (corrupted, truncated, stale, or unsupported)."""


# ----------------------------------------------------------------------
# Trace hashing
# ----------------------------------------------------------------------

def weights_fingerprint(module) -> str:
    """Content hash of a module's parameters and buffers.

    Plans bake parameter values in (constant folding), so the artifact key
    must change whenever any weight changes — an in-process
    ``weights_version`` counter cannot provide that across restarts, a
    content hash can.
    """
    digest = hashlib.sha256()
    for name, value in sorted(module.state_dict().items()):
        value = np.ascontiguousarray(value)
        digest.update(name.encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def _describe_config(module) -> str:
    """A stable, architecture-identifying description of ``module.config``."""
    config = getattr(module, "config", None)
    if config is None:
        return ""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return json.dumps(dataclasses.asdict(config), sort_keys=True, default=str)
    return repr(config)


def trace_hash(
    module,
    input_shape: Tuple[int, ...],
    dtype,
    *,
    output_slice: Optional[Tuple[int, int]] = None,
    fold_constants: bool = True,
    fuse: bool = True,
    parallel: bool = False,
    bucket_cap: Optional[int] = None,
    weights: Optional[str] = None,
) -> str:
    """The artifact key for one ``(module, shape, precision, options)`` trace.

    ``weights`` lets callers pass a cached :func:`weights_fingerprint`
    (hashing all parameters per lookup would defeat the point of a cache);
    when omitted it is computed here.
    """
    digest = hashlib.sha256()
    parts = (
        f"format:{ARTIFACT_FORMAT_VERSION}",
        f"class:{type(module).__module__}.{type(module).__qualname__}",
        f"config:{_describe_config(module)}",
        f"weights:{weights if weights is not None else weights_fingerprint(module)}",
        f"shape:{tuple(int(dim) for dim in input_shape)}",
        f"dtype:{np.dtype(dtype).name}",
        f"slice:{output_slice}",
        f"fold:{bool(fold_constants)}",
        f"fuse:{bool(fuse)}",
        f"parallel:{bool(parallel)}",
        f"bucket_cap:{bucket_cap}",
    )
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Kwargs / value encoding
#
# Step kwargs are almost always plain scalars and tuples, but a few
# kernels carry structured constants: ``where`` a boolean mask ndarray,
# ``getitem`` an arbitrary index expression (ints, slices, Ellipsis,
# index arrays), ``spmm`` a CSR SparseMatrix.  Values encode to a JSON
# tree; ndarrays (and CSR components) are hoisted into the archive's
# array table and referenced by name, so nothing is ever pickled
# (``allow_pickle=False`` end to end).
# ----------------------------------------------------------------------

def _content_key(value: np.ndarray) -> Tuple[str, Tuple[int, ...], str]:
    """A content-identity key for deduplicating auxiliary arrays."""
    value = np.ascontiguousarray(value)
    digest = hashlib.blake2b(value.tobytes(), digest_size=16).hexdigest()
    return (value.dtype.str, tuple(value.shape), digest)


def _encode(
    value: Any,
    arrays: Dict[str, np.ndarray],
    dedup: Optional[Dict[Any, str]] = None,
) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)) and not isinstance(
        value, (np.generic,)
    ):
        return value
    if isinstance(value, np.generic):
        return {"__k": "npnum", "dtype": value.dtype.name, "v": value.item()}
    if isinstance(value, tuple):
        return {"__k": "tuple", "v": [_encode(item, arrays, dedup) for item in value]}
    if isinstance(value, list):
        return {"__k": "list", "v": [_encode(item, arrays, dedup) for item in value]}
    if isinstance(value, dict):
        if not all(isinstance(key, str) for key in value):
            raise ArtifactError("only string-keyed dicts are serialisable in plan kwargs")
        return {
            "__k": "dict",
            "v": {key: _encode(item, arrays, dedup) for key, item in value.items()},
        }
    if isinstance(value, slice):
        return {"__k": "slice", "v": [_encode(value.start, arrays, dedup),
                                      _encode(value.stop, arrays, dedup),
                                      _encode(value.step, arrays, dedup)]}
    if value is Ellipsis:
        return {"__k": "ellipsis"}
    if isinstance(value, np.dtype):
        return {"__k": "dtype", "v": value.name}
    if isinstance(value, np.ndarray):
        # The same mask/index array reappears in many steps (one per scale,
        # per fused chain); deduplicating by content keeps each distinct
        # array in the archive exactly once.
        key = ("ndarray",) + _content_key(value) if dedup is not None else None
        if key is not None and key in dedup:
            return {"__k": "ndarray", "ref": dedup[key]}
        ref = f"aux_{len(arrays)}"
        arrays[ref] = value
        if key is not None:
            dedup[key] = ref
        return {"__k": "ndarray", "ref": ref}
    if type(value).__name__ == "SparseMatrix":
        csr = value.csr
        shape = [int(csr.shape[0]), int(csr.shape[1])]
        components = (
            np.asarray(csr.data), np.asarray(csr.indices), np.asarray(csr.indptr)
        )
        key = None
        if dedup is not None:
            key = ("csr", tuple(shape)) + tuple(
                _content_key(component) for component in components
            )
            if key in dedup:
                return {"__k": "csr", "ref": dedup[key], "shape": shape}
        base = f"aux_{len(arrays)}"
        for suffix, component in zip(("data", "indices", "indptr"), components):
            arrays[f"{base}_{suffix}"] = component
        if key is not None:
            dedup[key] = base
        return {"__k": "csr", "ref": base, "shape": shape}
    raise ArtifactError(
        f"plan kwargs value of type {type(value).__name__!r} is not serialisable"
    )


def _decode(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if not isinstance(value, dict):
        return value
    kind = value.get("__k")
    if kind == "npnum":
        return np.dtype(value["dtype"]).type(value["v"])
    if kind == "tuple":
        return tuple(_decode(item, arrays) for item in value["v"])
    if kind == "list":
        return [_decode(item, arrays) for item in value["v"]]
    if kind == "dict":
        return {key: _decode(item, arrays) for key, item in value["v"].items()}
    if kind == "slice":
        start, stop, step = (_decode(item, arrays) for item in value["v"])
        return slice(start, stop, step)
    if kind == "ellipsis":
        return Ellipsis
    if kind == "dtype":
        return np.dtype(value["v"])
    if kind == "ndarray":
        return arrays[value["ref"]]
    if kind == "csr":
        from scipy import sparse as sp

        from ..graph.sparse import SparseMatrix

        base = value["ref"]
        csr = sp.csr_matrix(
            (arrays[f"{base}_data"], arrays[f"{base}_indices"], arrays[f"{base}_indptr"]),
            shape=tuple(value["shape"]),
        )
        matrix = SparseMatrix.__new__(SparseMatrix)
        matrix._matrix = csr
        return matrix
    raise ArtifactError(f"unknown encoded value kind {kind!r}")


def _spec_to_payload(spec: PlanSpec) -> Tuple[bytes, Dict[str, np.ndarray]]:
    """Encode a :class:`PlanSpec` as (JSON bytes, auxiliary array table)."""
    arrays: Dict[str, np.ndarray] = {}
    dedup: Dict[Any, str] = {}
    steps = [
        {
            "name": step.name,
            "in_slots": list(step.in_slots),
            "kwargs": _encode(dict(step.kwargs), arrays, dedup),
            "out_slot": step.out_slot,
            "out_shape": list(step.out_shape),
            "storage": step.storage,
        }
        for step in spec.steps
    ]
    stats = dataclasses.asdict(spec.stats)
    stats["input_shape"] = list(spec.stats.input_shape)
    stats["fused_chain_lengths"] = list(spec.stats.fused_chain_lengths)
    document = {
        "format": ARTIFACT_FORMAT_VERSION,
        "dtype": spec.dtype,
        "input_slot": spec.input_slot,
        "output_slot": spec.output_slot,
        "num_slots": spec.num_slots,
        "const_slots": list(spec.const_slots),
        "storage_sizes": list(spec.storage_sizes),
        "schedule": spec.schedule,
        "steps": steps,
    }
    document["stats"] = stats
    return json.dumps(document, sort_keys=True).encode("utf-8"), arrays


def _spec_from_payload(blob: bytes, arrays: Dict[str, np.ndarray]) -> PlanSpec:
    document = json.loads(blob.decode("utf-8"))
    if document.get("format") != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"artifact format {document.get('format')!r} does not match "
            f"this build's {ARTIFACT_FORMAT_VERSION}"
        )
    steps = [
        StepSpec(
            name=entry["name"],
            in_slots=tuple(entry["in_slots"]),
            kwargs=_decode(entry["kwargs"], arrays),
            out_slot=entry["out_slot"],
            out_shape=tuple(entry["out_shape"]),
            storage=entry["storage"],
        )
        for entry in document["steps"]
    ]
    stats_doc = dict(document["stats"])
    stats_doc["input_shape"] = tuple(stats_doc["input_shape"])
    stats_doc["fused_chain_lengths"] = tuple(stats_doc["fused_chain_lengths"])
    stats = PlanStats(**stats_doc)
    schedule = document["schedule"]
    if schedule is not None:
        schedule = [[list(island) for island in wave] for wave in schedule]
    return PlanSpec(
        dtype=document["dtype"],
        input_slot=document["input_slot"],
        output_slot=document["output_slot"],
        num_slots=document["num_slots"],
        const_slots=tuple(document["const_slots"]),
        steps=steps,
        storage_sizes=list(document["storage_sizes"]),
        schedule=schedule,
        stats=stats,
    )


def _pack_arrays(arrays: Dict[str, np.ndarray]) -> Tuple[np.ndarray, bytes]:
    """Pack every value array into one contiguous byte blob + layout table.

    The layout (JSON) records ``name``/``dtype``/``shape``/``offset`` per
    array; offsets are :data:`_PACK_ALIGN`-aligned so the views carved back
    out by :func:`_unpack_arrays` are aligned without copying.
    """
    chunks: List[bytes] = []
    layout: List[Dict[str, Any]] = []
    offset = 0
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        padding = (-offset) % _PACK_ALIGN
        if padding:
            chunks.append(b"\x00" * padding)
            offset += padding
        data = value.tobytes()
        layout.append(
            {
                "name": name,
                "dtype": value.dtype.name,
                "shape": list(value.shape),
                "offset": offset,
                "nbytes": len(data),
            }
        )
        chunks.append(data)
        offset += len(data)
    blob = np.frombuffer(b"".join(chunks), dtype=np.uint8)
    return blob, json.dumps(layout, sort_keys=True).encode("utf-8")


def _unpack_arrays(blob: np.ndarray, layout_blob: bytes) -> Dict[str, np.ndarray]:
    """Carve the packed blob back into named arrays (zero-copy views).

    The returned arrays are marked read-only: constants are shared across
    every plan bound from the store's memo, so nothing may mutate them.
    """
    layout = json.loads(layout_blob.decode("utf-8"))
    buffer = np.ascontiguousarray(blob, dtype=np.uint8)
    arrays: Dict[str, np.ndarray] = {}
    for entry in layout:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        nbytes = int(entry["nbytes"])
        offset = int(entry["offset"])
        if offset + nbytes > buffer.nbytes:
            raise ArtifactError(
                f"array {entry['name']!r} extends past the packed blob (truncated?)"
            )
        if nbytes == 0:
            value = np.empty(shape, dtype=dtype)
        else:
            count = nbytes // dtype.itemsize
            value = np.frombuffer(
                buffer.data, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
        value.flags.writeable = False
        arrays[entry["name"]] = value
    return arrays


def _checksum(spec_blob: bytes, layout_blob: bytes, blob: np.ndarray) -> str:
    """Integrity hash over the spec document, layout table and packed data."""
    digest = hashlib.sha256()
    digest.update(spec_blob)
    digest.update(b"\x00")
    digest.update(layout_blob)
    digest.update(b"\x00")
    digest.update(np.ascontiguousarray(blob, dtype=np.uint8).data)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ArtifactStoreStats:
    """Counters of one artifact store (process-local)."""

    saves: int
    loads: int
    memo_hits: int
    misses: int
    rejects: int
    #: Artifacts statically verified at load under ``REPRO_RUNTIME_VERIFY=1``
    #: (disk reads only — memo hits were verified when first parsed).
    verifies: int = 0

    @property
    def disk_loads(self) -> int:
        """Loads that actually parsed a file (memo hits excluded)."""
        return self.loads - self.memo_hits


class ArtifactStore:
    """Directory-backed store of compiled plan artifacts.

    One store can (and in a sharded service, should) be shared by many
    :class:`~repro.runtime.CompiledModel` instances: the on-disk file makes
    plans survive restarts, and the in-process memo makes N replica workers
    parse each trace once and share the read-only constant arrays.

    Parameters
    ----------
    root:
        Directory holding the ``<trace_hash>.plan.npz`` files (created on
        first use).
    readonly:
        When true, :meth:`save` is a no-op — e.g. serving fleets pointed at
        an artifact volume they must not mutate.

    Example
    -------
    >>> store = ArtifactStore("checkpoints/dyhsl.artifacts")
    >>> compiled = CompiledModel(model, artifact_store=store)
    >>> compiled(windows)            # first call loads the plan, no trace
    """

    def __init__(self, root: Union[str, Path], readonly: bool = False) -> None:
        self.root = Path(root)
        self.readonly = bool(readonly)
        if not self.readonly:
            self.root.mkdir(parents=True, exist_ok=True)
        self._memo: Dict[str, Tuple[PlanSpec, Dict[int, np.ndarray]]] = {}
        self._lock = threading.Lock()
        self._saves = 0
        self._loads = 0
        self._memo_hits = 0
        self._misses = 0
        self._rejects = 0
        self._verifies = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """The on-disk artifact file for one trace hash."""
        return self.root / f"{key}.plan.npz"

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memo:
                return True
        return self.path_for(key).exists()

    def keys(self) -> List[str]:
        """Trace hashes of every artifact currently on disk."""
        return sorted(path.name[: -len(".plan.npz")] for path in self.root.glob("*.plan.npz"))

    # ------------------------------------------------------------------
    def save(
        self,
        key: str,
        spec: PlanSpec,
        constants: Dict[int, np.ndarray],
        meta: Optional[Dict[str, Any]] = None,
    ) -> Optional[Path]:
        """Persist one plan under its trace hash; returns the path.

        Writes are atomic (temp file + ``os.replace``), so concurrent
        workers racing to publish the same trace can never leave a torn
        file; last writer wins with identical content.  Read-only stores
        skip the disk write but still memoise, so replica workers sharing
        the store object reuse the parsed plan either way.
        """
        spec_blob, arrays = _spec_to_payload(spec)
        tables: Dict[str, np.ndarray] = dict(arrays)
        for slot, value in constants.items():
            tables[f"const_{slot}"] = np.asarray(value)
        blob, layout_blob = _pack_arrays(tables)
        document = dict(meta or {})
        document.update(
            {
                "format": ARTIFACT_FORMAT_VERSION,
                "trace_hash": key,
                "checksum": _checksum(spec_blob, layout_blob, blob),
            }
        )
        with self._lock:
            self._memo[key] = (spec, dict(constants))
            self._saves += 1
        if self.readonly:
            return None
        payload = {
            _SPEC_KEY: np.frombuffer(spec_blob, dtype=np.uint8),
            _LAYOUT_KEY: np.frombuffer(layout_blob, dtype=np.uint8),
            _ARRAYS_KEY: blob,
            _META_KEY: np.frombuffer(
                json.dumps(document, sort_keys=True).encode("utf-8"), dtype=np.uint8
            ),
        }
        path = self.path_for(key)
        # pid AND thread id: two shard workers racing to publish the same
        # trace (replica fleets compile concurrently) must never share a
        # temp file, or one thread's os.replace steals the other's.
        temporary = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        # The directory may have been removed since construction (e.g. a
        # closed process tier's spill store publishing a post-close plan);
        # recreate it rather than failing the compile that got us here.
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            with open(temporary, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(temporary, path)
        finally:
            if temporary.exists():  # a failed write never leaves debris
                temporary.unlink()
        return path

    # ------------------------------------------------------------------
    def peek(self, key: str):
        """Stat-neutral memo lookup: ``(spec, constants)`` or ``None``.

        Unlike :meth:`load` this never touches the disk and never moves
        the load/memo-hit counters — infrastructure that merely inspects
        an already-ensured plan (e.g. sizing a shared-memory segment from
        its buffer layout) should not distort warm-start accounting.
        """
        with self._lock:
            return self._memo.get(key)

    def load(self, key: str):
        """Fetch ``(spec, values, meta)`` for one trace hash.

        Returns ``None`` when no artifact exists for the key.  Raises
        :class:`ArtifactError` when one exists but fails validation
        (unreadable, truncated, checksum mismatch, wrong format version,
        or a trace-hash echo that does not match the filename) — callers
        fall back to compiling.  ``values`` is a fresh full-length slot
        table; the constant arrays themselves are shared with the memo
        (plans never write constant slots).
        """
        with self._lock:
            memo = self._memo.get(key)
            if memo is not None:
                self._loads += 1
                self._memo_hits += 1
                spec, constants = memo
                return spec, self._values_from(spec, constants), {"trace_hash": key}
        path = self.path_for(key)
        if not path.exists():
            with self._lock:
                self._misses += 1
            return None
        try:
            spec, constants, meta = self._read(path, key)
        except ArtifactError:
            with self._lock:
                self._rejects += 1
            raise
        except Exception as error:
            with self._lock:
                self._rejects += 1
            raise ArtifactError(f"artifact {path} is unreadable: {error}") from error
        from .verify import verify_enabled

        if verify_enabled():
            # Static audit of the freshly parsed plan, ahead of the deferred
            # parity spot check.  A finding rejects the artifact the same way
            # a checksum failure would — callers fall back to a fresh
            # (itself verified) compile.  Memo hits skip this: they were
            # verified when first parsed.
            from .verify import verify_spec

            report = verify_spec(spec, self._values_from(spec, constants))
            with self._lock:
                self._verifies += 1
            if not report.ok:
                with self._lock:
                    self._rejects += 1
                raise ArtifactError(
                    f"artifact {path} failed static verification: {report.summary()}"
                )
        with self._lock:
            self._memo[key] = (spec, constants)
            self._loads += 1
        return spec, self._values_from(spec, constants), meta

    @staticmethod
    def _values_from(
        spec: PlanSpec, constants: Dict[int, np.ndarray]
    ) -> List[Optional[np.ndarray]]:
        values: List[Optional[np.ndarray]] = [None] * spec.num_slots
        for slot, value in constants.items():
            values[slot] = value
        return values

    def _read(self, path: Path, key: str):
        with np.load(path, allow_pickle=False) as archive:
            files = set(archive.files)
            required = (_META_KEY, _SPEC_KEY, _LAYOUT_KEY, _ARRAYS_KEY)
            if not all(name in files for name in required):
                raise ArtifactError(f"artifact {path} is missing its metadata/spec blobs")
            meta = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
            if meta.get("format") != ARTIFACT_FORMAT_VERSION:
                raise ArtifactError(
                    f"artifact {path} has format {meta.get('format')!r}; this build "
                    f"reads {ARTIFACT_FORMAT_VERSION}"
                )
            if meta.get("trace_hash") != key:
                raise ArtifactError(
                    f"artifact {path} declares trace hash {meta.get('trace_hash')!r}; "
                    f"expected {key}"
                )
            spec_blob = archive[_SPEC_KEY].tobytes()
            layout_blob = archive[_LAYOUT_KEY].tobytes()
            blob = archive[_ARRAYS_KEY]
            if meta.get("checksum") != _checksum(spec_blob, layout_blob, blob):
                raise ArtifactError(
                    f"artifact {path} failed its integrity checksum (corrupted file)"
                )
        arrays = _unpack_arrays(blob, layout_blob)
        aux = {name: value for name, value in arrays.items() if not name.startswith("const_")}
        spec = _spec_from_payload(spec_blob, aux)
        constants: Dict[int, np.ndarray] = {}
        for name, value in arrays.items():
            if name.startswith("const_"):
                constants[int(name[len("const_"):])] = value
        missing = set(spec.const_slots) - set(constants)
        if missing:
            raise ArtifactError(
                f"artifact {path} is missing constant slots {sorted(missing)} (truncated?)"
            )
        return spec, constants, meta

    def bind(self, key: str, workspace: Optional[np.ndarray] = None):
        """Load one artifact and materialise it as an executable plan.

        Returns ``None`` when no artifact exists for ``key``; propagates
        :class:`ArtifactError` on validation failure (callers fall back to
        compiling — or, in a worker process that must never trace, to
        reporting the key unavailable).  ``workspace`` is forwarded to
        :func:`~repro.runtime.engine.bind_plan`: a flat ``uint8`` buffer —
        e.g. a ``multiprocessing.shared_memory`` arena — that the plan's
        pooled storages are carved from instead of the heap.
        """
        from .engine import bind_plan

        loaded = self.load(key)
        if loaded is None:
            return None
        spec, values, _meta = loaded
        return bind_plan(spec, values, workspace=workspace)

    # ------------------------------------------------------------------
    def adopt(self, source: Union[str, Path, "ArtifactStore"]) -> List[str]:
        """Copy another store's artifacts this store does not have yet.

        The hot-swap ingredient: a new checkpoint ships its AOT plans in a
        sidecar directory (:func:`~repro.training.save_plan_artifacts`), but
        a live deployment — in particular its process-tier workers, whose
        store roots are fixed at spawn — only looks in the deployment store.
        Adopting copies the sidecar's ``.plan.npz`` files in (atomic temp +
        rename, like :meth:`save`), after which every worker can bind the
        new generation's plans without a single retrace.

        Files are copied verbatim: validation (format version, checksum,
        trace-hash echo) still happens at load time, so a corrupt source
        artifact degrades to a recompile exactly as if it sat in this store
        all along.  Returns the keys actually copied; existing keys are
        never overwritten.
        """
        root = source.root if isinstance(source, ArtifactStore) else Path(source)
        if self.readonly:
            return []
        if not Path(root).is_dir():
            return []
        adopted: List[str] = []
        self.root.mkdir(parents=True, exist_ok=True)
        for path in sorted(Path(root).glob("*.plan.npz")):
            key = path.name[: -len(".plan.npz")]
            destination = self.path_for(key)
            if destination.exists():
                continue
            temporary = destination.with_name(
                f"{destination.name}.tmp.{os.getpid()}.{threading.get_ident()}"
            )
            try:
                temporary.write_bytes(path.read_bytes())
                os.replace(temporary, destination)
            finally:
                if temporary.exists():
                    temporary.unlink()
            adopted.append(key)
        return adopted

    def forget(self, key: str) -> None:
        """Drop one key from the in-process memo (disk untouched)."""
        with self._lock:
            self._memo.pop(key, None)

    def stats(self) -> ArtifactStoreStats:
        """Snapshot of the store's save/load/miss/reject counters."""
        with self._lock:
            return ArtifactStoreStats(
                saves=self._saves,
                loads=self._loads,
                memo_hits=self._memo_hits,
                misses=self._misses,
                rejects=self._rejects,
                verifies=self._verifies,
            )

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r}, readonly={self.readonly})"
