"""Graph-free inference runtime.

Serving traffic through the autograd engine wastes most of its time in
Python: even under ``no_grad`` every op builds a ``Tensor``, a parent tuple
and gradient closures, so per-op dispatch — not the matmuls — dominates at
scale (the Section IV-D complexity argument of the paper is about raw
arithmetic, which this layer gets back to).  The runtime compiles a
:class:`~repro.nn.Module` forward pass into a flat plan of calls into
:mod:`repro.tensor.kernels` — the same kernels the autograd ops delegate
to — executed directly on ``numpy`` arrays with preallocated, reused
workspace buffers.

* :func:`compile_module` / :class:`CompiledModel` — compile once per input
  shape, replay on raw arrays;
* :func:`resolve_runtime_mode` — the serving layer's escape hatch: the
  ``REPRO_RUNTIME`` environment variable (or an explicit argument) selects
  ``"compiled"`` (default) or ``"autograd"`` forwards;
* :class:`CompileError` — raised when a forward pass cannot be traced
  (training mode, value-dependent control flow, ops without kernel specs).

Because both execution modes share one numerical source of truth, compiled
outputs match autograd outputs within 1e-10 (bit-identical in practice);
``tests/runtime/`` asserts this for DyHSL in all three Table V modes and
for the registry baselines.

Example
-------
>>> from repro.runtime import compile_module
>>> compiled = compile_module(model)
>>> predictions = compiled(windows)          # (B, T', N) ndarray
"""

from __future__ import annotations

import os
from typing import Optional

from .artifacts import ArtifactError, ArtifactStore, trace_hash, weights_fingerprint
from .compiler import CompileError, build_plan_spec, compile_plan, trace_module
from .engine import (
    BUCKETS_ENV_VAR,
    DEFAULT_BUCKET_CAP,
    PRECISION_ENV_VAR,
    PRECISIONS,
    THREADS_ENV_VAR,
    WORKSPACE_ALIGN,
    CompiledModel,
    Plan,
    PlanCacheInfo,
    PlanSpec,
    PlanStats,
    StepSpec,
    bind_plan,
    bucket_batch_size,
    plan_workspace_nbytes,
    resolve_bucket_cap,
    resolve_precision,
    resolve_thread_count,
)
from .training import CompiledTrainingModel, compile_training_model, plan_trainable
from .verify import (
    VERIFY_ENV_VAR,
    VerifyError,
    VerifyReport,
    verify_enabled,
    verify_plan,
    verify_spec,
    verify_store,
)

__all__ = [
    "ArtifactError",
    "ArtifactStore",
    "BUCKETS_ENV_VAR",
    "CompileError",
    "CompiledModel",
    "CompiledTrainingModel",
    "DEFAULT_BUCKET_CAP",
    "PRECISION_ENV_VAR",
    "PRECISIONS",
    "Plan",
    "PlanCacheInfo",
    "PlanSpec",
    "PlanStats",
    "RUNTIME_MODES",
    "RUNTIME_ENV_VAR",
    "StepSpec",
    "THREADS_ENV_VAR",
    "VERIFY_ENV_VAR",
    "VerifyError",
    "VerifyReport",
    "WORKSPACE_ALIGN",
    "bind_plan",
    "bucket_batch_size",
    "build_plan_spec",
    "compile_module",
    "compile_plan",
    "compile_training_model",
    "plan_trainable",
    "plan_workspace_nbytes",
    "resolve_bucket_cap",
    "resolve_precision",
    "resolve_runtime_mode",
    "resolve_thread_count",
    "trace_hash",
    "trace_module",
    "verify_enabled",
    "verify_plan",
    "verify_spec",
    "verify_store",
    "weights_fingerprint",
]

#: Environment variable selecting the serving execution mode.
RUNTIME_ENV_VAR = "REPRO_RUNTIME"

#: Supported execution modes: compiled kernel plans vs. autograd forwards.
RUNTIME_MODES = ("compiled", "autograd")


def compile_module(
    module,
    fold_constants: bool = True,
    fuse: bool = True,
    bucket_batches=None,
    output_slice=None,
    precision=None,
    threads=None,
    artifact_dir=None,
) -> CompiledModel:
    """Wrap ``module`` (switched to eval mode) in a :class:`CompiledModel`.

    ``fuse`` toggles the elementwise-chain fusion pass; ``bucket_batches``
    sets the batch-bucketing policy (see
    :func:`repro.runtime.engine.resolve_bucket_cap`); ``output_slice``
    restricts the plan to columns ``[lo, hi)`` of the output's trailing
    node axis — the per-shard plans of
    :class:`repro.serving.ShardedForecastService` (plan-cache keys carry
    the slice, so shard plans never alias full-network plans).
    ``precision`` sets the execution-precision policy (``"float64"`` /
    ``"float32"``, default from ``REPRO_RUNTIME_PRECISION``) and
    ``threads`` the island-parallel replay width (integer or ``"auto"``,
    default from ``REPRO_RUNTIME_THREADS``).  ``artifact_dir`` (a directory
    or :class:`~repro.runtime.artifacts.ArtifactStore`) attaches a durable
    plan-artifact store — see ``docs/runtime.md`` §Plan artifacts.
    """
    return CompiledModel(
        module,
        fold_constants=fold_constants,
        fuse=fuse,
        bucket_batches=bucket_batches,
        output_slice=output_slice,
        precision=precision,
        threads=threads,
        artifact_dir=artifact_dir,
    )


def resolve_runtime_mode(mode: Optional[str] = None) -> str:
    """Resolve the execution mode: explicit argument > env var > compiled.

    Parameters
    ----------
    mode:
        ``"compiled"``, ``"autograd"`` or ``None`` to consult the
        ``REPRO_RUNTIME`` environment variable (defaulting to compiled).
    """
    if mode is None:
        mode = os.environ.get(RUNTIME_ENV_VAR, "").strip().lower() or "compiled"
    mode = mode.lower()
    if mode not in RUNTIME_MODES:
        raise ValueError(
            f"unknown runtime mode {mode!r}; expected one of {RUNTIME_MODES} "
            f"(set via argument or the {RUNTIME_ENV_VAR} environment variable)"
        )
    return mode
