"""Hypergraph data structures and incidence-matrix utilities.

A hypergraph ``G = (V, E)`` generalises a graph by letting each hyperedge
connect an arbitrary set of nodes (Section III-B of the paper).  Its
structure is captured by an incidence matrix ``Λ ∈ R^{|V| x |E|}`` whose
entry ``Λ(v, e)`` is the (possibly weighted) membership of node ``v`` in
hyperedge ``e``.

DyHSL *learns* a weighted incidence matrix (Eq. 6); the utilities here cover
the static-hypergraph machinery needed around it: building incidence
matrices from explicit hyperedge lists, clique expansion (so hypergraphs can
be compared against plain graphs), degree normalisation and the HGNN-style
hypergraph convolution operator used by the DHGNN / HGC-RNN baselines.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Hypergraph",
    "incidence_from_hyperedges",
    "hyperedges_from_incidence",
    "clique_expansion",
    "normalize_incidence",
    "hypergraph_convolution_operator",
    "knn_hypergraph",
]


def incidence_from_hyperedges(
    hyperedges: Sequence[Iterable[int]],
    num_nodes: int,
    weights: Sequence[float] = None,
) -> np.ndarray:
    """Build a ``(num_nodes, num_hyperedges)`` incidence matrix.

    Parameters
    ----------
    hyperedges:
        One iterable of node indices per hyperedge.
    num_nodes:
        Total number of nodes ``|V|``.
    weights:
        Optional per-hyperedge membership weight (defaults to 1).
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    num_edges = len(hyperedges)
    incidence = np.zeros((num_nodes, num_edges), dtype=float)
    for edge_index, members in enumerate(hyperedges):
        weight = 1.0 if weights is None else float(weights[edge_index])
        for node in members:
            if node < 0 or node >= num_nodes:
                raise IndexError(f"node {node} out of range for {num_nodes} nodes")
            incidence[node, edge_index] = weight
    return incidence


def hyperedges_from_incidence(incidence: np.ndarray, threshold: float = 0.0) -> List[List[int]]:
    """Recover hyperedge membership lists from an incidence matrix."""
    incidence = np.asarray(incidence, dtype=float)
    if incidence.ndim != 2:
        raise ValueError("incidence must be 2-D")
    return [list(np.nonzero(incidence[:, e] > threshold)[0]) for e in range(incidence.shape[1])]


def clique_expansion(incidence: np.ndarray) -> np.ndarray:
    """Project a hypergraph onto a graph by connecting co-members.

    The weight of edge ``(u, v)`` is the sum over hyperedges of the product
    of the two membership weights — the standard clique-expansion
    approximation, useful for comparing learned hypergraphs against pairwise
    structures.
    """
    incidence = np.asarray(incidence, dtype=float)
    expansion = incidence @ incidence.T
    np.fill_diagonal(expansion, 0.0)
    return expansion


def normalize_incidence(incidence: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Degree-normalise an incidence matrix.

    Returns ``D_v^{-1/2} Λ D_e^{-1/2}`` where ``D_v`` and ``D_e`` are node and
    hyperedge degree matrices.  Rows or columns with zero degree are left
    untouched.
    """
    incidence = np.asarray(incidence, dtype=float)
    node_degree = np.abs(incidence).sum(axis=1)
    edge_degree = np.abs(incidence).sum(axis=0)
    node_scale = np.where(node_degree > eps, 1.0 / np.sqrt(node_degree + eps), 1.0)
    edge_scale = np.where(edge_degree > eps, 1.0 / np.sqrt(edge_degree + eps), 1.0)
    return node_scale[:, None] * incidence * edge_scale[None, :]


def hypergraph_convolution_operator(incidence: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """HGNN propagation operator ``D_v^{-1/2} Λ D_e^{-1} Λ^T D_v^{-1/2}``.

    This is the static-hypergraph message-passing matrix used by the
    HGC-RNN-style baseline; DyHSL replaces it with the learned low-rank
    incidence of Eq. 6.
    """
    incidence = np.asarray(incidence, dtype=float)
    node_degree = np.abs(incidence).sum(axis=1)
    edge_degree = np.abs(incidence).sum(axis=0)
    inv_node = np.where(node_degree > eps, 1.0 / np.sqrt(node_degree + eps), 0.0)
    inv_edge = np.where(edge_degree > eps, 1.0 / (edge_degree + eps), 0.0)
    scaled = inv_node[:, None] * incidence * inv_edge[None, :]
    return scaled @ (incidence.T * inv_node[None, :])


def knn_hypergraph(features: np.ndarray, num_neighbors: int) -> np.ndarray:
    """Build a kNN hypergraph: one hyperedge per node containing its neighbours.

    This replicates the construction used by DHGNN (Jiang et al., 2019),
    which the paper compares against: hyperedge ``i`` contains node ``i`` and
    its ``num_neighbors`` nearest neighbours in feature space.

    Returns the ``(N, N)`` incidence matrix (one hyperedge per node).
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D (nodes, dims) matrix")
    n = features.shape[0]
    if not 0 < num_neighbors < n:
        raise ValueError("num_neighbors must be in (0, num_nodes)")
    squared = np.sum(features ** 2, axis=1)
    distances = squared[:, None] + squared[None, :] - 2.0 * features @ features.T
    np.fill_diagonal(distances, np.inf)
    incidence = np.zeros((n, n), dtype=float)
    for node in range(n):
        neighbours = np.argpartition(distances[node], num_neighbors)[:num_neighbors]
        incidence[neighbours, node] = 1.0
        incidence[node, node] = 1.0
    return incidence


class Hypergraph:
    """Convenience wrapper bundling an incidence matrix with basic queries."""

    def __init__(self, incidence: np.ndarray) -> None:
        incidence = np.asarray(incidence, dtype=float)
        if incidence.ndim != 2:
            raise ValueError("incidence must be a 2-D matrix")
        self.incidence = incidence

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self.incidence.shape[0]

    @property
    def num_hyperedges(self) -> int:
        """Number of hyperedges ``|E|``."""
        return self.incidence.shape[1]

    def node_degrees(self) -> np.ndarray:
        """Weighted degree of each node (row sums of ``|Λ|``)."""
        return np.abs(self.incidence).sum(axis=1)

    def hyperedge_degrees(self) -> np.ndarray:
        """Weighted degree of each hyperedge (column sums of ``|Λ|``)."""
        return np.abs(self.incidence).sum(axis=0)

    def hyperedge_members(self, edge: int, threshold: float = 0.0) -> List[int]:
        """Indices of nodes belonging to ``edge`` above ``threshold``."""
        if edge < 0 or edge >= self.num_hyperedges:
            raise IndexError("hyperedge index out of range")
        return list(np.nonzero(self.incidence[:, edge] > threshold)[0])

    def strongest_hyperedge(self, node: int) -> int:
        """Hyperedge with the largest membership weight for ``node``.

        Mirrors the Fig. 7 analysis of which hyperedge a node is "closest" to.
        """
        if node < 0 or node >= self.num_nodes:
            raise IndexError("node index out of range")
        return int(np.argmax(self.incidence[node]))

    def to_graph(self) -> np.ndarray:
        """Clique-expand the hypergraph into a weighted adjacency matrix."""
        return clique_expansion(self.incidence)

    def __repr__(self) -> str:
        return f"Hypergraph(num_nodes={self.num_nodes}, num_hyperedges={self.num_hyperedges})"
