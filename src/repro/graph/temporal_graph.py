"""Temporal graph construction (Eq. 4 of the paper).

DyHSL lifts the static road network with ``N`` nodes into a *temporal graph*
with ``T * N`` nodes: one node per (time step, location) observation.  Two
kinds of edges connect the observations:

* **spatial edges** — within each time step, identical to the road network;
* **temporal edges** — each observation is connected to the same location at
  the previous / next time step (and to itself via a self loop).

The resulting ``(T*N, T*N)`` adjacency matrix feeds both the prior graph
convolution (Eq. 5) and the interactive graph convolution (Eq. 10–12).
Observations are indexed time-major: node ``t * N + i`` is location ``i`` at
time ``t``, matching the stacking order used throughout :mod:`repro.core`.
"""

from __future__ import annotations

import numpy as np

from .adjacency import random_walk_normalize, validate_adjacency

__all__ = [
    "build_temporal_adjacency",
    "normalized_temporal_adjacency",
    "temporal_node_index",
    "split_temporal_index",
]


def build_temporal_adjacency(adjacency: np.ndarray, num_steps: int) -> np.ndarray:
    """Build the temporal-graph adjacency matrix of Eq. 4.

    Parameters
    ----------
    adjacency:
        Road-network adjacency ``A`` of shape ``(N, N)``.
    num_steps:
        Number of time steps ``T`` in the observation window.

    Returns
    -------
    numpy.ndarray
        Matrix ``Â`` of shape ``(T*N, T*N)`` where block ``(t, t)`` equals
        ``A`` with unit self-loops, and blocks ``(t, t+1)`` / ``(t+1, t)``
        contain identity matrices connecting consecutive observations of the
        same location.
    """
    adjacency = validate_adjacency(adjacency)
    if num_steps <= 0:
        raise ValueError("num_steps must be positive")
    n = adjacency.shape[0]
    size = num_steps * n
    temporal = np.zeros((size, size), dtype=float)
    identity = np.eye(n)
    block_with_loops = adjacency.copy()
    np.fill_diagonal(block_with_loops, 1.0)
    for t in range(num_steps):
        start = t * n
        temporal[start:start + n, start:start + n] = block_with_loops
        if t + 1 < num_steps:
            nxt = (t + 1) * n
            temporal[start:start + n, nxt:nxt + n] = identity
            temporal[nxt:nxt + n, start:start + n] = identity
    return temporal


def normalized_temporal_adjacency(adjacency: np.ndarray, num_steps: int) -> np.ndarray:
    """Row-normalised temporal adjacency ``Ā`` used by Eq. 5.

    Each row sums to one so graph convolution averages over the joint
    spatio-temporal neighbourhood.
    """
    temporal = build_temporal_adjacency(adjacency, num_steps)
    return random_walk_normalize(temporal, add_loops=False)


def temporal_node_index(time_step: int, location: int, num_nodes: int) -> int:
    """Index of observation ``(time_step, location)`` in the temporal graph."""
    if location < 0 or location >= num_nodes:
        raise IndexError(f"location {location} out of range for {num_nodes} nodes")
    if time_step < 0:
        raise IndexError("time_step must be non-negative")
    return time_step * num_nodes + location


def split_temporal_index(index: int, num_nodes: int) -> tuple:
    """Inverse of :func:`temporal_node_index`: return ``(time_step, location)``."""
    if index < 0:
        raise IndexError("index must be non-negative")
    return divmod(index, num_nodes)
