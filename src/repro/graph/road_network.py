"""Synthetic road-network generation.

The PEMS datasets ship a sensor graph built from real road distances.  Those
files are not available offline, so this module generates road networks with
the same structural character: sensors placed along a sparse planar network
of corridors, edge weights decaying with distance, average degree close to
the published statistics (Table II reports |E| ≈ |V| to 1.5·|V| for the four
PEMS datasets).

Two generators are provided:

* :func:`corridor_road_network` — sensors strung along a few intersecting
  highway corridors, the closest analogue of a freeway sensor network;
* :func:`grid_road_network` — an urban-style grid, useful for stress tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from ..tensor.random import fork_rng
from .adjacency import gaussian_kernel_adjacency, validate_adjacency

__all__ = ["RoadNetwork", "corridor_road_network", "grid_road_network", "random_geometric_road_network"]


@dataclass
class RoadNetwork:
    """A road network: node coordinates plus a weighted adjacency matrix.

    Attributes
    ----------
    adjacency:
        Symmetric, non-negative ``(N, N)`` weight matrix with zero diagonal.
    coordinates:
        ``(N, 2)`` sensor positions used by the traffic simulator to build
        spatially-correlated signals.
    name:
        Human-readable label (e.g. the PEMS dataset the network mimics).
    """

    adjacency: np.ndarray
    coordinates: np.ndarray
    name: str = "road-network"

    def __post_init__(self) -> None:
        self.adjacency = validate_adjacency(self.adjacency)
        self.coordinates = np.asarray(self.coordinates, dtype=float)
        if self.coordinates.shape[0] != self.adjacency.shape[0]:
            raise ValueError("coordinates and adjacency disagree on the number of nodes")

    @property
    def num_nodes(self) -> int:
        """Number of sensors ``|V|``."""
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return int(np.count_nonzero(np.triu(self.adjacency, k=1)))

    def to_networkx(self) -> nx.Graph:
        """Export to a ``networkx`` graph (for analysis and plotting)."""
        graph = nx.from_numpy_array(self.adjacency)
        for node, (x, y) in enumerate(self.coordinates):
            graph.nodes[node]["pos"] = (float(x), float(y))
        return graph

    def degree_statistics(self) -> Tuple[float, int, int]:
        """Return (mean, min, max) node degree."""
        degrees = (self.adjacency > 0).sum(axis=1)
        return float(degrees.mean()), int(degrees.min()), int(degrees.max())


def _edges_to_adjacency(
    num_nodes: int,
    edges: List[Tuple[int, int]],
    coordinates: np.ndarray,
) -> np.ndarray:
    """Distance-weighted adjacency from an edge list (Gaussian kernel weights)."""
    distances = np.full((num_nodes, num_nodes), np.inf)
    for u, v in edges:
        d = float(np.linalg.norm(coordinates[u] - coordinates[v]))
        distances[u, v] = min(distances[u, v], d)
        distances[v, u] = min(distances[v, u], d)
    np.fill_diagonal(distances, 0.0)
    adjacency = gaussian_kernel_adjacency(distances, threshold=0.0)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def corridor_road_network(
    num_nodes: int,
    num_corridors: int = 4,
    cross_links: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "corridor",
) -> RoadNetwork:
    """Sensors strung along intersecting highway corridors.

    Each corridor is a chain of consecutive sensors (freeway detectors are
    physically ordered along the road); a few cross links connect nearby
    sensors of different corridors, mimicking interchanges.  The edge count
    ends up close to ``num_nodes + cross_links``, matching the sparsity of
    the PEMS graphs.

    Parameters
    ----------
    num_nodes:
        Total number of sensors.
    num_corridors:
        Number of corridors the sensors are distributed over.
    cross_links:
        Number of interchange links; defaults to ``num_nodes // 10``.
    seed:
        Seed for the corridor geometry; ``None`` derives one from the global
        library seed.
    """
    if num_nodes < 2:
        raise ValueError("a road network needs at least 2 sensors")
    num_corridors = max(1, min(num_corridors, num_nodes // 2 if num_nodes >= 4 else 1))
    rng = np.random.default_rng(seed) if seed is not None else fork_rng(offset=31)
    if cross_links is None:
        cross_links = max(1, num_nodes // 10)

    # Split the sensors into contiguous corridors.
    sizes = [num_nodes // num_corridors] * num_corridors
    for i in range(num_nodes % num_corridors):
        sizes[i] += 1

    coordinates = np.zeros((num_nodes, 2))
    edges: List[Tuple[int, int]] = []
    node = 0
    corridor_nodes: List[List[int]] = []
    for corridor, size in enumerate(sizes):
        # Each corridor is a gently-curved line across the plane.
        angle = rng.uniform(0, np.pi)
        origin = rng.uniform(-5, 5, size=2)
        direction = np.array([np.cos(angle), np.sin(angle)])
        normal = np.array([-direction[1], direction[0]])
        members = []
        for position in range(size):
            offset = position * 1.0 + rng.normal(0, 0.05)
            wiggle = rng.normal(0, 0.15)
            coordinates[node] = origin + offset * direction + wiggle * normal
            members.append(node)
            if position > 0:
                edges.append((node - 1, node))
            node += 1
        corridor_nodes.append(members)

    # Interchange links between corridors.  First guarantee connectivity by
    # linking every corridor to the closest sensor of an earlier corridor,
    # then spend the remaining budget on the overall closest cross pairs.
    if num_corridors > 1:
        used = set()
        added = 0
        for corridor in range(1, num_corridors):
            best = None
            for u in corridor_nodes[corridor]:
                for earlier in range(corridor):
                    for v in corridor_nodes[earlier]:
                        d = float(np.linalg.norm(coordinates[u] - coordinates[v]))
                        if best is None or d < best[0]:
                            best = (d, u, v)
            if best is not None:
                edges.append((best[1], best[2]))
                used.add((best[1], best[2]))
                added += 1
        if cross_links > added:
            candidates = []
            for a in range(num_corridors):
                for b in range(a + 1, num_corridors):
                    for u in corridor_nodes[a]:
                        for v in corridor_nodes[b]:
                            d = float(np.linalg.norm(coordinates[u] - coordinates[v]))
                            candidates.append((d, u, v))
            candidates.sort(key=lambda item: item[0])
            for d, u, v in candidates:
                if added >= cross_links:
                    break
                if (u, v) in used:
                    continue
                used.add((u, v))
                edges.append((u, v))
                added += 1

    adjacency = _edges_to_adjacency(num_nodes, edges, coordinates)
    return RoadNetwork(adjacency=adjacency, coordinates=coordinates, name=name)


def grid_road_network(rows: int, cols: int, seed: Optional[int] = None, name: str = "grid") -> RoadNetwork:
    """Urban-style grid road network with ``rows * cols`` sensors."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    rng = np.random.default_rng(seed) if seed is not None else fork_rng(offset=37)
    num_nodes = rows * cols
    coordinates = np.zeros((num_nodes, 2))
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            coordinates[node] = [c + rng.normal(0, 0.05), r + rng.normal(0, 0.05)]
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    adjacency = _edges_to_adjacency(num_nodes, edges, coordinates)
    return RoadNetwork(adjacency=adjacency, coordinates=coordinates, name=name)


def random_geometric_road_network(
    num_nodes: int,
    radius: float = 0.18,
    seed: Optional[int] = None,
    name: str = "geometric",
) -> RoadNetwork:
    """Random geometric graph: sensors connected when closer than ``radius``.

    Guaranteed to be connected by adding a minimum-spanning chain over any
    isolated components, so diffusion-based simulation and graph convolution
    always have a usable structure.
    """
    if num_nodes < 2:
        raise ValueError("a road network needs at least 2 sensors")
    rng = np.random.default_rng(seed) if seed is not None else fork_rng(offset=41)
    coordinates = rng.uniform(0, 1, size=(num_nodes, 2))
    graph = nx.random_geometric_graph(num_nodes, radius, pos={i: tuple(coordinates[i]) for i in range(num_nodes)})
    edges = [tuple(edge) for edge in graph.edges()]
    # Connect any disconnected components through their nearest node pairs.
    components = [list(component) for component in nx.connected_components(graph)]
    while len(components) > 1:
        best = None
        for u in components[0]:
            for v in components[1]:
                d = float(np.linalg.norm(coordinates[u] - coordinates[v]))
                if best is None or d < best[0]:
                    best = (d, u, v)
        edges.append((best[1], best[2]))
        merged = components[0] + components[1]
        components = [merged] + components[2:]
    adjacency = _edges_to_adjacency(num_nodes, edges, coordinates * 10.0)
    return RoadNetwork(adjacency=adjacency, coordinates=coordinates * 10.0, name=name)
