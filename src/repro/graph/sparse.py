"""Sparse matrix support for constant graph structures.

The temporal-graph adjacency of Eq. 4 has ``(T*N)^2`` entries but only
``O(T * (||A||_0 + N))`` of them are non-zero.  Storing it sparsely and
multiplying it against activation tensors keeps both the memory footprint
and the per-layer cost linear in the graph size, which is the complexity the
paper claims for DyHSL (Section IV-D).

Only *constant* (non-learnable) matrices are stored sparsely; gradients flow
through the dense operand of :func:`sparse_matmul`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import sparse as sp

from ..tensor import Tensor, kernels

__all__ = ["SparseMatrix", "sparse_matmul"]


class SparseMatrix:
    """Immutable CSR wrapper around a constant sparse matrix.

    Parameters
    ----------
    matrix:
        Dense array or any ``scipy.sparse`` matrix.  Dense input is
        converted; explicitly stored zeros are pruned.
    """

    def __init__(self, matrix) -> None:
        if sp.issparse(matrix):
            csr = matrix.tocsr().astype(float)
        else:
            dense = np.asarray(matrix, dtype=float)
            if dense.ndim != 2:
                raise ValueError("SparseMatrix requires a 2-D matrix")
            csr = sp.csr_matrix(dense)
        csr.eliminate_zeros()
        self._matrix = csr

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the matrix."""
        return self._matrix.shape

    @property
    def csr(self):
        """The underlying ``scipy.sparse.csr_matrix`` (treat as read-only)."""
        return self._matrix

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries (``||A||_0`` in the paper)."""
        return int(self._matrix.nnz)

    @property
    def density(self) -> float:
        """Fraction of non-zero entries."""
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        """Return a dense copy of the matrix."""
        return self._matrix.toarray()

    def transpose(self) -> "SparseMatrix":
        """Return the transposed matrix."""
        return SparseMatrix(self._matrix.T)

    def transposed(self) -> "SparseMatrix":
        """The transpose, built once and cached on the instance.

        Every ``spmm`` backward multiplies by the transpose; rebuilding the
        CSR transpose per call would cost O(nnz) each time, and caching on
        the (immutable) matrix keeps the lifetime tied to the matrix itself
        rather than any global registry.
        """
        cached = self.__dict__.get("_transposed")
        if cached is None:
            cached = self.transpose()
            self.__dict__["_transposed"] = cached
        return cached

    def with_dtype(self, dtype) -> "SparseMatrix":
        """This matrix with its values cast to ``dtype``, cached per dtype.

        The compiled runtime's float32 execution mode multiplies plan
        buffers against graph constants; casting the CSR value array per
        call would cost O(nnz) on every ``spmm`` step, so the cast copy is
        built once and cached on the (immutable) instance — same lifetime
        rationale as :meth:`transposed`.  The float64 request returns
        ``self`` so the double-precision path keeps its exact arrays.
        """
        dtype = np.dtype(dtype)
        if dtype == self._matrix.dtype:
            return self
        cache = self.__dict__.setdefault("_dtype_variants", {})
        variant = cache.get(dtype)
        if variant is None:
            # Built around the constructor: __init__ coerces values to
            # float64 (the autograd engine's dtype), which would undo the
            # cast this method exists to provide.
            variant = SparseMatrix.__new__(SparseMatrix)
            variant._matrix = self._matrix.astype(dtype)
            cache[dtype] = variant
        return variant

    def dot_array(self, array: np.ndarray) -> np.ndarray:
        """Multiply against a plain NumPy array (no autograd)."""
        return self._matrix @ array

    def __repr__(self) -> str:
        return f"SparseMatrix(shape={self.shape}, nnz={self.nnz})"


def sparse_matmul(matrix: SparseMatrix, dense: Tensor) -> Tensor:
    """Compute ``matrix @ dense`` with gradients flowing into ``dense``.

    Parameters
    ----------
    matrix:
        Constant sparse matrix of shape ``(M, K)``.
    dense:
        Tensor of shape ``(K, F)`` or ``(B, K, F)``; batched input is handled
        by multiplying each batch slice.

    Returns
    -------
    Tensor
        Result of shape ``(M, F)`` or ``(B, M, F)``.
    """
    if not isinstance(matrix, SparseMatrix):
        raise TypeError("matrix must be a SparseMatrix")
    if not isinstance(dense, Tensor):
        dense = Tensor(dense)
    k = matrix.shape[1]
    if dense.ndim == 2:
        if dense.shape[0] != k:
            raise ValueError(f"dimension mismatch: sparse {matrix.shape} @ dense {dense.shape}")
        data = kernels.spmm(dense.data, matrix=matrix)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            return matrix.transposed().dot_array(g)

        return Tensor._make(data, (dense,), (grad_fn,), op=("spmm", {"matrix": matrix}))
    if dense.ndim == 3:
        if dense.shape[1] != k:
            raise ValueError(f"dimension mismatch: sparse {matrix.shape} @ dense {dense.shape}")
        batch, _, features = dense.shape
        # Flatten batches into the feature dimension: (K, B*F).
        flattened = dense.transpose(1, 0, 2).reshape(k, batch * features)
        result = sparse_matmul(matrix, flattened)
        return result.reshape(matrix.shape[0], batch, features).transpose(1, 0, 2)
    raise ValueError("sparse_matmul supports 2-D or 3-D dense operands")
