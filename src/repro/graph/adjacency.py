"""Adjacency-matrix utilities shared by DyHSL and the graph baselines.

All functions operate on dense NumPy arrays (the road networks used in the
paper have at most ~900 nodes, so dense matrices stay small) and return new
arrays; inputs are never modified in place.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = [
    "validate_adjacency",
    "add_self_loops",
    "symmetric_normalize",
    "random_walk_normalize",
    "normalized_laplacian",
    "scaled_laplacian",
    "chebyshev_polynomials",
    "gaussian_kernel_adjacency",
    "binary_adjacency",
]


def validate_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Check that ``adjacency`` is a square 2-D matrix with finite entries."""
    adjacency = np.asarray(adjacency, dtype=float)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square; got shape {adjacency.shape}")
    if not np.all(np.isfinite(adjacency)):
        raise ValueError("adjacency contains non-finite entries")
    if np.any(adjacency < 0):
        raise ValueError("adjacency weights must be non-negative")
    return adjacency


def add_self_loops(adjacency: np.ndarray, weight: float = 1.0) -> np.ndarray:
    """Return ``A + weight * I``; existing self loops are overwritten."""
    adjacency = validate_adjacency(adjacency)
    result = adjacency.copy()
    np.fill_diagonal(result, weight)
    return result


def symmetric_normalize(adjacency: np.ndarray, add_loops: bool = True) -> np.ndarray:
    """Symmetric normalisation ``D^{-1/2} (A + I) D^{-1/2}`` (GCN style)."""
    adjacency = validate_adjacency(adjacency)
    if add_loops:
        adjacency = add_self_loops(adjacency)
    degree = adjacency.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degree[nonzero])
    return inv_sqrt[:, None] * adjacency * inv_sqrt[None, :]


def random_walk_normalize(adjacency: np.ndarray, add_loops: bool = True) -> np.ndarray:
    """Row-stochastic normalisation ``D^{-1} (A + I)``.

    This is the normalisation assumed by Eq. 5 of the paper, where the
    weights of each node's neighbourhood sum to one.
    """
    adjacency = validate_adjacency(adjacency)
    if add_loops:
        adjacency = add_self_loops(adjacency)
    degree = adjacency.sum(axis=1)
    inv = np.zeros_like(degree)
    nonzero = degree > 0
    inv[nonzero] = 1.0 / degree[nonzero]
    return inv[:, None] * adjacency


def normalized_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric normalised Laplacian ``I - D^{-1/2} A D^{-1/2}``."""
    adjacency = validate_adjacency(adjacency)
    normalised = symmetric_normalize(adjacency, add_loops=False)
    return np.eye(adjacency.shape[0]) - normalised


def scaled_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Laplacian rescaled to ``[-1, 1]`` for Chebyshev polynomial filters."""
    laplacian = normalized_laplacian(adjacency)
    try:
        largest = float(np.linalg.eigvalsh(laplacian).max())
    except np.linalg.LinAlgError:
        largest = 2.0
    largest = max(largest, 1e-6)
    return 2.0 * laplacian / largest - np.eye(adjacency.shape[0])


def chebyshev_polynomials(adjacency: np.ndarray, order: int) -> List[np.ndarray]:
    """Chebyshev polynomial basis ``T_0 ... T_{order}`` of the scaled Laplacian.

    Used by the STGCN and ASTGCN-style spectral graph convolutions.
    """
    if order < 0:
        raise ValueError("order must be non-negative")
    laplacian = scaled_laplacian(adjacency)
    n = laplacian.shape[0]
    polynomials = [np.eye(n)]
    if order >= 1:
        polynomials.append(laplacian.copy())
    for _ in range(2, order + 1):
        polynomials.append(2.0 * laplacian @ polynomials[-1] - polynomials[-2])
    return polynomials


def gaussian_kernel_adjacency(
    distances: np.ndarray,
    sigma: Optional[float] = None,
    threshold: float = 0.1,
) -> np.ndarray:
    """Convert a pairwise distance matrix into a weighted adjacency matrix.

    This replicates the construction used for the PEMS road graphs:
    ``w_ij = exp(-d_ij^2 / sigma^2)`` with small weights thresholded to zero,
    where ``sigma`` defaults to the standard deviation of the finite
    distances.
    """
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError("distances must be a square matrix")
    finite = distances[np.isfinite(distances)]
    if sigma is None:
        sigma = float(finite.std()) if finite.size else 1.0
    sigma = max(sigma, 1e-8)
    with np.errstate(over="ignore"):
        weights = np.exp(-np.square(distances / sigma))
    weights[~np.isfinite(distances)] = 0.0
    weights[weights < threshold] = 0.0
    np.fill_diagonal(weights, 0.0)
    return weights


def binary_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Binarise a weighted adjacency matrix (1 where any edge exists)."""
    adjacency = validate_adjacency(adjacency)
    return (adjacency > 0).astype(float)
