"""Graph, temporal-graph and hypergraph substrate.

Static structure utilities used by the DyHSL model, the data simulator and
the graph-based baselines: adjacency normalisation, the temporal-graph
construction of Eq. 4, sparse matrix products for constant structures,
hypergraph incidence machinery and synthetic road-network generators.
"""

from .adjacency import (
    add_self_loops,
    binary_adjacency,
    chebyshev_polynomials,
    gaussian_kernel_adjacency,
    normalized_laplacian,
    random_walk_normalize,
    scaled_laplacian,
    symmetric_normalize,
    validate_adjacency,
)
from .hypergraph import (
    Hypergraph,
    clique_expansion,
    hyperedges_from_incidence,
    hypergraph_convolution_operator,
    incidence_from_hyperedges,
    knn_hypergraph,
    normalize_incidence,
)
from .road_network import (
    RoadNetwork,
    corridor_road_network,
    grid_road_network,
    random_geometric_road_network,
)
from .sparse import SparseMatrix, sparse_matmul
from .temporal_graph import (
    build_temporal_adjacency,
    normalized_temporal_adjacency,
    split_temporal_index,
    temporal_node_index,
)

__all__ = [
    "validate_adjacency",
    "add_self_loops",
    "symmetric_normalize",
    "random_walk_normalize",
    "normalized_laplacian",
    "scaled_laplacian",
    "chebyshev_polynomials",
    "gaussian_kernel_adjacency",
    "binary_adjacency",
    "build_temporal_adjacency",
    "normalized_temporal_adjacency",
    "temporal_node_index",
    "split_temporal_index",
    "SparseMatrix",
    "sparse_matmul",
    "Hypergraph",
    "incidence_from_hyperedges",
    "hyperedges_from_incidence",
    "clique_expansion",
    "normalize_incidence",
    "hypergraph_convolution_operator",
    "knn_hypergraph",
    "RoadNetwork",
    "corridor_road_network",
    "grid_road_network",
    "random_geometric_road_network",
]
