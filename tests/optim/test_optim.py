"""Tests for optimizers, gradient clipping and learning-rate schedulers."""

import numpy as np
import pytest

from repro import nn, optim
from repro.tensor import Tensor


def quadratic_problem():
    """A convex quadratic: minimise ||w - target||^2."""
    target = np.array([1.0, -2.0, 3.0])
    parameter = nn.Parameter(np.zeros(3))

    def loss_fn():
        diff = parameter - Tensor(target)
        return (diff * diff).sum()

    return parameter, target, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        parameter, target, loss_fn = quadratic_problem()
        optimizer = optim.SGD([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        parameter_plain, target, loss_plain = quadratic_problem()
        parameter_momentum, _, loss_momentum = quadratic_problem()
        plain = optim.SGD([parameter_plain], lr=0.01)
        momentum = optim.SGD([parameter_momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for optimizer, loss_fn in ((plain, loss_plain), (momentum, loss_momentum)):
                optimizer.zero_grad()
                loss_fn().backward()
                optimizer.step()
        assert loss_momentum().item() < loss_plain().item()

    def test_weight_decay_shrinks_parameters(self):
        parameter = nn.Parameter(np.ones(4) * 10.0)
        optimizer = optim.SGD([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        assert (np.abs(parameter.data) < 10.0).all()

    def test_validation_errors(self):
        parameter = nn.Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            optim.SGD([parameter], lr=-1.0)
        with pytest.raises(ValueError):
            optim.SGD([parameter], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            optim.SGD([parameter], lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter, target, loss_fn = quadratic_problem()
        optimizer = optim.Adam([parameter], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=1e-2)

    def test_step_count_increments(self):
        parameter, _, loss_fn = quadratic_problem()
        optimizer = optim.Adam([parameter], lr=0.01)
        loss_fn().backward()
        optimizer.step()
        optimizer.step()
        assert optimizer.step_count == 2

    def test_invalid_hyperparameters(self):
        parameter = nn.Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            optim.Adam([parameter], betas=(1.2, 0.9))
        with pytest.raises(ValueError):
            optim.Adam([parameter], eps=0.0)


class TestGradientClipping:
    def test_clip_grad_norm_rescales(self):
        parameter = nn.Parameter(np.zeros(4))
        parameter.grad = np.full(4, 10.0)
        norm_before = optim.clip_grad_norm([parameter], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-5)

    def test_clip_grad_norm_no_op_when_small(self):
        parameter = nn.Parameter(np.zeros(2))
        parameter.grad = np.array([0.1, 0.1])
        optim.clip_grad_norm([parameter], max_norm=10.0)
        assert np.allclose(parameter.grad, 0.1)

    def test_clip_grad_value(self):
        parameter = nn.Parameter(np.zeros(3))
        parameter.grad = np.array([-5.0, 0.2, 9.0])
        optim.clip_grad_value([parameter], clip_value=1.0)
        assert np.allclose(parameter.grad, [-1.0, 0.2, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            optim.clip_grad_norm([], max_norm=0.0)
        with pytest.raises(ValueError):
            optim.clip_grad_value([], clip_value=0.0)


class TestSchedulers:
    def _optimizer(self):
        return optim.SGD([nn.Parameter(np.zeros(2))], lr=1.0)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = optim.StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        optimizer = self._optimizer()
        scheduler = optim.ExponentialLR(optimizer, gamma=0.5)
        assert scheduler.step() == pytest.approx(0.5)
        assert scheduler.step() == pytest.approx(0.25)

    def test_cosine_annealing_reaches_minimum(self):
        optimizer = self._optimizer()
        scheduler = optim.CosineAnnealingLR(optimizer, t_max=10, eta_min=0.1)
        for _ in range(10):
            final = scheduler.step()
        assert final == pytest.approx(0.1)

    def test_reduce_on_plateau(self):
        optimizer = self._optimizer()
        scheduler = optim.ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        scheduler.step(1.0)
        scheduler.step(1.0)
        lr = scheduler.step(1.0)  # two bad epochs -> reduction
        assert lr == pytest.approx(0.5)

    def test_reduce_on_plateau_respects_min_lr(self):
        optimizer = self._optimizer()
        scheduler = optim.ReduceLROnPlateau(optimizer, factor=0.1, patience=0, min_lr=0.2)
        for _ in range(5):
            lr = scheduler.step(1.0)
        assert lr >= 0.2
