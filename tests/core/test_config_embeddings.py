"""Tests for DyHSLConfig validation and the spatio-temporal embedding."""

import numpy as np
import pytest

from repro.core import DyHSLConfig, SpatioTemporalEmbedding
from repro.tensor import Tensor


class TestConfig:
    def test_defaults_follow_the_paper(self):
        config = DyHSLConfig(num_nodes=100)
        assert config.prior_layers == 6
        assert config.num_hyperedges == 32
        assert config.window_sizes == (1, 2, 3, 4, 6, 12)
        assert config.mhce_layers == 2
        assert config.hidden_dim == 64
        assert config.num_scales == 6

    def test_window_sizes_must_divide_input_length(self):
        with pytest.raises(ValueError):
            DyHSLConfig(num_nodes=10, input_length=12, window_sizes=(1, 5))

    def test_structure_learning_mode_validation(self):
        with pytest.raises(ValueError):
            DyHSLConfig(num_nodes=10, structure_learning="attention")

    def test_cannot_disable_both_branches(self):
        with pytest.raises(ValueError):
            DyHSLConfig(num_nodes=10, structure_learning="none", use_igc=False)

    def test_positive_dimensions_required(self):
        with pytest.raises(ValueError):
            DyHSLConfig(num_nodes=0)
        with pytest.raises(ValueError):
            DyHSLConfig(num_nodes=5, hidden_dim=0)
        with pytest.raises(ValueError):
            DyHSLConfig(num_nodes=5, dropout=1.0)
        with pytest.raises(ValueError):
            DyHSLConfig(num_nodes=5, num_hyperedges=0)
        with pytest.raises(ValueError):
            DyHSLConfig(num_nodes=5, window_sizes=())

    def test_replace_creates_modified_copy(self):
        config = DyHSLConfig(num_nodes=10)
        other = config.replace(hidden_dim=16, num_hyperedges=8)
        assert other.hidden_dim == 16 and other.num_hyperedges == 8
        assert config.hidden_dim == 64  # original untouched

    def test_ablation_switches(self):
        nsl = DyHSLConfig(num_nodes=10, structure_learning="static")
        assert nsl.structure_learning == "static"
        no_igc = DyHSLConfig(num_nodes=10, use_igc=False)
        assert not no_igc.use_igc


class TestSpatioTemporalEmbedding:
    def test_output_shape(self):
        embedding = SpatioTemporalEmbedding(num_nodes=6, input_length=12, input_dim=1, hidden_dim=16)
        out = embedding(Tensor(np.random.randn(3, 12, 6, 1)))
        assert out.shape == (3, 12, 6, 16)

    def test_spatial_identity_differs_across_nodes(self):
        embedding = SpatioTemporalEmbedding(num_nodes=4, input_length=3, input_dim=1, hidden_dim=8)
        out = embedding(Tensor(np.zeros((1, 3, 4, 1)))).numpy()
        # With identical zero inputs, differences come purely from the embeddings.
        assert not np.allclose(out[0, 0, 0], out[0, 0, 1])

    def test_temporal_identity_differs_across_steps(self):
        embedding = SpatioTemporalEmbedding(num_nodes=4, input_length=3, input_dim=1, hidden_dim=8)
        out = embedding(Tensor(np.zeros((1, 3, 4, 1)))).numpy()
        assert not np.allclose(out[0, 0, 0], out[0, 1, 0])

    def test_shape_validation(self):
        embedding = SpatioTemporalEmbedding(num_nodes=4, input_length=3, input_dim=1, hidden_dim=8)
        with pytest.raises(ValueError):
            embedding(Tensor(np.zeros((1, 5, 4, 1))))
        with pytest.raises(ValueError):
            embedding(Tensor(np.zeros((3, 4, 1))))

    def test_gradients_reach_embedding_tables(self):
        embedding = SpatioTemporalEmbedding(num_nodes=4, input_length=3, input_dim=2, hidden_dim=8)
        out = embedding(Tensor(np.random.randn(2, 3, 4, 2)))
        out.sum().backward()
        assert embedding.spatial_embedding.weight.grad is not None
        assert embedding.temporal_embedding.weight.grad is not None
        assert embedding.input_projection.weight.grad is not None
