"""Tests for the multi-scale extraction module and the assembled DyHSL model."""

import numpy as np
import pytest

from repro.core import DyHSL, DyHSLConfig, MultiScaleExtractor, ScaleFusion, temporal_max_pool
from repro.nn import MaskedMAELoss
from repro.optim import Adam
from repro.tensor import Tensor


@pytest.fixture()
def tiny_adjacency():
    adjacency = np.zeros((6, 6))
    for i in range(5):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return adjacency


def tiny_config(**overrides):
    params = dict(
        num_nodes=6,
        input_length=12,
        output_length=12,
        hidden_dim=8,
        prior_layers=2,
        num_hyperedges=4,
        window_sizes=(1, 3, 12),
        mhce_layers=1,
        dropout=0.0,
    )
    params.update(overrides)
    return DyHSLConfig(**params)


class TestTemporalMaxPool:
    def test_window_one_is_identity(self):
        states = Tensor(np.random.randn(2, 12, 3, 4))
        assert temporal_max_pool(states, 1) is states

    def test_pooled_shape_and_values(self):
        values = np.arange(12, dtype=float).reshape(1, 12, 1, 1)
        pooled = temporal_max_pool(Tensor(values), 4)
        assert pooled.shape == (1, 3, 1, 1)
        assert np.allclose(pooled.numpy().reshape(-1), [3.0, 7.0, 11.0])

    def test_indivisible_window_raises(self):
        with pytest.raises(ValueError):
            temporal_max_pool(Tensor(np.zeros((1, 10, 2, 2))), 3)


class TestScaleFusion:
    def test_weights_sum_to_one(self):
        fusion = ScaleFusion(4)
        assert np.allclose(fusion.normalized_weights().sum(), 1.0)

    def test_uniform_initialisation_averages(self):
        fusion = ScaleFusion(3)
        embeddings = [Tensor(np.full((2, 5), float(i))) for i in range(3)]
        fused = fusion(embeddings).numpy()
        assert np.allclose(fused, 1.0)  # (0 + 1 + 2) / 3

    def test_wrong_number_of_scales_raises(self):
        fusion = ScaleFusion(2)
        with pytest.raises(ValueError):
            fusion([Tensor(np.zeros((1, 2)))])

    def test_requires_positive_scales(self):
        with pytest.raises(ValueError):
            ScaleFusion(0)


class TestMultiScaleExtractor:
    def test_output_shape(self, tiny_adjacency):
        extractor = MultiScaleExtractor(tiny_config(), tiny_adjacency)
        states = Tensor(np.random.randn(2, 12, 6, 8))
        assert extractor(states).shape == (2, 6, 8)

    def test_disabling_igc_still_works(self, tiny_adjacency):
        extractor = MultiScaleExtractor(tiny_config(use_igc=False), tiny_adjacency)
        assert extractor(Tensor(np.random.randn(1, 12, 6, 8))).shape == (1, 6, 8)

    def test_disabling_hypergraph_still_works(self, tiny_adjacency):
        extractor = MultiScaleExtractor(tiny_config(structure_learning="none"), tiny_adjacency)
        assert extractor(Tensor(np.random.randn(1, 12, 6, 8))).shape == (1, 6, 8)

    def test_incidence_matrix_extraction(self, tiny_adjacency):
        extractor = MultiScaleExtractor(tiny_config(), tiny_adjacency)
        states = Tensor(np.random.randn(1, 12, 6, 8))
        incidence = extractor.incidence_matrices(states, window=3)
        assert incidence.shape == (1, 4, 6, 4)
        with pytest.raises(ValueError):
            extractor.incidence_matrices(states, window=5)

    def test_incidence_unavailable_when_disabled(self, tiny_adjacency):
        extractor = MultiScaleExtractor(tiny_config(structure_learning="none"), tiny_adjacency)
        with pytest.raises(RuntimeError):
            extractor.incidence_matrices(Tensor(np.random.randn(1, 12, 6, 8)), window=1)


class TestDyHSLModel:
    def test_forward_shape(self, tiny_adjacency):
        model = DyHSL(tiny_config(), tiny_adjacency)
        out = model(Tensor(np.random.randn(3, 12, 6, 1)))
        assert out.shape == (3, 12, 6)

    def test_accepts_numpy_input(self, tiny_adjacency):
        model = DyHSL(tiny_config(), tiny_adjacency)
        assert model(np.random.randn(2, 12, 6, 1)).shape == (2, 12, 6)

    def test_adjacency_shape_validation(self, tiny_adjacency):
        with pytest.raises(ValueError):
            DyHSL(tiny_config(num_nodes=7), tiny_adjacency)

    def test_all_parameters_receive_gradients(self, tiny_adjacency):
        model = DyHSL(tiny_config(), tiny_adjacency)
        predictions = model(Tensor(np.random.randn(2, 12, 6, 1)))
        loss = MaskedMAELoss(null_value=None)(predictions, Tensor(np.random.randn(2, 12, 6)))
        loss.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_one_optimisation_step_reduces_loss(self, tiny_adjacency):
        model = DyHSL(tiny_config(), tiny_adjacency)
        optimizer = Adam(model.parameters(), lr=5e-3)
        loss_fn = MaskedMAELoss(null_value=None)
        inputs = Tensor(np.random.randn(4, 12, 6, 1))
        targets = Tensor(np.random.randn(4, 12, 6) * 0.1)
        losses = []
        for _ in range(8):
            optimizer.zero_grad()
            loss = loss_fn(model(inputs), targets)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_ablation_variants_forward(self, tiny_adjacency):
        for overrides in (
            {"structure_learning": "static"},
            {"structure_learning": "from_scratch"},
            {"structure_learning": "none"},
            {"use_igc": False},
            {"window_sizes": (1,)},
            {"use_prior_graph": False},
        ):
            model = DyHSL(tiny_config(**overrides), tiny_adjacency)
            assert model(Tensor(np.random.randn(1, 12, 6, 1))).shape == (1, 12, 6)

    def test_parameter_count_grows_with_hyperedges(self, tiny_adjacency):
        small = DyHSL(tiny_config(num_hyperedges=4), tiny_adjacency)
        large = DyHSL(tiny_config(num_hyperedges=16), tiny_adjacency)
        assert large.num_parameters() > small.num_parameters()

    def test_low_rank_keeps_parameters_independent_of_node_count(self):
        """Eq. 6: the incidence matrix adds O(I*d) parameters, not O(N*T*I)."""
        def build(num_nodes):
            adjacency = np.zeros((num_nodes, num_nodes))
            for i in range(num_nodes - 1):
                adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
            config = tiny_config(num_nodes=num_nodes)
            return DyHSL(config, adjacency)

        small, large = build(6), build(12)
        # Only the spatial embedding table grows with N; the DHSL block does not.
        difference = large.num_parameters() - small.num_parameters()
        assert difference == 6 * 8  # six extra nodes x hidden_dim embedding rows

    def test_incidence_matrices_and_scale_weights(self, tiny_adjacency):
        model = DyHSL(tiny_config(), tiny_adjacency)
        incidence = model.incidence_matrices(Tensor(np.random.randn(1, 12, 6, 1)), window=1)
        assert incidence.shape == (1, 12, 6, 4)
        weights = model.scale_weights()
        assert weights.shape == (3,)
        assert np.allclose(weights.sum(), 1.0)

    def test_state_dict_roundtrip(self, tiny_adjacency):
        model = DyHSL(tiny_config(), tiny_adjacency)
        inputs = Tensor(np.random.randn(1, 12, 6, 1))
        model.eval()
        before = model(inputs).numpy()
        state = model.state_dict()
        clone = DyHSL(tiny_config(), tiny_adjacency)
        clone.load_state_dict(state)
        clone.eval()
        assert np.allclose(clone(inputs).numpy(), before)
