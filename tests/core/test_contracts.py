"""Contract tests for the analysis-facing model surface.

The Fig. 7 incidence study and the Eq. 14 scale-weight analysis consume two
public model methods; these tests pin their output contracts so a refactor
of the extractor internals cannot silently break the analyses:

* ``DyHSL.incidence_matrices`` returns shape ``(batch, T/ε, N, I)``;
* ``DyHSL.scale_weights`` is a proper softmax: positive, summing to 1,
  one weight per configured pooling scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DyHSL, DyHSLConfig
from repro.tensor import seed as seed_everything


@pytest.fixture()
def model_and_batch(forecasting_data):
    seed_everything(21)
    config = DyHSLConfig(
        num_nodes=forecasting_data.num_nodes,
        hidden_dim=8,
        prior_layers=1,
        num_hyperedges=5,
        window_sizes=(1, 2, 4, 12),
        mhce_layers=2,
    )
    model = DyHSL(config, forecasting_data.adjacency).eval()
    batch = forecasting_data.train.inputs[:3]
    return model, batch


class TestIncidenceContract:
    def test_shape_for_every_scale(self, model_and_batch):
        """Fig. 7 contract: (batch, T/ε, N, I) for each configured ε."""
        model, batch = model_and_batch
        config = model.config
        for window in config.window_sizes:
            incidence = model.incidence_matrices(batch, window=window)
            assert incidence.shape == (
                batch.shape[0],
                config.input_length // window,
                config.num_nodes,
                config.num_hyperedges,
            ), f"wrong incidence shape at scale {window}"

    def test_every_layer_is_queryable(self, model_and_batch):
        model, batch = model_and_batch
        config = model.config
        for layer in range(config.mhce_layers):
            incidence = model.incidence_matrices(batch, window=1, layer=layer)
            assert np.all(np.isfinite(incidence))

    def test_unknown_scale_is_rejected(self, model_and_batch):
        model, batch = model_and_batch
        with pytest.raises(ValueError, match="not one of the configured scales"):
            model.incidence_matrices(batch, window=5)

    def test_plain_array_not_tensor(self, model_and_batch):
        """The analysis layer consumes NumPy, not autograd tensors."""
        model, batch = model_and_batch
        incidence = model.incidence_matrices(batch, window=1)
        assert type(incidence) is np.ndarray


class TestScaleWeightContract:
    def test_softmax_simplex(self, model_and_batch):
        """Eq. 14 contract: one positive weight per scale, summing to 1."""
        model, _ = model_and_batch
        weights = model.scale_weights()
        assert weights.shape == (len(model.config.window_sizes),)
        assert np.all(weights > 0)
        assert float(weights.sum()) == pytest.approx(1.0, abs=1e-12)

    def test_tracks_underlying_parameter(self, model_and_batch):
        """Shifting one logit must redistribute the softmax mass."""
        model, _ = model_and_batch
        before = model.scale_weights()
        model.extractor.fusion.scale_weights.data[0] += 1.0
        after = model.scale_weights()
        assert after[0] > before[0]
        assert float(after.sum()) == pytest.approx(1.0, abs=1e-12)
