"""Tests for the prior graph encoder, DHSL block and IGC block."""

import numpy as np
import pytest

from repro.core import (
    DynamicHypergraphBlock,
    HypergraphConvolution,
    InteractiveGraphConvolution,
    LowRankIncidence,
    PriorGraphEncoder,
    TemporalGraphConvolution,
)
from repro.graph import SparseMatrix, normalized_temporal_adjacency
from repro.tensor import Tensor


@pytest.fixture()
def tiny_adjacency():
    adjacency = np.zeros((5, 5))
    for i in range(4):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return adjacency


class TestPriorGraphEncoder:
    def test_output_shape(self, tiny_adjacency):
        encoder = PriorGraphEncoder(tiny_adjacency, input_length=4, hidden_dim=8, num_layers=3)
        out = encoder(Tensor(np.random.randn(2, 4, 5, 8)))
        assert out.shape == (2, 4, 5, 8)

    def test_rejects_mismatched_input(self, tiny_adjacency):
        encoder = PriorGraphEncoder(tiny_adjacency, input_length=4, hidden_dim=8)
        with pytest.raises(ValueError):
            encoder(Tensor(np.zeros((1, 3, 5, 8))))

    def test_information_propagates_across_time(self, tiny_adjacency):
        """A perturbation at t=0 must influence states at later time steps."""
        encoder = PriorGraphEncoder(tiny_adjacency, input_length=4, hidden_dim=8, num_layers=3, dropout=0.0)
        encoder.eval()
        base = np.zeros((1, 4, 5, 8))
        perturbed = base.copy()
        perturbed[0, 0, 2, :] = 5.0
        out_base = encoder(Tensor(base)).numpy()
        out_perturbed = encoder(Tensor(perturbed)).numpy()
        assert not np.allclose(out_base[0, 3], out_perturbed[0, 3])

    def test_single_layer_no_residual(self, tiny_adjacency):
        convolution = TemporalGraphConvolution(hidden_dim=4, use_residual=False)
        adjacency = SparseMatrix(normalized_temporal_adjacency(tiny_adjacency, 2))
        out = convolution(Tensor(np.random.randn(1, 10, 4)), adjacency)
        assert out.shape == (1, 10, 4)
        assert (out.numpy() >= 0).all()  # plain ReLU output without residual

    def test_parameter_count_scales_with_layers(self, tiny_adjacency):
        shallow = PriorGraphEncoder(tiny_adjacency, 4, hidden_dim=8, num_layers=1)
        deep = PriorGraphEncoder(tiny_adjacency, 4, hidden_dim=8, num_layers=4)
        assert deep.num_parameters() == 4 * shallow.num_parameters()


class TestLowRankIncidence:
    def test_shape_and_low_rank_property(self):
        incidence_module = LowRankIncidence(hidden_dim=8, num_hyperedges=6)
        hidden = Tensor(np.random.randn(2, 20, 8))
        incidence = incidence_module(hidden)
        assert incidence.shape == (2, 20, 6)
        # Rank of H W is bounded by d (here 6 < 8 anyway) — verify numerically.
        rank = np.linalg.matrix_rank(incidence.numpy()[0])
        assert rank <= 6

    def test_static_mode_has_no_learnable_parameters(self):
        learned = LowRankIncidence(8, 6, learnable=True)
        frozen = LowRankIncidence(8, 6, learnable=False)
        assert len(learned.parameters()) == 1
        assert len(frozen.parameters()) == 0
        out = frozen(Tensor(np.random.randn(1, 5, 8)))
        assert out.shape == (1, 5, 6)

    def test_incidence_depends_on_state(self):
        """The learned structure must be dynamic: different states, different Λ."""
        module = LowRankIncidence(8, 4)
        first = module(Tensor(np.random.randn(1, 6, 8))).numpy()
        second = module(Tensor(np.random.randn(1, 6, 8))).numpy()
        assert not np.allclose(first, second)


class TestHypergraphConvolution:
    def test_output_shape(self):
        convolution = HypergraphConvolution(hidden_dim=8, num_hyperedges=4, dropout=0.0)
        hidden = Tensor(np.random.randn(2, 10, 8))
        incidence = Tensor(np.random.randn(2, 10, 4))
        assert convolution(hidden, incidence).shape == (2, 10, 8)

    def test_zero_incidence_gives_zero_output(self):
        convolution = HypergraphConvolution(hidden_dim=8, num_hyperedges=4, dropout=0.0)
        hidden = Tensor(np.random.randn(1, 6, 8))
        incidence = Tensor(np.zeros((1, 6, 4)))
        assert np.allclose(convolution(hidden, incidence).numpy(), 0.0)

    def test_gradients_flow_to_relation_matrix(self):
        convolution = HypergraphConvolution(hidden_dim=8, num_hyperedges=4, dropout=0.0)
        hidden = Tensor(np.random.randn(1, 6, 8), requires_grad=True)
        incidence = Tensor(np.random.randn(1, 6, 4))
        convolution(hidden, incidence).sum().backward()
        assert convolution.hyperedge_relation.grad is not None
        assert hidden.grad is not None


class TestDynamicHypergraphBlock:
    def test_low_rank_mode_shapes(self):
        block = DynamicHypergraphBlock(hidden_dim=8, num_hyperedges=4, num_nodes=5, mode="low_rank", dropout=0.0)
        out = block(Tensor(np.random.randn(2, 15, 8)))
        assert out.shape == (2, 15, 8)

    def test_static_mode_has_fewer_parameters(self):
        learned = DynamicHypergraphBlock(8, 4, 5, mode="low_rank")
        static = DynamicHypergraphBlock(8, 4, 5, mode="static")
        assert static.num_parameters() < learned.num_parameters()

    def test_from_scratch_mode(self):
        block = DynamicHypergraphBlock(hidden_dim=8, num_hyperedges=4, num_nodes=5, mode="from_scratch", dropout=0.0)
        out = block(Tensor(np.random.randn(2, 15, 8)))
        assert out.shape == (2, 15, 8)
        # The FS ablation learns a dense N x N adjacency.
        assert block.scratch_adjacency.shape == (5, 5)

    def test_from_scratch_requires_multiple_of_nodes(self):
        block = DynamicHypergraphBlock(8, 4, num_nodes=5, mode="from_scratch")
        with pytest.raises(ValueError):
            block(Tensor(np.random.randn(1, 12, 8)))

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            DynamicHypergraphBlock(8, 4, 5, mode="bogus")

    def test_last_incidence_extraction(self):
        block = DynamicHypergraphBlock(8, 4, 5, mode="low_rank")
        incidence = block.last_incidence(Tensor(np.random.randn(1, 10, 8)))
        assert incidence.shape == (1, 10, 4)

    def test_last_incidence_unavailable_for_from_scratch(self):
        block = DynamicHypergraphBlock(8, 4, 5, mode="from_scratch")
        with pytest.raises(RuntimeError):
            block.last_incidence(Tensor(np.random.randn(1, 10, 8)))

    def test_multiple_hypergraph_layers(self):
        block = DynamicHypergraphBlock(8, 4, 5, num_layers=3, dropout=0.0)
        assert len(list(block.convolutions)) == 3
        assert block(Tensor(np.random.randn(1, 10, 8))).shape == (1, 10, 8)


class TestInteractiveGraphConvolution:
    def _adjacency(self, tiny_adjacency, steps=2):
        return SparseMatrix(normalized_temporal_adjacency(tiny_adjacency, steps))

    def test_output_shape(self, tiny_adjacency):
        block = InteractiveGraphConvolution(hidden_dim=8, dropout=0.0)
        adjacency = self._adjacency(tiny_adjacency)
        out = block(Tensor(np.random.randn(3, 10, 8)), adjacency)
        assert out.shape == (3, 10, 8)

    def test_shape_validation(self, tiny_adjacency):
        block = InteractiveGraphConvolution(hidden_dim=8)
        adjacency = self._adjacency(tiny_adjacency)
        with pytest.raises(ValueError):
            block(Tensor(np.random.randn(10, 8)), adjacency)
        with pytest.raises(ValueError):
            block(Tensor(np.random.randn(1, 7, 8)), adjacency)

    def test_interaction_is_nonlinear_in_input_scale(self, tiny_adjacency):
        """Doubling the input must not simply double the interactive output."""
        block = InteractiveGraphConvolution(hidden_dim=8, dropout=0.0)
        block.eval()
        adjacency = self._adjacency(tiny_adjacency)
        base = np.random.default_rng(0).normal(size=(1, 10, 8)) * 0.1
        out_single = block(Tensor(base), adjacency).numpy()
        out_double = block(Tensor(2 * base), adjacency).numpy()
        assert not np.allclose(out_double, 2 * out_single, atol=1e-3)

    def test_gradients_flow(self, tiny_adjacency):
        block = InteractiveGraphConvolution(hidden_dim=8, dropout=0.0)
        adjacency = self._adjacency(tiny_adjacency)
        hidden = Tensor(np.random.randn(1, 10, 8), requires_grad=True)
        block(hidden, adjacency).sum().backward()
        assert hidden.grad is not None
        assert block.projection_first.weight.grad is not None
