"""Finite-difference gradient checks for the paper's central block (Eq. 6–8).

The DHSL block is the contribution the whole reproduction hangs on, so its
gradients are validated directly against central finite differences: for a
scalar loss ``L = sum(w ⊙ f(x, θ))`` with fixed weights ``w``, every entry
of every analytic gradient (inputs and parameters) must match
``(L(v + ε) - L(v - ε)) / 2ε``.  All three structure-learning modes of
Table V are covered: ``low_rank`` (dynamic, the proposed method),
``static`` (NSL: frozen incidence projection) and ``from_scratch`` (FS:
dense learnable adjacency).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dhsl import DynamicHypergraphBlock, HypergraphConvolution, LowRankIncidence
from repro.tensor import Tensor
from repro.tensor import seed as seed_everything

BATCH, NODES, STEPS, DIM, EDGES = 2, 3, 2, 4, 3
OBSERVATIONS = NODES * STEPS  # M = N * T / ε temporal-graph nodes


def _loss_weights(shape) -> np.ndarray:
    """Fixed non-uniform weights so the loss mixes every output entry."""
    return np.cos(np.arange(np.prod(shape), dtype=float)).reshape(shape) + 0.5


def _scalar_loss(output: Tensor, weights: np.ndarray) -> Tensor:
    return (output * Tensor(weights)).sum()


def _numerical_grad(array: np.ndarray, loss_fn, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of ``loss_fn()`` w.r.t. ``array`` (in place)."""
    grad = np.zeros_like(array)
    flat, grad_flat = array.reshape(-1), grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = loss_fn()
        flat[index] = original - eps
        minus = loss_fn()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def _check_module_grads(module, hidden_data: np.ndarray, forward):
    """Compare analytic gradients of inputs and all parameters to numerics."""
    weights = _loss_weights(forward(Tensor(hidden_data)).shape)

    hidden = Tensor(hidden_data.copy(), requires_grad=True)
    loss = _scalar_loss(forward(hidden), weights)
    loss.backward()

    def loss_value() -> float:
        return _scalar_loss(forward(Tensor(hidden.data)), weights).item()

    numeric = _numerical_grad(hidden.data, loss_value)
    np.testing.assert_allclose(hidden.grad, numeric, rtol=1e-5, atol=1e-7, err_msg="input grad")

    for name, parameter in module.named_parameters():
        numeric = _numerical_grad(parameter.data, loss_value)
        np.testing.assert_allclose(
            parameter.grad, numeric, rtol=1e-5, atol=1e-7, err_msg=f"grad of {name}"
        )


@pytest.fixture()
def hidden_states() -> np.ndarray:
    seed_everything(5)
    return np.random.default_rng(5).normal(size=(BATCH, OBSERVATIONS, DIM))


class TestLowRankIncidence:
    def test_learnable_projection_gradcheck(self, hidden_states):
        seed_everything(5)
        module = LowRankIncidence(DIM, EDGES, learnable=True)
        _check_module_grads(module, hidden_states, module)

    def test_frozen_projection_gradcheck(self, hidden_states):
        """NSL mode: gradient still flows to the inputs, never to the buffer."""
        seed_everything(5)
        module = LowRankIncidence(DIM, EDGES, learnable=False)
        assert module.parameters() == []
        _check_module_grads(module, hidden_states, module)


class TestHypergraphConvolution:
    def test_gradcheck_through_convolution(self, hidden_states):
        seed_everything(5)
        module = HypergraphConvolution(DIM, EDGES, dropout=0.0).eval()
        incidence_data = np.random.default_rng(6).normal(size=(BATCH, OBSERVATIONS, EDGES))
        _check_module_grads(
            module, hidden_states, lambda hidden: module(hidden, Tensor(incidence_data))
        )

    def test_gradcheck_wrt_incidence(self, hidden_states):
        """The incidence matrix enters Eq. 7 and Eq. 8; both paths must backprop."""
        seed_everything(5)
        module = HypergraphConvolution(DIM, EDGES, dropout=0.0).eval()
        incidence_data = np.random.default_rng(6).normal(size=(BATCH, OBSERVATIONS, EDGES))
        states = Tensor(hidden_states.copy())
        weights = _loss_weights(module(states, Tensor(incidence_data)).shape)

        incidence = Tensor(incidence_data.copy(), requires_grad=True)
        loss = _scalar_loss(module(states, incidence), weights)
        loss.backward()

        def loss_value() -> float:
            return _scalar_loss(module(states, Tensor(incidence.data)), weights).item()

        numeric = _numerical_grad(incidence.data, loss_value)
        np.testing.assert_allclose(incidence.grad, numeric, rtol=1e-5, atol=1e-7)


class TestDynamicHypergraphBlock:
    @pytest.mark.parametrize("mode", ["low_rank", "static", "from_scratch"])
    def test_gradcheck_all_modes(self, hidden_states, mode):
        seed_everything(5)
        block = DynamicHypergraphBlock(
            hidden_dim=DIM,
            num_hyperedges=EDGES,
            num_nodes=NODES,
            num_layers=2,
            mode=mode,
            dropout=0.0,
        ).eval()
        _check_module_grads(block, hidden_states, block)

    def test_mode_parameter_inventory(self):
        """Each Table V variant learns exactly the parameters it claims to."""
        seed_everything(5)
        dynamic = DynamicHypergraphBlock(DIM, EDGES, NODES, mode="low_rank")
        static = DynamicHypergraphBlock(DIM, EDGES, NODES, mode="static")
        scratch = DynamicHypergraphBlock(DIM, EDGES, NODES, mode="from_scratch")
        dynamic_names = dict(dynamic.named_parameters())
        assert any("incidence" in name for name in dynamic_names)
        # NSL: the same convolution stack, minus the learnable projection.
        assert len(static.parameters()) == len(dynamic.parameters()) - 1
        # FS: a single dense adjacency, no hypergraph machinery.
        assert [name for name, _ in scratch.named_parameters()] == ["scratch_adjacency"]
